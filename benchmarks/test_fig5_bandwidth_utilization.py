"""Figure 5b/5c: bandwidth under-utilization of sub-rack slices.

The Figure 5b rack hosts four tenants; slices smaller than the rack cannot
ring congestion-free in every torus dimension, stranding static electrical
bandwidth — up to 66 % for Slice-1/2 (Figure 5c). LIGHTPATH's steering
recovers 100 % for every slice. The bench prints the per-slice series the
figure plots, the cross-tenant congestion evidence, and a concurrent
discrete-event execution of all four tenants under both interconnects.
"""

import pytest

from _helpers import emit
from repro.analysis.congestion_report import analyze_rack_congestion
from repro.analysis.tables import render_table
from repro.analysis.utilization import figure5b_layout, rack_utilization
from repro.collectives.primitives import Interconnect
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_concurrent_schedules
from repro.sim.traffic import MultiTenantWorkload
from repro.topology.torus import Torus

N_BYTES = 1 << 24


def _figure5():
    allocator = figure5b_layout()
    utilization = rack_utilization(allocator)
    congestion = analyze_rack_congestion(allocator)
    durations = {}
    rack = Torus((4, 4, 4))
    for interconnect in (Interconnect.ELECTRICAL, Interconnect.OPTICAL):
        workload = MultiTenantWorkload(
            slices=allocator.slices,
            buffer_bytes=N_BYTES,
            interconnect=interconnect,
        )
        fraction = 1.0 if interconnect is Interconnect.OPTICAL else 1 / 3
        caps = {link: CHIP_EGRESS_BYTES * fraction for link in rack.links()}
        durations[interconnect] = run_concurrent_schedules(
            workload.schedules(), caps
        )
    return utilization, congestion, durations


def test_fig5_bandwidth_utilization(benchmark):
    utilization, congestion, durations = benchmark.pedantic(_figure5, rounds=1, iterations=1)
    emit(
        "Figure 5c — usable per-chip bandwidth by slice",
        render_table(
            ["slice", "shape", "elec usable", "optics usable", "elec loss"],
            [
                [
                    u.name,
                    "x".join(map(str, u.shape)),
                    f"{u.electrical_fraction:.0%}",
                    f"{u.optical_fraction:.0%}",
                    f"{u.bandwidth_loss_percent:.0f} %",
                ]
                for u in utilization
            ],
        ),
    )
    emit(
        "Figure 5b — links shared by naive (all-dimension) rings",
        render_table(
            ["quantity", "value"],
            [
                ["shared links", str(len(congestion.shared_links))],
                ["worst multiplicity", str(congestion.worst_multiplicity)],
                [
                    "congested slices",
                    ", ".join(sorted(congestion.per_slice_congested_dims)),
                ],
            ],
        ),
    )
    emit(
        "Figure 5 — concurrent 4-tenant REDUCESCATTER (measured)",
        render_table(
            ["tenant", "electrical", "optical (steered)"],
            [
                [
                    e.name.split()[0] + f" #{i}",
                    f"{e.duration_s * 1e6:.1f} us",
                    f"{o.duration_s * 1e6:.1f} us",
                ]
                for i, (e, o) in enumerate(
                    zip(
                        durations[Interconnect.ELECTRICAL],
                        durations[Interconnect.OPTICAL],
                    )
                )
            ],
        ),
    )
    by_name = {u.name: u for u in utilization}
    assert by_name["Slice-1"].bandwidth_loss_percent == pytest.approx(66.7, abs=0.1)
    assert by_name["Slice-2"].bandwidth_loss_percent == pytest.approx(66.7, abs=0.1)
    assert by_name["Slice-3"].bandwidth_loss_percent == pytest.approx(33.3, abs=0.1)
    assert by_name["Slice-4"].bandwidth_loss_percent == pytest.approx(33.3, abs=0.1)
    assert not congestion.is_congestion_free
    # Every tenant finishes faster with steered optics.
    for e, o in zip(
        durations[Interconnect.ELECTRICAL], durations[Interconnect.OPTICAL]
    ):
        assert o.duration_s < e.duration_s
