#!/usr/bin/env python3
"""Measure the sweep engine and record the numbers to BENCH_sweep.json.

Runs the same >=32-spec repair grid three ways — serially, with
``--jobs`` worker processes, and again from a warm persistent cache — and
writes wall-clock times, speedups and the cache hit rate (plus the
hardware context needed to interpret them) to ``BENCH_sweep.json`` at the
repository root. Also verifies the engine's byte-identical contract
across all three runs.

Run:  PYTHONPATH=src python benchmarks/bench_sweep.py [--jobs 4]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from pathlib import Path

from repro.api import FailurePlan, ScenarioSpec, figure6_slices, run_many


def build_grid(placements: int) -> list[ScenarioSpec]:
    """Failed-chip placements in Slice-3 x both fabrics, repair output."""
    chips = [(x, y, 0) for x in range(4) for y in range(4)][:placements]
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(chip,)),
        )
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def canonical(sweep) -> str:
    return json.dumps(sweep.to_dict(include_timing=False), sort_keys=True)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def latency_percentiles(sweep) -> dict:
    """Cold per-spec evaluation latency percentiles, in milliseconds.

    Only rows actually evaluated in this run count (cache hits and
    deduplicated rows report ~0 and would drag the percentiles down).
    """
    evaluated = sorted(
        row.elapsed_s for row in sweep.runs if not row.from_cache
    )
    if not evaluated:
        return {"specs": 0}
    return {
        "specs": len(evaluated),
        "p50_ms": round(percentile(evaluated, 0.50) * 1e3, 3),
        "p90_ms": round(percentile(evaluated, 0.90) * 1e3, 3),
        "p99_ms": round(percentile(evaluated, 0.99) * 1e3, 3),
        "max_ms": round(evaluated[-1] * 1e3, 3),
        "mean_ms": round(sum(evaluated) / len(evaluated) * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--placements", type=int, default=16)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sweep.json"),
    )
    args = parser.parse_args(argv)

    specs = build_grid(args.placements)
    print(f"grid: {len(specs)} repair specs, jobs={args.jobs}", flush=True)

    serial = run_many(specs, no_cache=True)
    print(f"serial:     {serial.wall_clock_s:.2f} s", flush=True)

    cpus = os.cpu_count() or 1
    parallel = run_many(specs, jobs=args.jobs, no_cache=True)
    raw_speedup = serial.wall_clock_s / parallel.wall_clock_s
    if cpus == 1:
        # One CPU cannot run workers concurrently: the measured ratio is
        # process-spawn overhead, not parallelism. Record the raw times
        # but withhold the speedup claim rather than publish a
        # misleading (usually < 1x) number.
        parallel_speedup = None
        print(f"parallel:   {parallel.wall_clock_s:.2f} s "
              "(single CPU; speedup not meaningful)", flush=True)
    else:
        parallel_speedup = round(raw_speedup, 3)
        print(f"parallel:   {parallel.wall_clock_s:.2f} s "
              f"({raw_speedup:.2f}x)", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold = run_many(specs, jobs=args.jobs, cache_dir=cache_dir)
        warm = run_many(specs, cache_dir=cache_dir)
    print(f"warm cache: {warm.wall_clock_s:.3f} s "
          f"({serial.wall_clock_s / max(warm.wall_clock_s, 1e-9):.0f}x, "
          f"hit rate {warm.cache_stats.hit_rate:.0%})", flush=True)

    byte_identical = (
        canonical(serial) == canonical(parallel) == canonical(cold)
        == canonical(warm)
    )
    if not byte_identical:
        print("ERROR: outputs differ between execution modes", file=sys.stderr)
        return 1

    payload = {
        "grid": {
            "specs": len(specs),
            "unique_specs": serial.unique_specs,
            "placements": args.placements,
            "fabrics": ["electrical", "photonic"],
            "outputs": ["repair"],
        },
        "serial_s": round(serial.wall_clock_s, 4),
        "parallel_s": round(parallel.wall_clock_s, 4),
        "warm_cache_s": round(warm.wall_clock_s, 4),
        "jobs": args.jobs,
        "cpus": cpus,
        "parallel_speedup": parallel_speedup,
        "parallel_speedup_note": (
            "not meaningful on a single-CPU host" if cpus == 1 else None
        ),
        "cold_spec_latency": latency_percentiles(serial),
        "warm_cache_speedup": round(
            serial.wall_clock_s / max(warm.wall_clock_s, 1e-9), 1
        ),
        "warm_cache_hit_rate": warm.cache_stats.hit_rate,
        "byte_identical": byte_identical,
        "environment": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
