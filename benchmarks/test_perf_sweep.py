"""Sweep engine performance: serial vs parallel vs warm persistent cache.

The grid is the expensive end of the paper's experiments — optical and
electrical repair plans for every failed-chip placement in Slice-3 of the
Figure 6 rack — because that is where fan-out pays: each electrical
repair runs the exhaustive replacement search. Three benches evaluate the
identical spec list serially, across worker processes, and from a warm
:class:`~repro.api.cache.DiskResultCache`, asserting along the way that
all three produce the same results (the engine's byte-identical
contract). ``scripts/bench_sweep.py`` records the same comparison to
``BENCH_sweep.json``.
"""

import json

from _helpers import emit
from repro.api import FailurePlan, ScenarioSpec, figure6_slices, run_many

PLACEMENTS = 8  # failed-chip positions; x2 fabrics = 16 specs
JOBS = 2


def _grid(placements: int = PLACEMENTS) -> list[ScenarioSpec]:
    chips = [(x, y, 0) for x in range(4) for y in range(4)][:placements]
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(chip,)),
        )
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def _canonical(sweep) -> str:
    return json.dumps(sweep.to_dict(include_timing=False), sort_keys=True)


def test_sweep_serial(benchmark):
    specs = _grid()
    sweep = benchmark.pedantic(
        lambda: run_many(specs, no_cache=True), rounds=1, iterations=1
    )
    assert len(sweep.runs) == len(specs)
    assert sweep.cache_stats.misses == len(specs)
    emit(
        "Sweep engine — serial baseline",
        f"{len(specs)} repair specs in {sweep.wall_clock_s:.2f} s "
        f"({sweep.wall_clock_s / len(specs) * 1e3:.1f} ms/spec)",
    )


def test_sweep_parallel(benchmark):
    specs = _grid()
    serial = run_many(specs, no_cache=True)
    sweep = benchmark.pedantic(
        lambda: run_many(specs, jobs=JOBS, no_cache=True),
        rounds=1,
        iterations=1,
    )
    assert sweep.jobs == JOBS
    assert _canonical(sweep) == _canonical(serial)
    emit(
        f"Sweep engine — {JOBS} worker processes",
        f"{len(specs)} specs in {sweep.wall_clock_s:.2f} s "
        f"(serial: {serial.wall_clock_s:.2f} s, "
        f"speedup {serial.wall_clock_s / sweep.wall_clock_s:.2f}x); "
        "output byte-identical to serial",
    )


def test_sweep_warm_cache(benchmark, tmp_path):
    specs = _grid()
    cold = run_many(specs, cache_dir=tmp_path)
    assert cold.cache_stats.misses == len(specs)
    sweep = benchmark.pedantic(
        lambda: run_many(specs, cache_dir=tmp_path), rounds=1, iterations=1
    )
    assert sweep.cache_stats.hits == len(specs)
    assert sweep.cache_stats.misses == 0
    assert _canonical(sweep) == _canonical(cold)
    emit(
        "Sweep engine — warm persistent cache",
        f"{len(specs)} specs in {sweep.wall_clock_s:.3f} s from disk "
        f"(cold: {cold.wall_clock_s:.2f} s, "
        f"speedup {cold.wall_clock_s / max(sweep.wall_clock_s, 1e-9):.0f}x, "
        f"hit rate {sweep.cache_stats.hit_rate:.0%})",
    )
