"""Observability overhead: tracer-off must cost (near) nothing.

The tracing layer's contract is zero overhead when off — every sim call
site guards on ``tracer.enabled`` against the shared ``NULL_TRACER``
singleton, so an uninstrumented run executes no event construction at
all. Two benches hold the layer to it: the first measures the same
simulated workload with tracing off and on and asserts the results are
*exactly equal* (observation never perturbs the simulation), the second
that an uninstrumented result still serializes byte-identically to a
result produced with no observability code in the process at all.

The wall-clock layer (``repro.obs.runtime`` + ``repro.obs.log``) makes
the same promise for the serving tier: with no ``--trace-dir`` the
shared ``NULL_RUNTIME_TRACER``/``NULL_LOG`` singletons report disabled,
guarded call sites construct nothing, and an evaluation produces bytes
identical to a session with no runtime wiring at all.
"""

from _helpers import emit
from repro.api import FabricSession, FailurePlan, ScenarioSpec, figure6_slices
from repro.obs.log import DEBUG, NULL_LOG
from repro.obs.runtime import NULL_RUNTIME_TRACER, RuntimeTracer
from repro.obs.tracer import NULL_TRACER


def _sim_spec(outputs=("telemetry",)):
    return ScenarioSpec(
        fabric="photonic",
        slices=figure6_slices(),
        mode="sim",
        outputs=outputs,
        failures=FailurePlan(failed_chips=((1, 2, 0),)),
    )


def test_tracer_off_results_identical(benchmark):
    plain = FabricSession().run(_sim_spec())

    def run_uninstrumented():
        return FabricSession().run(_sim_spec())

    timed = benchmark.pedantic(run_uninstrumented, rounds=3, iterations=1)
    assert timed == plain
    # The tracer-off path never recorded anything anywhere.
    assert NULL_TRACER.events == ()
    assert timed.to_json() == plain.to_json()
    emit(
        "Observability — tracer-off run",
        "uninstrumented sim results exactly equal and byte-identical "
        "as JSON; NULL_TRACER recorded 0 events",
    )


def test_traced_run_observation_only(benchmark):
    plain = FabricSession().run(_sim_spec())

    def run_traced():
        return FabricSession().run(
            _sim_spec(outputs=("telemetry", "trace", "metrics"))
        )

    traced = benchmark.pedantic(run_traced, rounds=3, iterations=1)
    assert traced.telemetry == plain.telemetry
    assert len(traced.trace.events) > 100
    emit(
        "Observability — traced run",
        f"{len(traced.trace.events)} events captured; telemetry exactly "
        "equal to the uninstrumented run",
    )


def _cost_spec(seed=0):
    from repro.api import SliceSpec

    return ScenarioSpec(
        slices=(SliceSpec("S", (2, 2, 1), (0, 0, 0)),),
        outputs=("costs",),
        seed=seed,
    )


def test_runtime_tracer_off_bytes_identical(benchmark):
    """A session with the default (off) runtime tracer produces the same
    bytes as one traced with wall-clock spans — and records nothing."""
    traced_runtime = RuntimeTracer("bench")
    traced = FabricSession(runtime=traced_runtime).run(_cost_spec())

    def run_untraced():
        return FabricSession().run(_cost_spec())

    untraced = benchmark.pedantic(run_untraced, rounds=5, iterations=1)
    assert untraced.to_json() == traced.to_json()
    assert NULL_RUNTIME_TRACER.events == ()
    assert len(traced_runtime.spans("session")) >= 1
    emit(
        "Observability — runtime tracer off",
        "untraced evaluation byte-identical to a traced one; "
        "NULL_RUNTIME_TRACER recorded 0 events, traced session left "
        f"{len(traced_runtime.spans('session'))} span(s)",
    )


def test_null_log_and_tracer_guards_cost_nothing(benchmark):
    """The hot-path guards (``log.enabled_for`` / ``runtime.enabled``)
    on the off singletons must stay nanosecond-scale — they run once or
    twice per request through the serving tier."""
    ITERATIONS = 100_000

    def guarded_loop():
        hits = 0
        for _ in range(ITERATIONS):
            if NULL_LOG.enabled_for(DEBUG):  # pragma: no cover
                hits += 1
            if NULL_RUNTIME_TRACER.enabled:  # pragma: no cover
                hits += 1
        return hits

    hits = benchmark.pedantic(guarded_loop, rounds=3, iterations=1)
    assert hits == 0
    per_guard_ns = benchmark.stats["mean"] / (2 * ITERATIONS) * 1e9
    # Generous ceiling: a Python attribute read + compare, not real work.
    assert per_guard_ns < 2_000
    emit(
        "Observability — off-state guards",
        f"{per_guard_ns:.0f} ns per guard check "
        f"({2 * ITERATIONS} checks); nothing emitted",
    )
