"""Observability overhead: tracer-off must cost (near) nothing.

The tracing layer's contract is zero overhead when off — every sim call
site guards on ``tracer.enabled`` against the shared ``NULL_TRACER``
singleton, so an uninstrumented run executes no event construction at
all. Two benches hold the layer to it: the first measures the same
simulated workload with tracing off and on and asserts the results are
*exactly equal* (observation never perturbs the simulation), the second
that an uninstrumented result still serializes byte-identically to a
result produced with no observability code in the process at all.
"""

from _helpers import emit
from repro.api import FabricSession, FailurePlan, ScenarioSpec, figure6_slices
from repro.obs.tracer import NULL_TRACER


def _sim_spec(outputs=("telemetry",)):
    return ScenarioSpec(
        fabric="photonic",
        slices=figure6_slices(),
        mode="sim",
        outputs=outputs,
        failures=FailurePlan(failed_chips=((1, 2, 0),)),
    )


def test_tracer_off_results_identical(benchmark):
    plain = FabricSession().run(_sim_spec())

    def run_uninstrumented():
        return FabricSession().run(_sim_spec())

    timed = benchmark.pedantic(run_uninstrumented, rounds=3, iterations=1)
    assert timed == plain
    # The tracer-off path never recorded anything anywhere.
    assert NULL_TRACER.events == ()
    assert timed.to_json() == plain.to_json()
    emit(
        "Observability — tracer-off run",
        "uninstrumented sim results exactly equal and byte-identical "
        "as JSON; NULL_TRACER recorded 0 events",
    )


def test_traced_run_observation_only(benchmark):
    plain = FabricSession().run(_sim_spec())

    def run_traced():
        return FabricSession().run(
            _sim_spec(outputs=("telemetry", "trace", "metrics"))
        )

    traced = benchmark.pedantic(run_traced, rounds=3, iterations=1)
    assert traced.telemetry == plain.telemetry
    assert len(traced.trace.events) > 100
    emit(
        "Observability — traced run",
        f"{len(traced.trace.events)} events captured; telemetry exactly "
        "equal to the uninstrumented run",
    )
