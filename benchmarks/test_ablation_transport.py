"""Ablation: host transport policies for circuit switching (Section 1).

"New host networking software stacks optimized for circuit-switching"
must decide when a 3.7 us circuit re-pointing is worth it. This bench
drives one chip's egress with mixed-destination message traffic and
compares the greedy scheduler against threshold batching across
hysteresis values, reporting makespan, mean latency and the fraction of
time burnt on reconfiguration.
"""

import numpy as np
import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.transport import (
    CircuitTransport,
    GreedyLongestQueue,
    Message,
    ThresholdBatching,
)
from repro.phy.constants import WAVELENGTH_RATE_BYTES

MESSAGE_BYTES = 64 * 1024  # 64 KiB RPCs: transmission ~2.3 us vs r = 3.7 us
DESTINATIONS = 8
MESSAGES = 400


def _workload(seed=0):
    rng = np.random.default_rng(seed)
    messages = []
    t = 0.0
    for _ in range(MESSAGES):
        t += float(rng.exponential(1e-6))
        dst = int(rng.integers(DESTINATIONS))
        messages.append(Message(arrival_s=t, dst=dst, n_bytes=MESSAGE_BYTES))
    return messages


def _sweep():
    messages = _workload()
    policies = [
        ("greedy", GreedyLongestQueue()),
        ("batch x2", ThresholdBatching(hysteresis=2.0)),
        ("batch x4", ThresholdBatching(hysteresis=4.0)),
        ("batch x16", ThresholdBatching(hysteresis=16.0)),
    ]
    rows = []
    for name, policy in policies:
        stats = CircuitTransport(
            policy, rate_bytes=WAVELENGTH_RATE_BYTES
        ).run(messages)
        rows.append((name, stats))
    return rows


def test_ablation_transport_policies(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation — circuit-switched host transport "
        f"({MESSAGES} x {MESSAGE_BYTES >> 10} KiB to {DESTINATIONS} peers)",
        render_table(
            ["policy", "reconfigs", "reconfig overhead", "mean latency",
             "p99 latency", "makespan"],
            [
                [
                    name,
                    str(stats.reconfigurations),
                    f"{stats.reconfig_overhead:.1%}",
                    f"{stats.mean_latency_s * 1e6:.1f} us",
                    f"{stats.p99_latency_s * 1e6:.1f} us",
                    f"{stats.makespan_s * 1e6:.1f} us",
                ]
                for name, stats in rows
            ],
        ),
    )
    stats = dict(rows)
    # Batching cuts reconfiguration count monotonically with hysteresis.
    reconfigs = [s.reconfigurations for _n, s in rows]
    assert reconfigs == sorted(reconfigs, reverse=True)
    # All policies deliver everything.
    assert all(len(s.delivered) == MESSAGES for s in stats.values())
    # Aggressive batching beats greedy on makespan when r ~ service time.
    assert stats["batch x16"].makespan_s < stats["greedy"].makespan_s
    assert stats["batch x16"].reconfig_overhead < stats["greedy"].reconfig_overhead
