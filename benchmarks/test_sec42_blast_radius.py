"""Section 4.2: blast radius — rack migration vs optical repair.

A 90-day failure trace over the 4096-chip TPUv4-scale cluster, recovered
under (a) the production rack-granularity migration policy [60] and (b)
LIGHTPATH circuit repair. The paper's claim: optics shrinks the blast
radius of one chip failure from a rack (64 chips) to the failed chip's
server, and the recovery stall from a checkpoint restore to microseconds.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.failures.blast_radius import compare_policies, improvement_factor
from repro.failures.inject import FleetFailureModel
from repro.topology.tpu import TpuCluster

HORIZON_S = 90 * 24 * 3600.0


def _trace_and_compare():
    cluster = TpuCluster()  # 64 racks, 4096 chips
    model = FleetFailureModel(cluster, seed=2024)
    events = model.sample_failures(HORIZON_S)
    rack_report, optical_report = compare_policies(events)
    return events, rack_report, optical_report


def test_sec42_blast_radius(benchmark):
    events, rack_report, optical_report = benchmark.pedantic(
        _trace_and_compare, rounds=1, iterations=1
    )
    emit(
        "Section 4.2 — 90-day failure trace on the 4096-chip cluster",
        render_table(
            ["metric", rack_report.policy, optical_report.policy],
            [
                ["failures", str(rack_report.failures), str(optical_report.failures)],
                [
                    "blast radius (chips)",
                    str(rack_report.blast_radius_chips),
                    str(optical_report.blast_radius_chips),
                ],
                [
                    "total chip impact",
                    str(rack_report.total_chip_impact),
                    str(optical_report.total_chip_impact),
                ],
                [
                    "downtime per failure",
                    "~10 min (checkpoint restore)",
                    "3.7 us (circuit setup)",
                ],
                [
                    "lost chip-seconds",
                    f"{rack_report.lost_chip_seconds:.3g}",
                    f"{optical_report.lost_chip_seconds:.3g}",
                ],
            ],
        ),
    )
    assert events, "a 4096-chip cluster sees failures in 90 days"
    assert rack_report.blast_radius_chips == 64
    assert optical_report.blast_radius_chips == 4
    assert improvement_factor(rack_report, optical_report) == pytest.approx(16.0)
    assert optical_report.total_downtime_s < rack_report.total_downtime_s / 1e6
