"""Ablation: fault-tolerance coverage vs fiber budget (Section 5).

"Fault-tolerant circuit pathfinding must intelligently manage the addition
of fibers, aiming to minimize fiber usage while effectively managing
faults." The bench evaluates every single-chip failure of the Figure 6a/7
layout against a sweep of per-trunk fiber budgets, reporting the coverage
curve and the minimum uniform budget that repairs everything.
"""

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.fiber_planner import FiberPlanner

LAYOUT = [
    ("Slice-3", (4, 4, 1), (0, 0, 0)),
    ("Slice-4", (4, 4, 2), (0, 0, 1)),
    ("Slice-1", (4, 2, 1), (0, 0, 3)),
]
BUDGETS = [0, 1, 2, 4, 8]


def _coverage():
    planner = FiberPlanner(rack_shape=(4, 4, 4), layout=LAYOUT)
    # Sample a representative subset: one failure per slice row.
    scenarios = planner.all_single_failures()[::5]
    curve = planner.coverage_curve(BUDGETS, scenarios)
    minimum = planner.minimum_fibers(scenarios, upper_bound=16)
    return curve, minimum, scenarios


def test_ablation_fiber_budget(benchmark):
    curve, minimum, scenarios = benchmark.pedantic(_coverage, rounds=1, iterations=1)
    emit(
        "Ablation — repair coverage vs fibers per inter-server trunk "
        f"({len(scenarios)} single-failure scenarios)",
        render_table(
            ["fibers/trunk", "scenarios repaired", "coverage", "max fibers used"],
            [
                [
                    str(p.fibers_per_trunk),
                    f"{p.covered}/{p.total}",
                    f"{p.coverage:.0%}",
                    str(p.max_fibers_used),
                ]
                for p in curve
            ],
        ),
    )
    emit(
        "Ablation — minimum uniform budget covering all scenarios",
        f"{minimum} fibers per trunk",
    )
    coverages = [p.coverage for p in curve]
    assert coverages == sorted(coverages), "more fibers never hurt"
    assert curve[0].coverage < 1.0, "zero fibers cannot repair cross-server"
    assert curve[-1].coverage == 1.0
    assert 0 < minimum <= 8
