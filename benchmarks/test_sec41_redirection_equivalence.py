"""Section 4.1: bandwidth redirection equals simultaneous buckets.

The paper argues that steering all chip bandwidth into one ring per stage
costs the same N/B transmission time as splitting the buffer into D parts
and running D bucket passes simultaneously in rotated dimension orders
([41]-style) — both fully utilize the chip's egress. The bench sweeps
dimension counts and buffer sizes, comparing the two closed forms and a
discrete-event execution of the simultaneous variant.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.collectives.bucket import simultaneous_bucket_schedules
from repro.collectives.cost_model import (
    bucket_reduce_scatter,
    simultaneous_bucket_beta_factor,
)
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_concurrent_schedules
from repro.topology.slices import Slice
from repro.topology.torus import Torus

SWEEP = [[4, 4], [4, 4, 4], [2, 4], [4, 2, 4], [8, 8]]


def _sweep():
    rows = []
    for dims in SWEEP:
        steered = bucket_reduce_scatter(dims, bandwidth_fraction=1.0).beta_factor
        simultaneous = simultaneous_bucket_beta_factor(dims)
        rows.append((dims, steered, simultaneous))
    return rows


def test_sec41_redirection_equivalence(benchmark):
    rows = benchmark(_sweep)
    emit(
        "Section 4.1 — steered single pass vs simultaneous rotated buckets "
        "(beta factors, x N/B)",
        render_table(
            ["dims", "steered single pass", "simultaneous buckets", "equal"],
            [
                [
                    "x".join(map(str, dims)),
                    f"{steered:.4f}",
                    f"{simultaneous:.4f}",
                    "yes" if abs(steered - simultaneous) < 1e-12 else "NO",
                ]
                for dims, steered, simultaneous in rows
            ],
        ),
    )
    for _dims, steered, simultaneous in rows:
        assert steered == pytest.approx(simultaneous, rel=1e-12)


def test_sec41_simultaneous_execution(benchmark):
    """The D rotated parts, executed concurrently, share links cleanly."""
    rack = Torus((4, 4, 4))
    slc = Slice(name="s", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))
    n_bytes = 1 << 24

    def run():
        parts = simultaneous_bucket_schedules(slc, n_bytes)
        caps = {link: CHIP_EGRESS_BYTES / 2 for link in rack.links()}
        return run_concurrent_schedules(parts, caps, alpha_s=0.0, reconfig_s=0.0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    slowest = max(r.duration_s for r in results)
    expected = (
        bucket_reduce_scatter([4, 4], bandwidth_fraction=1.0).beta_factor
        * n_bytes
        / CHIP_EGRESS_BYTES
    )
    emit(
        "Section 4.1 — simultaneous buckets executed on the simulator",
        render_table(
            ["quantity", "value"],
            [
                ["parts", str(len(results))],
                ["slowest part", f"{slowest * 1e6:.1f} us"],
                ["steered closed form", f"{expected * 1e6:.1f} us"],
            ],
        ),
    )
    assert slowest == pytest.approx(expected, rel=1e-6)
