"""Ablation: ALLTOALL strategies on LIGHTPATH vs the alternatives.

Section 5 singles out all-to-all traffic as the hard case for circuit
fabrics. This bench compares, for a 16-chip slice, three ways of running
ALLTOALL and sweeps the slice size to show the scaling: the circuit-round
variant pays (p-1) reconfigurations but moves each shard exactly once;
the ring decomposition forwards shards (p/2)x more bytes; the electrical
direct pattern congests the static torus.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.collectives.alltoall import (
    alltoall_electrical_schedule,
    alltoall_optical_cost,
    alltoall_optical_schedule,
    alltoall_ring_cost,
    alltoall_ring_schedule,
)
from repro.collectives.cost_model import CostParameters
from repro.topology.slices import Slice
from repro.topology.torus import Torus

N_BYTES = 1 << 24


def _compare():
    rack = Torus((4, 4, 4))
    slc = Slice(name="a2a", rack=rack, offset=(0, 0, 0), shape=(4, 4, 1))
    optical = alltoall_optical_schedule(slc.chips(), N_BYTES)
    ring = alltoall_ring_schedule(slc, N_BYTES)
    electrical = alltoall_electrical_schedule(slc, N_BYTES)
    sweep = [
        (p, alltoall_optical_cost(p), alltoall_ring_cost(p))
        for p in (4, 8, 16, 32)
    ]
    return optical, ring, electrical, sweep


def test_ablation_alltoall(benchmark):
    optical, ring, electrical, sweep = benchmark(_compare)
    params = CostParameters()
    emit(
        "Ablation — ALLTOALL on a 16-chip slice (N = 16 MiB)",
        render_table(
            ["strategy", "phases", "bytes moved", "congestion-free", "reconfigs"],
            [
                [
                    "optical circuit rounds",
                    str(len(optical.phases)),
                    f"{optical.total_bytes / (1 << 20):.0f} MiB",
                    "yes" if optical.is_congestion_free else "NO",
                    str(optical.reconfiguration_count),
                ],
                [
                    "ring decomposition",
                    str(len(ring.phases)),
                    f"{ring.total_bytes / (1 << 20):.0f} MiB",
                    "yes" if ring.is_congestion_free else "NO",
                    "0",
                ],
                [
                    "electrical direct",
                    str(len(electrical.phases)),
                    f"{electrical.total_bytes / (1 << 20):.0f} MiB",
                    "yes" if electrical.is_congestion_free else "NO",
                    "0",
                ],
            ],
        ),
    )
    emit(
        "Ablation — ALLTOALL beta factor vs chips (x N/B)",
        render_table(
            ["chips", "circuit rounds", "ring decomposition", "ring penalty"],
            [
                [
                    str(p),
                    f"{o.beta_factor:.3f}",
                    f"{r.beta_factor:.3f}",
                    f"{r.beta_factor / o.beta_factor:.1f}x",
                ]
                for p, o, r in sweep
            ],
        ),
    )
    # Circuit rounds: congestion-free, minimal bytes, p-1 reconfigs.
    assert optical.is_congestion_free
    assert optical.reconfiguration_count == 15
    # The static torus congests under direct all-to-all.
    assert not electrical.is_congestion_free
    # Ring moves (p/2)x the bytes of circuit rounds.
    assert ring.total_bytes / optical.total_bytes == pytest.approx(8.0)
    for p, o, r in sweep:
        assert r.beta_factor / o.beta_factor == pytest.approx(p / 2)
        assert o.seconds(N_BYTES, params) < r.seconds(N_BYTES, params)
