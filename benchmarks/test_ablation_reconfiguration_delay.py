"""Ablation: when does paying the reconfiguration delay r pay off?

Section 4.1's trade-off: steering buys a 3x beta reduction for Slice-1 but
charges r before the ring starts. This bench sweeps buffer sizes across
the crossover and sweeps r across technology classes (LIGHTPATH MZIs at
3.7 us vs millisecond-class datacenter OCSes) to show why *server-scale*
microsecond switching is the enabling property.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import Interconnect, reduce_scatter_cost
from repro.core.reconfig import breakeven_buffer_bytes
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus

BUFFERS = [1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30]
RECONFIG_SWEEP = [3.7e-6, 50e-6, 1e-3, 20e-3]


def _sweep():
    allocator = SliceAllocator(Torus((4, 4, 4)))
    slice1 = allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    electrical = reduce_scatter_cost(slice1, Interconnect.ELECTRICAL)
    optical = reduce_scatter_cost(slice1, Interconnect.OPTICAL)
    rows = []
    for n_bytes in BUFFERS:
        params = CostParameters()
        rows.append(
            (
                n_bytes,
                electrical.seconds(n_bytes, params),
                optical.seconds(n_bytes, params),
            )
        )
    breakeven = breakeven_buffer_bytes(
        electrical.beta_factor - optical.beta_factor, CHIP_EGRESS_BYTES
    )
    r_rows = []
    for r in RECONFIG_SWEEP:
        r_rows.append(
            (
                r,
                breakeven_buffer_bytes(
                    electrical.beta_factor - optical.beta_factor,
                    CHIP_EGRESS_BYTES,
                    reconfig_s=r,
                ),
            )
        )
    return rows, breakeven, r_rows


def test_ablation_reconfiguration_delay(benchmark):
    rows, breakeven, r_rows = benchmark(_sweep)
    emit(
        "Ablation — Slice-1 REDUCESCATTER: static electrical vs steered "
        "optics across buffer sizes",
        render_table(
            ["buffer", "electrical", "steered optics", "winner"],
            [
                [
                    f"{n >> 10} KiB" if n < 1 << 20 else f"{n >> 20} MiB",
                    f"{e * 1e6:.2f} us",
                    f"{o * 1e6:.2f} us",
                    "optics" if o < e else "electrical",
                ]
                for n, e, o in rows
            ],
        ),
    )
    emit(
        "Ablation — breakeven buffer vs reconfiguration technology",
        render_table(
            ["reconfiguration delay", "breakeven buffer"],
            [
                [f"{r * 1e6:.1f} us", f"{int(n):,} bytes"]
                for r, n in r_rows
            ],
        ),
    )
    # Crossover sits between 1 KiB and 4 MiB: tiny buffers prefer static
    # links, every realistic gradient buffer prefers steering.
    assert rows[0][1] < rows[0][2]  # 1 KiB: electrical wins
    assert rows[-1][2] < rows[-1][1]  # 1 GiB: optics wins
    assert 1 << 9 < breakeven < 1 << 22
    # Millisecond OCS-class switching pushes the breakeven ~3 decades up —
    # the case for microsecond server-scale reconfiguration.
    assert r_rows[-1][1] / r_rows[0][1] == pytest.approx(20e-3 / 3.7e-6, rel=1e-9)
