"""Ablation: slice placement policy vs stranded bandwidth.

Figure 5's under-utilization depends on how slices are shaped and placed.
This bench places the same multi-tenant workload with a locality-first
(compact-shape) policy and a utilization-aware policy, scoring the
chip-weighted electrical bandwidth each strands — and shows that even
the best placement cannot reach 100 %, which is the residual only
LIGHTPATH steering recovers.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.topology.placement import (
    PlacementRequest,
    compactness_first_placement,
    score_placement,
    utilization_aware_placement,
)
from repro.topology.torus import Torus

WORKLOAD = [
    PlacementRequest("tenant-a", 8),
    PlacementRequest("tenant-b", 8),
    PlacementRequest("tenant-c", 16),
    PlacementRequest("tenant-d", 32),
]


def _place():
    rack = Torus((4, 4, 4))
    compact = compactness_first_placement(rack, WORKLOAD)
    aware = utilization_aware_placement(Torus((4, 4, 4)), WORKLOAD)
    return compact, aware


def test_ablation_placement_policy(benchmark):
    compact, aware = benchmark(_place)
    compact_score = score_placement(compact)
    aware_score = score_placement(aware)

    def rows(outcome):
        return [
            [
                slc.name,
                "x".join(map(str, slc.shape)),
                f"{slc.electrical_utilization():.0%}",
            ]
            for slc in outcome.allocator.slices
        ]

    emit(
        "Ablation — compactness-first placement (locality heuristic)",
        render_table(["tenant", "shape", "elec utilization"], rows(compact)),
    )
    emit(
        "Ablation — utilization-aware placement",
        render_table(["tenant", "shape", "elec utilization"], rows(aware)),
    )
    emit(
        "Ablation — chip-weighted outcome",
        render_table(
            ["policy", "utilization", "stranded", "optics recovers"],
            [
                [
                    "compactness-first",
                    f"{compact_score.weighted_utilization:.0%}",
                    f"{compact_score.stranded_fraction:.0%}",
                    "100 %",
                ],
                [
                    "utilization-aware",
                    f"{aware_score.weighted_utilization:.0%}",
                    f"{aware_score.stranded_fraction:.0%}",
                    "100 %",
                ],
            ],
        ),
    )
    assert set(compact.placed) == set(aware.placed)
    assert aware_score.weighted_utilization > compact_score.weighted_utilization
    # Placement alone cannot close the gap — steering is still needed.
    assert aware_score.weighted_utilization < 1.0
    assert compact_score.stranded_fraction > 0.5
