"""Section 3 scalars: the LIGHTPATH capability report.

Regenerates the headline hardware numbers the paper reports for the
prototype — 32 tiles, 16 lasers/tile, 224 Gbps per wavelength, >10,000
waveguides per tile, 3.7 us reconfiguration, 0.25 dB crossings — from the
wafer model, and verifies a full-wafer circuit closes its link budget.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.circuits import CircuitManager
from repro.core.wafer import LightpathWafer
from repro.phy.waveguide import tile_waveguide_capacity


def _capabilities():
    wafer = LightpathWafer()
    manager = CircuitManager(wafer=wafer)
    corner_to_corner = manager.establish((0, 0), (3, 7))
    return wafer, corner_to_corner


def test_sec3_capability_report(benchmark):
    wafer, circuit = benchmark(_capabilities)
    caps = wafer.capabilities()
    emit(
        "Section 3 — LIGHTPATH capability summary",
        render_table(["capability", "value"], [list(r) for r in caps.rows()]),
    )
    emit(
        "Section 3 — corner-to-corner circuit feasibility",
        render_table(
            ["quantity", "value"],
            [
                ["route crossings", str(circuit.route.boundary_crossings)],
                ["MZI hops", str(circuit.route.mzi_hops)],
                ["path loss", f"{circuit.link_report.path_loss_db:.2f} dB"],
                ["link margin", f"{circuit.link_report.margin_db:.2f} dB"],
                ["pre-FEC BER", f"{circuit.link_report.detection.ber:.2e}"],
            ],
        ),
    )
    assert caps.tiles == 32
    assert caps.lasers_per_tile == 16
    assert caps.wavelength_rate_bps == pytest.approx(224e9)
    assert caps.reconfiguration_latency_s == pytest.approx(3.7e-6)
    assert caps.waveguides_per_tile >= 10_000
    # The 3 um pitch supports the > 10,000 waveguides claim on a 50 mm tile.
    assert tile_waveguide_capacity(0.050) > 10_000
    assert circuit.link_report.feasible
