"""Figure 3b: distribution of reticle stitch loss.

The paper measures the per-crossing signal loss across the prototype and
plots its distribution; the low mean (0.25 dB) is the evidence that
circuits can be routed within the same active silicon layer. This bench
regenerates the histogram from the calibrated fabrication-variation model
and checks the routing-feasibility conclusion via the link budget.
"""

import numpy as np

from _helpers import emit
from repro.analysis.tables import render_histogram, render_table
from repro.phy.link_budget import LinkBudget
from repro.phy.stitch_loss import StitchLossModel
from repro.phy.waveguide import PathLoss, waveguide


def _histogram():
    model = StitchLossModel(rng=np.random.default_rng(42))
    return model.histogram(samples=20000, bins=24)


def test_fig3b_stitch_loss_distribution(benchmark):
    hist = benchmark(_histogram)
    emit(
        "Figure 3b — reticle stitch loss distribution",
        render_histogram(
            list(hist.bin_edges_db), list(hist.counts), width=36, unit=" dB"
        ),
    )
    emit(
        "Figure 3b — statistics",
        render_table(
            ["quantity", "measured (model)", "paper"],
            [
                ["mean loss", f"{hist.mean_db:.3f} dB", "0.25 dB"],
                ["median loss", f"{hist.median_db:.3f} dB", "~0.25 dB"],
                ["p95 loss", f"{hist.p95_db:.3f} dB", "< 0.8 dB (axis)"],
            ],
        ),
    )
    assert abs(hist.mean_db - 0.25) < 0.02
    assert hist.p95_db < 0.8

    # The paper's conclusion: crossings are cheap enough to route in-layer.
    budget = LinkBudget()
    worst_case = PathLoss(
        segments=[waveguide(0.5, crossings=10)],
        mzi_hops=4,
        crossing_loss_db=hist.p95_db,
    )
    assert budget.evaluate(worst_case).feasible
