"""Figure 7: optical circuits repair broken rings congestion-free.

Same failure as the Figure 6a bench, but the rack carries a LIGHTPATH
fabric: the failed chip's ring neighbours get dedicated end-to-end optical
circuits to a free chip, placed on separate waveguides and fibers. The
repair takes one 3.7 us switch-programming round and congests nothing —
the blast radius collapses to the failed chip.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.topology.slices import SliceAllocator
from repro.topology.tpu import TpuRack

FAILED = (1, 2, 0)


def _repair():
    rack = TpuRack(0)
    fabric = LightpathRackFabric(rack)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    plan = plan_optical_repair(fabric, allocator, slice3, FAILED)
    return fabric, plan


def test_fig7_optical_repair(benchmark):
    fabric, plan = benchmark.pedantic(_repair, rounds=1, iterations=1)
    emit(
        "Figure 7 — optical repair of the broken rings",
        render_table(
            ["quantity", "value", "paper"],
            [
                ["failed chip", str(plan.failed), "TPU 7 (red)"],
                ["replacement", str(plan.replacement), "TPU 1 (free)"],
                [
                    "rings repaired",
                    ", ".join(f"dim{r.dim}" for r in plan.rings),
                    "X and Y rings",
                ],
                ["repair circuits", str(len(plan.circuits)), "pred/succ per ring"],
                ["fibers used", str(plan.fibers_used), "separate fibers"],
                [
                    "setup latency",
                    f"{plan.setup_latency_s * 1e6:.1f} us",
                    "r = 3.7 us",
                ],
                ["congestion", "none (dedicated resources)", "none"],
                ["blast radius", f"{plan.blast_radius_chips} chip", "1 server"],
            ],
        ),
    )
    assert plan.setup_latency_s == pytest.approx(3.7e-6)
    assert fabric.is_congestion_free()
    assert {r.dim for r in plan.rings} == {0, 1}
    assert 2 <= len(plan.circuits) <= 4
    # Dedicated resources: circuits consume distinct fibers.
    assert fabric.fibers_in_use() == plan.fibers_used
