"""Table 1: REDUCESCATTER alpha-beta costs of Slice-1 (4x2x1).

Electrical interconnects pay 3x the beta cost because the slice can only
use one of the torus's three dimensions congestion-free; LIGHTPATH steers
all 16 wavelengths into one full ring over the 8 chips for the optimal
N(p-1)/(pB), at the price of one 3.7 us reconfiguration. The bench prints
the symbolic rows and cross-checks them against the discrete-event
simulator.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import cost_row, render_table
from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import (
    Interconnect,
    build_reduce_scatter_schedule,
    plan_reduce_scatter,
    reduce_scatter_cost,
)
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_schedule
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus

N_BYTES = 1 << 26  # 64 MiB gradient buffer


def _slice1():
    rack = Torus((4, 4, 4))
    allocator = SliceAllocator(rack)
    return rack, allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))


def _table1():
    rack, slice1 = _slice1()
    electrical = reduce_scatter_cost(slice1, Interconnect.ELECTRICAL)
    optical = reduce_scatter_cost(slice1, Interconnect.OPTICAL)
    measured = {}
    params = CostParameters()
    for interconnect in (Interconnect.ELECTRICAL, Interconnect.OPTICAL):
        strategy = plan_reduce_scatter(slice1, interconnect)
        caps = {
            link: CHIP_EGRESS_BYTES * strategy.bandwidth_fraction
            for link in rack.links()
        }
        schedule = build_reduce_scatter_schedule(slice1, N_BYTES, interconnect)
        measured[interconnect] = run_schedule(
            schedule, caps, params.alpha_s, params.reconfig_s
        )
    return electrical, optical, measured


def test_table1_reduce_scatter_costs(benchmark):
    electrical, optical, measured = benchmark.pedantic(_table1, rounds=1, iterations=1)
    params = CostParameters()
    emit(
        "Table 1 — REDUCESCATTER costs of Slice-1 (N = 64 MiB)",
        render_table(
            ["slice", "elec a", "optics a", "elec b", "optics b", "b ratio"],
            [cost_row("Slice-1 (4x2x1)", electrical, optical)],
        ),
    )
    emit(
        "Table 1 — discrete-event cross-check",
        render_table(
            ["interconnect", "symbolic", "simulated"],
            [
                [
                    "electrical",
                    f"{electrical.seconds(N_BYTES, params) * 1e3:.3f} ms",
                    f"{measured[Interconnect.ELECTRICAL].duration_s * 1e3:.3f} ms",
                ],
                [
                    "optical",
                    f"{optical.seconds(N_BYTES, params) * 1e3:.3f} ms",
                    f"{measured[Interconnect.OPTICAL].duration_s * 1e3:.3f} ms",
                ],
            ],
        ),
    )
    # The paper's row: elec 7a | N(7/8)(3/B); optics 7a + r | N(7/8)(1/B).
    assert electrical.alpha_count == 7
    assert optical.alpha_count == 7
    assert optical.reconfig_count == 1
    assert electrical.beta_factor / optical.beta_factor == pytest.approx(3.0)
    for interconnect, symbolic in (
        (Interconnect.ELECTRICAL, electrical),
        (Interconnect.OPTICAL, optical),
    ):
        assert measured[interconnect].duration_s == pytest.approx(
            symbolic.seconds(N_BYTES, params), rel=1e-6
        )
