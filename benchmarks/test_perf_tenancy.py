"""Tenancy-simulator performance smoke: events/sec must not regress.

A day of churn at 1500 arrivals/day over the 4-rack pod pushes ~3k
events (arrival + departure per job, plus series samples) through the
engine with a placement scan per arrival — comfortably north of the
floor on any machine. The bound exists to catch an accidental O(n^2)
regression in the hot path (e.g. occupancy rebuilds inside the
placement scan), not to measure the hardware.
``scripts/bench_tenancy.py`` records honest numbers to
``BENCH_tenancy.json``.
"""

from _helpers import emit
from repro.tenancy import TenancyConfig, TenancySimulator, simulate_tenancy

#: Deliberately loose: an interpreter-speed floor, not a target.
MIN_EVENTS_PER_SEC = 200.0

DAY_CONFIG = TenancyConfig(seed=7, horizon_s=86400.0)


def _run_both():
    electrical = simulate_tenancy(DAY_CONFIG, "electrical")
    photonic = simulate_tenancy(DAY_CONFIG, "photonic")
    return electrical, photonic


def test_tenancy_day_events_per_sec(benchmark):
    import time

    start = time.perf_counter()
    electrical, photonic = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    events = electrical.events_processed + photonic.events_processed
    rate = events / max(elapsed, 1e-9)
    assert electrical.arrivals > 1000 and photonic.arrivals > 1000
    assert (
        photonic.stranded_fraction < electrical.stranded_fraction
    ), "photonic must strand less than electrical"
    assert rate >= MIN_EVENTS_PER_SEC, (
        f"tenancy simulator regressed to {rate:.0f} events/sec "
        f"(floor {MIN_EVENTS_PER_SEC:.0f})"
    )
    emit(
        "Tenancy simulator — one simulated day, 256 chips, both fabrics",
        f"{events} events in {elapsed:.3f} s ({rate:,.0f} events/sec); "
        f"stranded fraction {electrical.stranded_fraction:.3f} -> "
        f"{photonic.stranded_fraction:.3f}",
    )


def test_tenancy_determinism_back_to_back():
    first = simulate_tenancy(DAY_CONFIG, "electrical")
    second = simulate_tenancy(DAY_CONFIG, "electrical")
    assert first == second


def test_tenancy_obs_hooks_off_by_default():
    """The zero-overhead-off contract: a silent run schedules no
    heartbeat events and keeps the stats byte-identical to a logged
    run's (the heartbeat count is subtracted from the event total)."""
    quiet = TenancySimulator(DAY_CONFIG, "electrical")
    stats = quiet.run()
    assert quiet._heartbeats_fired == 0

    import io

    from repro.obs.log import EventLog

    logged_sink = io.StringIO()
    logged = TenancySimulator(
        DAY_CONFIG,
        "electrical",
        log=EventLog(logged_sink, level="info", source="bench"),
    )
    logged_stats = logged.run()
    assert logged._heartbeats_fired == 10
    assert logged_stats == stats
    assert logged_sink.getvalue().count("tenancy.progress") == 10
