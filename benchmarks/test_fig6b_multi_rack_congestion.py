"""Figure 6b: replacing a failed chip with a remote rack's chip congests.

Two OCS-joined racks form a 4x4x8 torus. Rack 1 (z = 0..3) is fully
allocated — Slice-2 (the failed tenant) plus filler tenants — so the only
free chips live in rack 2 (z = 4..7), cornered behind Slice-1 and two
smaller tenants. The failed chip's ring neighbours must cross into rack 2
via the Z dimension (the OCS), and every onward X/Y hop lands on links
already carrying Slice-1's (or another tenant's) rings — the purple-line
collision of the paper's figure.
"""

from _helpers import emit
from repro.analysis.tables import render_table
from repro.failures.recovery import ElectricalRecoveryAnalysis
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus

FAILED = (0, 0, 0)


def _scenario():
    torus = Torus((4, 4, 8))
    allocator = SliceAllocator(torus)
    slice2 = allocator.allocate("Slice-2", (4, 2, 1), (0, 0, 0))
    allocator.allocate("rack1-B", (4, 2, 1), (0, 2, 0))
    allocator.allocate("rack1-C", (4, 4, 1), (0, 0, 1))
    allocator.allocate("rack1-D", (4, 4, 1), (0, 0, 2))
    allocator.allocate("rack1-E", (4, 4, 1), (0, 0, 3))
    allocator.allocate("Slice-1", (4, 4, 3), (0, 0, 4))
    allocator.allocate("rack2-D", (4, 2, 1), (0, 0, 7))
    allocator.allocate("rack2-E", (2, 2, 1), (0, 2, 7))
    return torus, allocator, slice2


def _analyze():
    torus, allocator, slice2 = _scenario()
    analysis = ElectricalRecoveryAnalysis(torus, allocator, max_hops=6)
    attempts = analysis.evaluate_all_free_chips(slice2, FAILED)
    return allocator, attempts


def test_fig6b_multi_rack_replacement_congestion(benchmark):
    allocator, attempts = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    free = allocator.free_chips()
    emit(
        "Figure 6b — two-rack scenario (rack 1 = z 0..3, rack 2 = z 4..7)",
        render_table(
            ["quantity", "value"],
            [
                ["free chips in rack 1", str(sum(1 for c in free if c[2] < 4))],
                ["free chips in rack 2", str(sum(1 for c in free if c[2] >= 4))],
            ],
        ),
    )
    emit(
        "Figure 6b — replacement attempts via the inter-rack OCS",
        render_table(
            ["free chip (rack 2)", "feasible", "best-path congested links"],
            [
                [
                    str(a.free_chip),
                    "yes" if a.feasible else "no",
                    str(a.total_congested_links),
                ]
                for a in attempts
            ],
        ),
    )
    assert all(c[2] >= 4 for c in free), "rack 1 must be full"
    assert attempts
    assert all(not a.feasible for a in attempts)
