"""Pytest configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
computes the quantity with ``benchmark(...)`` (so pytest-benchmark reports
the cost of the computation) and prints rows comparable to the paper.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
