"""Ablation: wavelength blocking under the continuity constraint.

Part of Section 5's "exploding paths" challenge in its spectral form: a
circuit needs one comb channel free on *every* boundary it crosses. This
bench sweeps offered load on a wafer and compares assignment heuristics
(first-fit / most-used / random) on blocking probability — the classic
RWA result reproduced at on-wafer scale.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.spectrum import AssignmentPolicy, BlockingExperiment

LOADS = [8, 32, 64, 128, 256]


def _sweep():
    experiment = BlockingExperiment(grid=(4, 8), channels=16, seed=5)
    results = {}
    for policy in AssignmentPolicy:
        results[policy] = experiment.sweep(LOADS, policy)
    return results


def test_ablation_wavelength_blocking(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation — blocking probability vs offered circuits "
        "(4x8 wafer, 16 channels/boundary)",
        render_table(
            ["offered"] + [p.value for p in AssignmentPolicy],
            [
                [str(load)]
                + [
                    f"{results[policy][i].blocking_probability:.1%}"
                    for policy in AssignmentPolicy
                ]
                for i, load in enumerate(LOADS)
            ],
        ),
    )
    for policy in AssignmentPolicy:
        probabilities = [p.blocking_probability for p in results[policy]]
        # Light load never blocks; blocking grows with load.
        assert probabilities[0] == 0.0
        assert probabilities[-1] > 0.0
        assert probabilities == sorted(probabilities)
    # First-fit (spectrum packing) should not lose to random selection.
    ff = results[AssignmentPolicy.FIRST_FIT][-1].blocking_probability
    rnd = results[AssignmentPolicy.RANDOM][-1].blocking_probability
    assert ff <= rnd + 0.05


def test_ablation_energy_crossover(benchmark):
    """Copper-vs-optics energy per bit across reach (the Section 1 case)."""
    from repro.phy.energy import (
        ElectricalLinkEnergy,
        PhotonicLinkEnergy,
        crossover_reach_m,
    )

    def sweep():
        electrical = ElectricalLinkEnergy()
        photonic = PhotonicLinkEnergy()
        reaches = [0.01, 0.05, 0.1, 0.2, 0.5]
        rows = [
            (
                reach,
                electrical.energy_pj_per_bit(reach),
                photonic.energy_pj_per_bit(reach),
            )
            for reach in reaches
        ]
        return rows, crossover_reach_m(electrical, photonic)

    rows, crossover = benchmark(sweep)
    emit(
        "Ablation — link energy per bit vs reach (224 Gbps class)",
        render_table(
            ["reach", "copper", "photonic", "winner"],
            [
                [
                    f"{reach * 100:.0f} cm",
                    f"{copper:.2f} pJ/b",
                    f"{optic:.2f} pJ/b",
                    "optics" if optic < copper else "copper",
                ]
                for reach, copper, optic in rows
            ],
        ),
    )
    emit("Ablation — energy crossover reach", f"{crossover * 100:.1f} cm")
    assert 0.0 < crossover < 0.3
    # Server boards span tens of cm: optics wins at server scale.
    assert rows[-1][2] < rows[-1][1]


def test_ablation_wafer_power_budget(benchmark):
    """Wafer power budget: where the watts go at varying activity."""
    from repro.phy.thermal import TilePowerModel

    def sweep():
        model = TilePowerModel()
        return [
            (active, model.wafer_power(active_wavelengths=active))
            for active in (0, 4, 8, 16)
        ]

    rows = benchmark(sweep)
    emit(
        "Ablation — wafer power vs lit wavelengths per tile (32 tiles)",
        render_table(
            ["active lambdas", "total", "lasers", "tuning+heaters", "pJ/bit"],
            [
                [
                    str(active),
                    f"{report.total_w:.1f} W",
                    f"{report.per_tile.laser_w * report.tiles:.1f} W",
                    f"{(report.per_tile.ring_tuning_w + report.per_tile.switch_heater_w) * report.tiles:.1f} W",
                    "inf" if report.pj_per_bit == float("inf") else f"{report.pj_per_bit:.2f}",
                ]
                for active, report in rows
            ],
        ),
    )
    full = rows[-1][1]
    idle = rows[0][1]
    # Static tuning/heater power is the idle floor; lasers dominate at
    # full activity; the full wafer lands in the ~1 pJ/bit class.
    assert idle.total_w > 0.0
    assert full.per_tile.laser_w > full.per_tile.ring_tuning_w
    assert 0.1 < full.pj_per_bit < 5.0
