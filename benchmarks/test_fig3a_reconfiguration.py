"""Figure 3a: Mach-Zehnder router switch time response.

The paper drives an MZI on the LIGHTPATH testbed with a step, captures the
normalized optical amplitude on an oscilloscope, fits an exponential, and
reports a worst-case reconfiguration latency of 3.7 us. This bench
regenerates that measurement from the thermo-optic device model: a noisy
step-response trace, the exponential fit, and the settling-time numbers.
"""

import numpy as np

from _helpers import emit
from repro.analysis.tables import render_table
from repro.phy.constants import RECONFIG_LATENCY_S
from repro.phy.mzi import MziSwitchDynamics


def _measure_and_fit():
    dynamics = MziSwitchDynamics(noise_rms=0.02, rng=np.random.default_rng(42))
    trace = dynamics.measure_step(duration_s=12e-6, samples=4000)
    fit = dynamics.fit_exponential(trace)
    return dynamics, trace, fit


def test_fig3a_switch_time_response(benchmark):
    dynamics, trace, fit = benchmark(_measure_and_fit)
    settle_fit = fit.settling_time(0.05)
    settle_model = dynamics.reconfiguration_latency(0.05)
    emit(
        "Figure 3a — MZI switch time response",
        render_table(
            ["quantity", "measured (model)", "paper"],
            [
                ["fit form", "1 - A exp(-t/tau)", "A exp(-t/tau) overlay"],
                ["fitted tau", f"{fit.tau_s * 1e6:.2f} us", "~1.2 us"],
                ["fit residual (rms)", f"{fit.residual_rms:.3f}", "n/a"],
                [
                    "settling time (5 %)",
                    f"{settle_fit * 1e6:.2f} us",
                    "3.7 us",
                ],
                [
                    "model analytic settle",
                    f"{settle_model * 1e6:.2f} us",
                    "3.7 us",
                ],
            ],
        ),
    )
    assert settle_fit <= RECONFIG_LATENCY_S * 1.15
    assert abs(settle_model - RECONFIG_LATENCY_S) / RECONFIG_LATENCY_S < 0.02
    assert trace.amplitude.size == 4000
