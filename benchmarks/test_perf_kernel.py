"""Kernel backend performance: reference vs vectorized, byte-identical.

A small slice of the BENCH_kernel grid (electrical + photonic repair for
a few failed-chip placements) evaluated under both kernel backends with
caching disabled. The benches time each backend's cold evaluation; the
asserts enforce the contract that makes the vectorized backend safe to
default to — both backends produce byte-identical sweep output.
``benchmarks/bench_kernel.py`` records the full-grid comparison to
``BENCH_kernel.json``.
"""

import json

from _helpers import emit
from repro.api import FailurePlan, ScenarioSpec, figure6_slices, run_many
from repro.kernels import use_kernel

PLACEMENTS = 4  # failed-chip positions; x2 fabrics = 8 specs


def _grid(placements: int = PLACEMENTS) -> list[ScenarioSpec]:
    chips = [(x, y, 0) for x in range(4) for y in range(4)][:placements]
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(chip,)),
        )
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def _canonical(sweep) -> str:
    return json.dumps(sweep.to_dict(include_timing=False), sort_keys=True)


def _run(kernel: str):
    with use_kernel(kernel):
        return run_many(_grid(), no_cache=True)


def test_kernel_reference(benchmark):
    sweep = benchmark.pedantic(lambda: _run("reference"), rounds=1, iterations=1)
    assert sweep.cache_stats.misses == len(sweep.runs)
    emit(
        "Kernels — reference backend",
        f"{len(sweep.runs)} repair specs in {sweep.wall_clock_s:.2f} s "
        f"({sweep.wall_clock_s / len(sweep.runs) * 1e3:.1f} ms/spec)",
    )


def test_kernel_vectorized(benchmark):
    sweep = benchmark.pedantic(lambda: _run("vectorized"), rounds=1, iterations=1)
    assert sweep.cache_stats.misses == len(sweep.runs)
    emit(
        "Kernels — vectorized backend",
        f"{len(sweep.runs)} repair specs in {sweep.wall_clock_s:.2f} s "
        f"({sweep.wall_clock_s / len(sweep.runs) * 1e3:.1f} ms/spec)",
    )


def test_kernels_byte_identical():
    reference = _run("reference")
    vectorized = _run("vectorized")
    assert _canonical(reference) == _canonical(vectorized)
    emit(
        "Kernels — byte-identical contract",
        f"{len(reference.runs)} specs agree across backends",
    )
