"""Ablation: cluster availability over time under both recovery policies.

Integrates Section 4.2's blast-radius argument into the number operators
budget for: time-averaged available capacity over a 90-day failure trace
on the 4096-chip cluster. Rack migration parks 64 chips for every
checkpoint restore; optical repair stalls one server for 3.7 us. The
availability gap is entirely the recovery policy's doing — both policies
lose the same permanently-failed chips.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.failures.availability import replay_trace
from repro.failures.inject import FleetFailureModel
from repro.topology.tpu import TpuCluster

DAYS = 90
HORIZON_S = DAYS * 24 * 3600.0


def _replay():
    cluster = TpuCluster()
    events = FleetFailureModel(cluster, seed=2024).sample_failures(HORIZON_S)
    rack_report, optical_report = replay_trace(
        events, cluster.chip_count, HORIZON_S
    )
    return events, rack_report, optical_report


def test_ablation_availability(benchmark):
    events, rack_report, optical_report = benchmark.pedantic(
        _replay, rounds=1, iterations=1
    )
    emit(
        f"Ablation — {DAYS}-day availability of the 4096-chip cluster "
        f"({len(events)} failures)",
        render_table(
            ["metric", rack_report.policy, optical_report.policy],
            [
                [
                    "mean availability",
                    f"{rack_report.mean_availability:.4%}",
                    f"{optical_report.mean_availability:.4%}",
                ],
                [
                    "lost chip-days",
                    f"{rack_report.lost_chip_seconds / 86400:.1f}",
                    f"{optical_report.lost_chip_seconds / 86400:.1f}",
                ],
                [
                    "lowest instantaneous capacity",
                    str(int(min(p.available_chips for p in rack_report.timeline))),
                    str(int(min(p.available_chips for p in optical_report.timeline))),
                ],
            ],
        ),
    )
    assert optical_report.mean_availability > rack_report.mean_availability
    assert optical_report.lost_chip_seconds < rack_report.lost_chip_seconds
    # Both policies lose the same dead chips permanently; the difference
    # is the recovery-attributable outage, which rack migration inflates
    # by 64 chips x ~10 minutes per failure.
    recovery_gap = (
        rack_report.lost_chip_seconds - optical_report.lost_chip_seconds
    )
    expected_gap_per_failure = 64 * 600.02 - (4 * 3.7e-6 + 600.02)
    assert recovery_gap == pytest.approx(
        len(events) * expected_gap_per_failure, rel=0.05
    )
    # Mean availability is dominated by permanently dead chips (the same
    # for both policies); optical repair removes the recovery outage on
    # top of that floor.
    assert rack_report.mean_availability > 0.95
    assert optical_report.mean_availability > rack_report.mean_availability
