"""Ablation: job size vs bandwidth utilization and fabric setup time.

Extends the Figure 5 story across the cluster: whole-rack and multi-rack
jobs (OCS-spliced tori) reach 100 % electrical utilization but pay
milliseconds of OCS reprogramming; sub-rack jobs set up for free yet
strand 1/3–2/3 of their bandwidth — the gap only LIGHTPATH's microsecond
steering closes. One table sweeps the job-size axis end to end.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.phy.constants import RECONFIG_LATENCY_S
from repro.topology.jobs import provision_job
from repro.topology.tpu import TpuCluster

JOB_SIZES = [8, 16, 32, 64, 128, 256]


def _sweep():
    results = []
    for chips in JOB_SIZES:
        cluster = TpuCluster(rack_count=4)
        job = provision_job(cluster, f"job{chips}", chips=chips)
        results.append(job)
    return results


def test_ablation_job_provisioning(benchmark):
    jobs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation — job size vs utilization and setup (TPUv4 cluster)",
        render_table(
            ["chips", "racks", "torus", "elec utilization",
             "fabric setup", "steering alternative"],
            [
                [
                    str(job.slc.chip_count),
                    str(len(job.racks)),
                    "x".join(map(str, job.torus.shape)),
                    f"{job.electrical_utilization:.0%}",
                    (
                        f"{job.setup_latency_s * 1e3:.0f} ms (OCS)"
                        if job.spans_racks
                        else "0 (static)"
                    ),
                    (
                        "n/a (already 100 %)"
                        if job.electrical_utilization == 1.0
                        else f"{RECONFIG_LATENCY_S * 1e6:.1f} us -> 100 %"
                    ),
                ]
                for job in jobs
            ],
        ),
    )
    by_chips = {job.slc.chip_count: job for job in jobs}
    # The Section 4.1 claim: full 3D utilization requires whole racks.
    assert by_chips[8].electrical_utilization == pytest.approx(1 / 3)
    assert by_chips[16].electrical_utilization == pytest.approx(2 / 3)
    assert by_chips[64].electrical_utilization == 1.0
    assert by_chips[128].electrical_utilization == 1.0
    # Multi-rack setup is OCS-milliseconds, >1000x LIGHTPATH's r.
    assert by_chips[128].setup_latency_s > 1000 * RECONFIG_LATENCY_S
    assert by_chips[32].setup_latency_s == 0.0
