"""Disk-cache put-path performance: amortized eviction at the cap.

A capped :class:`~repro.api.cache.DiskResultCache` used to rescan the
whole store on *every* put once any cap was set, so put latency grew
linearly with occupancy. The amortized scheme keeps approximate
entry/byte counters and only rescans when a counter trips the cap, then
evicts down to a low watermark (``cap - cap//8``) so the next ~cap/8
puts are scan-free. These benches write far past the cap and assert the
mechanism (scan count stays ~puts/(cap/8), occupancy stays bounded)
while pytest-benchmark reports the resulting flat per-put cost.
"""

from _helpers import emit
from repro.api import (
    DiskResultCache,
    FabricSession,
    ScenarioSpec,
    SliceSpec,
)

CAP = 64
PUTS = 512  # 8x the cap: the old scheme would pay ~448 full rescans


def _result():
    spec = ScenarioSpec(
        fabric="electrical",
        slices=(SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),),
        outputs=("costs",),
    )
    return FabricSession().run(spec)


def _keys(n, tag):
    return [f"{i:016x}" + tag * 48 for i in range(n)]


def test_capped_put_latency_flat(benchmark, tmp_path):
    """Put cost at the cap is amortized: ~1 scan per cap/8 puts."""
    result = _result()
    cache = DiskResultCache(tmp_path, max_entries=CAP)
    keys = _keys(PUTS, "a")

    def fill():
        for key in keys:
            cache.put(key, result)

    benchmark.pedantic(fill, rounds=1, iterations=1)
    stats = cache.cache_stats()
    # One seed scan + one per watermark refill cycle — not one per put.
    assert 1 <= stats["prune_scans"] <= PUTS // (CAP // 8) + 4
    # Occupancy oscillates between the watermark and the cap.
    assert CAP - CAP // 8 <= stats["entries"] <= CAP
    per_put_ms = benchmark.stats["mean"] / PUTS * 1e3
    emit(
        "Disk cache — capped put path",
        f"{PUTS} puts into a max_entries={CAP} cache: "
        f"{per_put_ms:.3f} ms/put, {stats['prune_scans']} scans "
        f"({PUTS / stats['prune_scans']:.0f} puts/scan), "
        f"{stats['evictions']} evictions, "
        f"{stats['entries']} entries resident",
    )


def test_capped_put_overhead_vs_uncapped(benchmark, tmp_path):
    """The cap's steady-state overhead over an unbounded cache is small."""
    result = _result()
    uncapped = DiskResultCache(tmp_path / "uncapped")
    capped = DiskResultCache(tmp_path / "capped", max_entries=CAP)
    for key in _keys(2 * CAP, "b"):  # past the cap: steady state
        capped.put(key, result)
    keys = _keys(PUTS, "c")

    def put_both():
        for key in keys:
            uncapped.put(key, result)
        for key in keys:
            capped.put(key, result)

    benchmark.pedantic(put_both, rounds=1, iterations=1)
    assert capped.cache_stats()["entries"] <= CAP
    assert uncapped.prune_scans == 0
    emit(
        "Disk cache — cap overhead",
        f"{PUTS} puts each: uncapped pays no scans, capped paid "
        f"{capped.prune_scans} scans total while holding "
        f"occupancy <= {CAP} across {2 * CAP + PUTS} writes",
    )
