"""Table 2: staged REDUCESCATTER alpha-beta costs of Slice-3 (D = 2).

Slice-3 (4x4x1) runs the bucket algorithm in two stages: X rings over the
full buffer N, then Y rings over N/4. Electrically each stage's links
carry the static B/3 share; LIGHTPATH steers the stranded Z bandwidth into
X and Y (B/2 per dimension), making every electrical stage 1.5x more
expensive in beta. Each optical stage charges one reconfiguration r.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import cost_row, render_table
from repro.collectives.primitives import (
    Interconnect,
    reduce_scatter_stage_costs,
)
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus


def _table2():
    allocator = SliceAllocator(Torus((4, 4, 4)))
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    electrical = reduce_scatter_stage_costs(slice3, Interconnect.ELECTRICAL)
    optical = reduce_scatter_stage_costs(slice3, Interconnect.OPTICAL)
    return electrical, optical


def test_table2_staged_costs(benchmark):
    electrical, optical = benchmark(_table2)
    rows = [
        cost_row("stage 1: X rings (buffer N)", electrical[0], optical[0]),
        cost_row("stage 2: Y rings (buffer N/4)", electrical[1], optical[1]),
    ]
    emit(
        "Table 2 — REDUCESCATTER costs of Slice-3 (D=2, 4 rings of 4)",
        render_table(
            ["stage", "elec a", "optics a", "elec b", "optics b", "b ratio"],
            rows,
        ),
    )
    # Paper rows: each stage 3 x a (electrical), 3 x a + r (optics),
    # electrical beta 1.5x the optical in both stages.
    for stage_e, stage_o in zip(electrical, optical):
        assert stage_e.alpha_count == 3
        assert stage_o.alpha_count == 3
        assert stage_e.reconfig_count == 0
        assert stage_o.reconfig_count == 1
        assert stage_e.beta_factor / stage_o.beta_factor == pytest.approx(1.5)
    # Stage 2 operates on a quarter of the buffer.
    assert electrical[0].beta_factor / electrical[1].beta_factor == (
        pytest.approx(4.0)
    )
