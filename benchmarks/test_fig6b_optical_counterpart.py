"""The optical counterpart of Figure 6b: cross-rack repair over fibers.

Figure 6b shows that replacing a failed chip with a remote rack's free
chip is impossible electrically without congesting the remote tenant.
With cascaded LIGHTPATH fabrics the same replacement is a handful of
dedicated cross-rack circuits: this bench builds a two-rack cluster
fabric, fails a chip in rack 0 whose only spare lives in rack 1, and
establishes the repair circuits — counting fibers and verifying resource
exclusivity.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.cluster_fabric import LightpathClusterFabric


def _repair():
    cluster = LightpathClusterFabric(rack_count=2)
    failed = (0, (0, 0, 0))
    ring_neighbors = [
        (0, (1, 0, 0)),
        (0, (3, 0, 0)),
        (0, (0, 1, 0)),
        (0, (0, 3, 0)),
    ]
    spare = (1, (0, 0, 0))
    circuits = cluster.cross_rack_repair(failed, ring_neighbors, spare)
    return cluster, circuits


def test_fig6b_optical_counterpart(benchmark):
    cluster, circuits = benchmark.pedantic(_repair, rounds=1, iterations=1)
    emit(
        "Figure 6b (optical counterpart) — cross-rack repair circuits",
        render_table(
            ["circuit", "rack path", "inter-rack fibers"],
            [
                [
                    f"{c.src} -> {c.dst}",
                    " -> ".join(map(str, c.rack_path)),
                    str(len(c.inter_rack_fibers)),
                ]
                for c in circuits
            ],
        ),
    )
    used = 16 - cluster.trunk(0, 1).free
    emit(
        "Figure 6b (optical counterpart) — summary",
        render_table(
            ["quantity", "value", "electrical baseline (Fig 6b)"],
            [
                ["repair circuits", str(len(circuits)), "infeasible"],
                ["trunk fibers used", f"{used}/16", "n/a"],
                ["congestion", "none (dedicated fibers)", "unavoidable"],
                [
                    "setup latency",
                    f"{max(c.setup_latency_s for c in circuits) * 1e6:.1f} us",
                    "job migration (minutes)",
                ],
            ],
        ),
    )
    # Pred->spare and spare->succ per broken-ring neighbour, all cross-rack.
    assert len(circuits) == 8
    assert all(c.crosses_racks for c in circuits)
    assert used == 8
    assert max(c.setup_latency_s for c in circuits) == pytest.approx(3.7e-6)
