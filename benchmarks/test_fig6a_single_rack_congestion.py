"""Figure 6a: replacing a failed chip within a rack always congests.

The rack hosts Slice-3 (z=0, the failed tenant), Slice-4 (z=1..2) and
Slice-1 (z=3's first two rows); the remaining eight z=3 chips are free.
Replacing the failed chip's ring roles over static electrical links
requires paths from its X/Y ring neighbours to a free chip — and every
such path crosses links already carrying some tenant's rings (Slice-4's
Z-dimension wrap rings occupy every vertical column, exactly the "link
between servers in the Z dimension" collision the paper describes). The
bench enumerates all candidates exhaustively.
"""

from _helpers import emit
from repro.analysis.tables import render_table
from repro.failures.recovery import ElectricalRecoveryAnalysis
from repro.topology.slices import SliceAllocator
from repro.topology.torus import Torus

FAILED = (1, 2, 0)


def _scenario():
    rack = Torus((4, 4, 4))
    allocator = SliceAllocator(rack)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    return rack, allocator, slice3


def _analyze():
    rack, allocator, slice3 = _scenario()
    analysis = ElectricalRecoveryAnalysis(rack, allocator, max_hops=5)
    attempts = analysis.evaluate_all_free_chips(slice3, FAILED)
    return analysis, attempts


def test_fig6a_single_rack_replacement_congestion(benchmark):
    analysis, attempts = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    emit(
        "Figure 6a — electrical replacement attempts (failed chip "
        f"{FAILED} in Slice-3)",
        render_table(
            ["free chip", "feasible w/o congestion", "best-path congested links"],
            [
                [
                    str(a.free_chip),
                    "yes" if a.feasible else "no",
                    str(a.total_congested_links),
                ]
                for a in attempts
            ],
        ),
    )
    emit(
        "Figure 6a — conclusion",
        "no congestion-free electrical replacement exists (paper: "
        "'doing the same from TPU 9 without congestion is impossible')",
    )
    assert attempts, "scenario must offer free chips"
    assert all(not a.feasible for a in attempts)
    assert all(a.total_congested_links >= 1 for a in attempts)
