"""Ablation: topology engineering vs a static uniform mesh (Section 6).

The reconfigurable-network literature the paper builds on ("slow and
infrequent reconfiguration of the interconnect, called topology
engineering") adapts circuit topologies to traffic. This bench engineers
wavelength assignments for increasingly skewed traffic over the 32
accelerators of one wafer and compares direct-serve fraction against a
port-equivalent static mesh — the regime argument for making the on-board
interconnect reconfigurable at all.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.topology_engineering import (
    engineer_topology,
    evaluate_topology,
    skewed_traffic,
    uniform_mesh,
)

NODES = [f"acc{i}" for i in range(32)]
PORTS = 8
HEAVY_SWEEP = [4, 16, 32, 64]


def _sweep():
    rows = []
    for heavy in HEAVY_SWEEP:
        traffic = skewed_traffic(
            NODES, heavy_pairs=heavy, heavy_bytes=56e9, light_bytes=1e9
        )
        engineered = evaluate_topology(
            engineer_topology(traffic, PORTS), traffic
        )
        static = evaluate_topology(uniform_mesh(NODES, PORTS), traffic)
        rows.append((heavy, engineered, static))
    return rows


def test_ablation_topology_engineering(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        f"Ablation — engineered circuits vs static mesh "
        f"(32 accelerators, {PORTS} ports each)",
        render_table(
            ["elephant pairs", "engineered direct", "mesh direct", "gain"],
            [
                [
                    str(heavy),
                    f"{engineered.direct_fraction:.1%}",
                    f"{static.direct_fraction:.1%}",
                    f"{engineered.direct_fraction / max(static.direct_fraction, 1e-9):.1f}x",
                ]
                for heavy, engineered, static in rows
            ],
        ),
    )
    for _heavy, engineered, static in rows:
        assert engineered.direct_fraction >= static.direct_fraction
    # At heavy skew the engineered topology wins by several-fold.
    heaviest = rows[-1]
    assert heaviest[1].direct_fraction > 3 * heaviest[2].direct_fraction
    # Engineered topologies always respect the port budget.
    traffic = skewed_traffic(NODES, heavy_pairs=64, heavy_bytes=56e9)
    topology = engineer_topology(traffic, PORTS)
    assert all(topology.egress_used(n) <= PORTS for n in NODES)
    assert all(topology.ingress_used(n) <= PORTS for n in NODES)
