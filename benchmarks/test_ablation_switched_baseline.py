"""Ablation: the big-switch abstraction under incast (paper Section 1).

The paper's first comparison point: switched electrical servers (NVSwitch
class) promise contention-free any-to-any bandwidth, but "inter-accelerator
bandwidth within modern servers is already massive... making it harder to
stay true to the ideal switch abstraction. This has resulted in evidence
of contention in switched server-scale interconnects [4, 42]." This bench
drives the switched-server model with growing incast fan-in and shows the
host-side throughput loss — versus LIGHTPATH circuits, whose dedicated
end-to-end wavelengths cannot contend by construction.
"""

import pytest

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.circuits import CircuitManager
from repro.core.wafer import LightpathWafer
from repro.phy.constants import CHIP_EGRESS_BYTES, WAVELENGTH_RATE_BYTES
from repro.topology.switched import SwitchedServer

FAN_INS = [1, 2, 4, 6, 8]


def _sweep():
    rows = []
    for fanin in FAN_INS:
        server = SwitchedServer(
            accelerators=16,
            port_bandwidth_bytes=CHIP_EGRESS_BYTES,
            host_contention_per_flow=0.1,
        )
        for src in range(1, fanin + 1):
            server.add_flow(src, 0, CHIP_EGRESS_BYTES)
        rows.append(
            (
                fanin,
                server.aggregate_throughput_bytes(),
                server.ideal_throughput_bytes(),
                server.contention_loss_fraction(),
            )
        )
    return rows


def test_ablation_switched_server_contention(benchmark):
    rows = benchmark(_sweep)
    emit(
        "Ablation — switched server under incast (receiver port shared "
        "by N senders, host contention 10 %/extra flow)",
        render_table(
            ["fan-in", "achieved", "ideal switch", "lost to host contention"],
            [
                [
                    str(fanin),
                    f"{achieved / 1e9:.0f} GB/s",
                    f"{ideal / 1e9:.0f} GB/s",
                    f"{loss:.0%}",
                ]
                for fanin, achieved, ideal, loss in rows
            ],
        ),
    )
    losses = [loss for _f, _a, _i, loss in rows]
    # No contention at fan-in 1; loss grows with fan-in (the [4] evidence).
    assert losses[0] == 0.0
    assert losses == sorted(losses)
    assert losses[-1] > 0.5

    # LIGHTPATH's counterpart: the same incast as dedicated circuits —
    # every wavelength lands on its own SerDes lane, no shared port.
    wafer = LightpathWafer()
    manager = CircuitManager(wafer=wafer)
    receiver = (0, 0)
    senders = [(0, c) for c in range(1, 5)] + [(1, c) for c in range(4)]
    circuits = [manager.establish(src, receiver) for src in senders]
    delivered = sum(c.rate_bytes for c in circuits)
    emit(
        "Ablation — the same 8-way incast on LIGHTPATH circuits",
        render_table(
            ["quantity", "value"],
            [
                ["circuits established", str(len(circuits))],
                ["aggregate delivered", f"{delivered / 1e9:.0f} GB/s"],
                ["contention", "none (dedicated wavelength + lane each)"],
            ],
        ),
    )
    assert delivered == pytest.approx(8 * WAVELENGTH_RATE_BYTES)
    assert all(c.link_report.feasible for c in circuits)
