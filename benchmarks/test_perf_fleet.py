"""Fleet-simulator performance smoke: events/sec must not regress.

A simulated year at 4096 chips is the ISSUE's headline workload. The
electrical run processes ~1.6k events (two per failure), the photonic
one ~2.4k (repair + replenish) — both should clear comfortably north of
the floor on any machine; the bound exists to catch an accidental
O(n^2) regression in the hot path (e.g. occupancy accounting per
event), not to measure the hardware. ``scripts/bench_fleet.py`` records
honest numbers to ``BENCH_fleet.json``.
"""

from _helpers import emit
from repro.fleet import FleetConfig, simulate_fleet

#: Deliberately loose: an interpreter-speed floor, not a target.
MIN_EVENTS_PER_SEC = 200.0

YEAR_CONFIG = FleetConfig(seed=7)


def _run_both():
    electrical = simulate_fleet(YEAR_CONFIG, "electrical")
    photonic = simulate_fleet(YEAR_CONFIG, "photonic")
    return electrical, photonic


def test_fleet_year_events_per_sec(benchmark):
    import time

    start = time.perf_counter()
    electrical, photonic = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    events = electrical.events_processed + photonic.events_processed
    rate = events / max(elapsed, 1e-9)
    assert electrical.failures > 0 and photonic.failures > 0
    assert (
        photonic.mean_availability > electrical.mean_availability
    ), "photonic must dominate electrical"
    assert rate >= MIN_EVENTS_PER_SEC, (
        f"fleet simulator regressed to {rate:.0f} events/sec "
        f"(floor {MIN_EVENTS_PER_SEC:.0f})"
    )
    emit(
        "Fleet simulator — one simulated year, 4096 chips, both fabrics",
        f"{events} events in {elapsed:.3f} s ({rate:,.0f} events/sec); "
        f"availability gap "
        f"{photonic.mean_availability - electrical.mean_availability:.3e}",
    )


def test_fleet_determinism_back_to_back():
    first = simulate_fleet(YEAR_CONFIG, "electrical")
    second = simulate_fleet(YEAR_CONFIG, "electrical")
    assert first == second
