"""Output helper shared by the benchmark harness."""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a labelled block (visible with ``-s`` / in captured output)."""
    print(f"\n=== {title} ===")
    print(body)
