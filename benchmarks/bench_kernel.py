#!/usr/bin/env python3
"""Measure reference vs vectorized kernels, record to BENCH_kernel.json.

Evaluates the BENCH_sweep repair grid (failed-chip placements in Slice-3
of the Figure 6 rack, both fabrics) twice — once per kernel backend —
with the result cache disabled, so every spec pays its full cold
evaluation. Records wall-clock and per-spec latency percentiles for each
backend, the speedup, and the vectorized backend's per-op kernel-time
accounting, and verifies the backends' byte-identical contract on the
way. The target is a >=5x cold-eval speedup on this grid.

Run:  PYTHONPATH=src python benchmarks/bench_kernel.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

from repro.api import FailurePlan, ScenarioSpec, figure6_slices, run_many
from repro.kernels import KERNELS, STATS, use_kernel

TARGET_SPEEDUP = 5.0


def build_grid(placements: int) -> list[ScenarioSpec]:
    """Failed-chip placements in Slice-3 x both fabrics, repair output."""
    chips = [(x, y, 0) for x in range(4) for y in range(4)][:placements]
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(chip,)),
        )
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def canonical(sweep) -> str:
    return json.dumps(sweep.to_dict(include_timing=False), sort_keys=True)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def spec_latency(sweep) -> dict:
    """Per-spec cold evaluation latency percentiles, in milliseconds."""
    evaluated = sorted(
        row.elapsed_s for row in sweep.runs if not row.from_cache
    )
    return {
        "specs": len(evaluated),
        "p50_ms": round(percentile(evaluated, 0.50) * 1e3, 3),
        "p90_ms": round(percentile(evaluated, 0.90) * 1e3, 3),
        "p99_ms": round(percentile(evaluated, 0.99) * 1e3, 3),
        "max_ms": round(evaluated[-1] * 1e3, 3),
        "mean_ms": round(sum(evaluated) / len(evaluated) * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--placements", type=int, default=16)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
        ),
    )
    args = parser.parse_args(argv)

    specs = build_grid(args.placements)
    warmup = specs[:1] + specs[len(specs) // 2:len(specs) // 2 + 1]
    print(f"grid: {len(specs)} repair specs per kernel", flush=True)

    sweeps: dict[str, object] = {}
    backends: dict[str, dict] = {}
    kernel_stats: dict[str, dict] = {}
    for kernel in KERNELS:
        with use_kernel(kernel):
            # Warm the per-process memoization (torus index spaces, ring
            # geometries) both backends rely on, so neither pays one-off
            # construction inside the timed region.
            run_many(warmup, no_cache=True)
            before = STATS.snapshot()
            sweep = run_many(specs, no_cache=True)
        sweeps[kernel] = sweep
        backends[kernel] = {
            "serial_s": round(sweep.wall_clock_s, 4),
            "spec_latency": spec_latency(sweep),
        }
        kernel_stats[kernel] = {
            key: {
                "calls": stats["calls"]
                - before.get(key, {}).get("calls", 0),
                "seconds": round(
                    stats["seconds"] - before.get(key, {}).get("seconds", 0.0),
                    4,
                ),
            }
            for key, stats in STATS.snapshot().items()
            if key.startswith(f"{kernel}.")
            and stats["calls"] > before.get(key, {}).get("calls", 0)
        }
        print(
            f"{kernel:>10}: {sweep.wall_clock_s:.2f} s "
            f"({sweep.wall_clock_s / len(specs) * 1e3:.1f} ms/spec)",
            flush=True,
        )

    byte_identical = (
        canonical(sweeps["reference"]) == canonical(sweeps["vectorized"])
    )
    if not byte_identical:
        print("ERROR: kernels disagree on sweep output", file=sys.stderr)
        return 1

    speedup = (
        sweeps["reference"].wall_clock_s / sweeps["vectorized"].wall_clock_s
    )
    print(
        f"speedup: {speedup:.1f}x "
        f"(target {TARGET_SPEEDUP:.0f}x"
        f"{', MET' if speedup >= TARGET_SPEEDUP else ', MISSED'})",
        flush=True,
    )

    payload = {
        "grid": {
            "specs": len(specs),
            "placements": args.placements,
            "fabrics": ["electrical", "photonic"],
            "outputs": ["repair"],
        },
        "backends": backends,
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": speedup >= TARGET_SPEEDUP,
        "byte_identical": byte_identical,
        "kernel_stats": kernel_stats,
        "environment": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
