#!/usr/bin/env python3
"""Load-test the serving tier to saturation and record BENCH_serve.json.

Closed-loop load generation against the *sharded* tier (a
:class:`~repro.serve.shard.ShardRouter` over real ``python -m repro
serve`` worker subprocesses): at each ramp step, ``clients`` threads
each own a :class:`ServeClient` and fire their next request the moment
the previous response lands; the ramp doubles the client count until
measured throughput peaks. A fraction of the clients tag their requests
``X-Repro-Priority: batch``, so every step records latency and
throughput per priority class — and a dedicated overload phase (tiny
router admission bound, cold evaluation work) shows ``batch`` being
shed with 429 while ``interactive`` is still admitted.

Honesty rules, matching ``bench_sweep.py``: the recorded environment
includes the CPU count; on a single-CPU host the multi-worker speedup is
recorded as ``null`` with a note (N workers time-share one core — the
tier is for isolation and cache sharding there, not parallelism); the
saturation point is the *measured* peak of the ramp, not a configured
number. The single-flight phase fans identical cold specs out across
concurrent clients and counts the ``X-Repro-Coalesced: follower``
responses — the router's proof that M requests cost one evaluation.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.api import FailurePlan, ScenarioSpec, figure6_slices
from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    ShardConfig,
    ShardThread,
)


def repair_spec(chip, fabric="photonic", seed=0) -> ScenarioSpec:
    return ScenarioSpec(
        fabric=fabric,
        slices=figure6_slices(),
        outputs=("repair",),
        failures=FailurePlan(failed_chips=(chip,)),
        seed=seed,
    )


def spec_mix(n: int) -> list[ScenarioSpec]:
    """``n`` distinct repair specs — real evaluation work per cache miss,
    so cold phases measure batching + evaluation and warm phases isolate
    serving overhead."""
    chips = [(x, y, 0) for x in range(4) for y in range(4)][: n // 2]
    return [
        repair_spec(chip, fabric)
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def fresh_spec(salt: int) -> ScenarioSpec:
    """A never-seen-before spec (distinct seed -> distinct spec key)."""
    return repair_spec((0, 0, 0), seed=10_000 + salt)


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def latency_stats(latencies: list[float]) -> dict:
    if not latencies:
        return {"requests": 0}
    return {
        "requests": len(latencies),
        "latency_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "latency_mean_ms": round(statistics.mean(latencies) * 1e3, 3),
    }


def run_step(
    port: int,
    specs: list[ScenarioSpec],
    clients: int,
    requests_per_client: int,
    batch_fraction: float = 0.25,
    spec_for=None,
) -> dict:
    """One closed-loop step; per-priority-class latency/shed accounting.

    ``spec_for(client_id, i)`` overrides the default warm spec rotation
    (the overload phase uses it to hand every request distinct cold
    work).
    """
    batch_clients = round(clients * batch_fraction)
    latencies: dict[str, list[float]] = {"interactive": [], "batch": []}
    shed: dict[str, int] = {"interactive": 0, "batch": 0}
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(client_id: int) -> None:
        client = ServeClient(port=port)
        priority = "batch" if client_id < batch_clients else "interactive"
        mine: list[float] = []
        mine_shed = 0
        barrier.wait(timeout=60)
        for i in range(requests_per_client):
            if spec_for is not None:
                spec = spec_for(client_id, i)
            else:
                spec = specs[(client_id + i * clients) % len(specs)]
            begin = time.perf_counter()
            try:
                status, _, _ = client.evaluate_response(
                    spec, priority=priority
                )
            except Exception as exc:  # pragma: no cover - reported below
                with lock:
                    errors.append(repr(exc))
                return
            if status == 200:
                mine.append(time.perf_counter() - begin)
            elif status == 429:
                mine_shed += 1
            else:
                with lock:
                    errors.append(f"HTTP {status}")
                return
        with lock:
            latencies[priority].extend(mine)
            shed[priority] += mine_shed

    threads = [
        threading.Thread(target=worker, args=(client_id,))
        for client_id in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if errors:
        raise RuntimeError(f"{len(errors)} request(s) failed: {errors[0]}")
    completed = latencies["interactive"] + latencies["batch"]
    step = {
        "clients": clients,
        "batch_clients": batch_clients,
        "wall_clock_s": round(elapsed, 4),
        "total": {
            "throughput_rps": round(len(completed) / elapsed, 1),
            **latency_stats(completed),
        },
        "interactive": latency_stats(latencies["interactive"]),
        "batch": latency_stats(latencies["batch"]),
        "shed_429": dict(shed),
    }
    return step


def cold_fill(port: int, specs: list[ScenarioSpec]) -> dict:
    """Evaluate every spec once (cold) so later steps measure serving."""
    client = ServeClient(port=port)
    begin = time.perf_counter()
    for spec in specs:
        client.evaluate_bytes(spec)
    elapsed = time.perf_counter() - begin
    return {
        "requests": len(specs),
        "wall_clock_s": round(elapsed, 4),
        "throughput_rps": round(len(specs) / elapsed, 1),
    }


def ramp_to_saturation(
    port: int,
    specs: list[ScenarioSpec],
    steps: list[int],
    requests_per_client: int,
    batch_fraction: float,
) -> tuple[list[dict], dict]:
    """Double the offered load until throughput peaks; return the curve
    and the measured saturation step."""
    curve: list[dict] = []
    best = 0.0
    for clients in steps:
        step = run_step(
            port, specs, clients, requests_per_client, batch_fraction
        )
        curve.append(step)
        throughput = step["total"]["throughput_rps"]
        print(
            f"  {clients:>3} clients: {throughput:>7.1f} req/s, "
            f"interactive p99 "
            f"{step['interactive'].get('latency_p99_ms', 0):.1f} ms",
            flush=True,
        )
        if throughput < 0.85 * best and clients >= 8:
            break  # well past the knee; stop offering more load
        best = max(best, throughput)
    saturation = max(curve, key=lambda s: s["total"]["throughput_rps"])
    return curve, {
        "clients": saturation["clients"],
        "throughput_rps": saturation["total"]["throughput_rps"],
        "note": "measured peak of the closed-loop ramp",
    }


def single_flight_phase(port: int, rounds: int, fanout: int) -> dict:
    """Fan identical cold specs out; count coalesced followers and check
    every waiter saw the same bytes."""
    followers = 0
    identical = True
    statuses: list[int] = []
    for round_index in range(rounds):
        spec = fresh_spec(round_index)
        results: list[tuple[int, str, bytes]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(fanout)

        def worker():
            client = ServeClient(port=port)
            barrier.wait(timeout=60)
            status, headers, body = client.evaluate_response(spec)
            with lock:
                results.append(
                    (status, headers.get("x-repro-coalesced", "?"), body)
                )

        threads = [threading.Thread(target=worker) for _ in range(fanout)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses.extend(status for status, _, _ in results)
        followers += sum(1 for _, role, _ in results if role == "follower")
        identical &= len({body for _, _, body in results}) == 1
    requests = rounds * fanout
    return {
        "rounds": rounds,
        "fanout": fanout,
        "requests": requests,
        "ok": all(status == 200 for status in statuses),
        "coalesced_followers": followers,
        "coalesced_fraction": round(followers / requests, 3),
        "responses_byte_identical": identical,
        "note": (
            "each round fans one never-seen spec across concurrent "
            "clients; followers rode the leader's single evaluation"
        ),
    }


def worker_config(cache_dir: str | Path) -> ServerConfig:
    return ServerConfig(
        port=0, jobs=1, linger_ms=1.0, queue_limit=256, cache_dir=cache_dir
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests-per-client", type=int, default=12)
    parser.add_argument("--specs", type=int, default=16)
    parser.add_argument("--batch-fraction", type=float, default=0.25)
    parser.add_argument(
        "--max-clients", type=int, default=32,
        help="largest ramp step (doubling from 1)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serve.json"),
    )
    args = parser.parse_args(argv)

    specs = spec_mix(args.specs)
    steps = []
    clients = 1
    while clients <= args.max_clients:
        steps.append(clients)
        clients *= 2

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        tmp_path = Path(tmp)

        # Baseline 1: today's single-process service.
        print("single-process service:", flush=True)
        with ServerThread(worker_config(tmp_path / "single")) as handle:
            single_cold = cold_fill(handle.port, specs)
            single_curve, single_saturation = ramp_to_saturation(
                handle.port, specs, steps, args.requests_per_client,
                args.batch_fraction,
            )

        # Baseline 2: the router in front of one worker (proxy overhead).
        print("sharded tier, 1 worker:", flush=True)
        with ShardThread(
            ShardConfig(
                workers=1, port=0, worker=worker_config(tmp_path / "tier1")
            )
        ) as handle:
            tier1_cold = cold_fill(handle.port, specs)
            tier1_curve, tier1_saturation = ramp_to_saturation(
                handle.port, specs, steps, args.requests_per_client,
                args.batch_fraction,
            )

        # The tier under test: router + N workers.
        print(f"sharded tier, {args.workers} workers:", flush=True)
        with ShardThread(
            ShardConfig(
                workers=args.workers,
                port=0,
                worker=worker_config(tmp_path / "tierN"),
            )
        ) as handle:
            tier_cold = cold_fill(handle.port, specs)
            tier_curve, tier_saturation = ramp_to_saturation(
                handle.port, specs, steps, args.requests_per_client,
                args.batch_fraction,
            )
            single_flight = single_flight_phase(
                handle.port, rounds=3, fanout=12
            )
            print(
                f"  single-flight: {single_flight['coalesced_followers']}/"
                f"{single_flight['requests']} requests coalesced",
                flush=True,
            )
            router_metrics = ServeClient(port=handle.port).metrics()

        # Overload demonstration: a tiny admission bound + cold work ->
        # batch is shed with 429 while interactive is still admitted.
        print("overload (batch shed first):", flush=True)
        with ShardThread(
            ShardConfig(
                workers=1,
                port=0,
                worker=worker_config(tmp_path / "overload"),
                router_queue_limit=6,
            )
        ) as handle:
            salt = iter(range(20_000, 40_000))

            def cold_spec_for(client_id, i):
                return fresh_spec(next(salt))

            overload = run_step(
                handle.port,
                specs,
                clients=16,
                requests_per_client=4,
                batch_fraction=0.5,
                spec_for=cold_spec_for,
            )
            print(
                f"  shed: batch {overload['shed_429']['batch']}, "
                f"interactive {overload['shed_429']['interactive']}",
                flush=True,
            )

    cpus = os.cpu_count()
    if cpus == 1:
        speedup = None
        speedup_note = (
            "not meaningful on a single-CPU host: the workers time-share "
            "one core, so the sharded tier buys isolation, cache "
            "sharding, and failover here — not parallel throughput"
        )
    else:
        speedup = round(
            tier_saturation["throughput_rps"]
            / max(tier1_saturation["throughput_rps"], 1e-9),
            2,
        )
        speedup_note = (
            f"{args.workers}-worker tier vs 1-worker tier at each one's "
            "measured saturation"
        )

    snapshot = router_metrics.get("metrics", {})
    payload = {
        "workload": {
            "workers": args.workers,
            "ramp_clients": steps,
            "requests_per_client": args.requests_per_client,
            "unique_specs": len(specs),
            "outputs": ["repair"],
            "batch_fraction": args.batch_fraction,
        },
        "single_process": {
            "cold_fill": single_cold,
            "ramp": single_curve,
            "saturation": single_saturation,
        },
        "router_1_worker": {
            "cold_fill": tier1_cold,
            "ramp": tier1_curve,
            "saturation": tier1_saturation,
        },
        "router_n_workers": {
            "cold_fill": tier_cold,
            "ramp": tier_curve,
            "saturation": tier_saturation,
        },
        "router_overhead_at_saturation": round(
            single_saturation["throughput_rps"]
            / max(tier1_saturation["throughput_rps"], 1e-9),
            2,
        ),
        "multi_worker_speedup": speedup,
        "multi_worker_speedup_note": speedup_note,
        "single_flight": single_flight,
        "overload": overload,
        "router": {
            "requests_coalesced": snapshot.get(
                "serve.requests_coalesced", {}
            ).get("value", 0),
            "router_failovers": snapshot.get(
                "serve.router_failovers", {}
            ).get("value", 0),
            "worker_restarts": snapshot.get(
                "serve.worker_restarts", {}
            ).get("value", 0),
            "tier_cache": router_metrics.get("tier_cache", {}),
            "tier_disk_cache": {
                key: value
                for key, value in router_metrics.get(
                    "tier_disk_cache", {}
                ).items()
                if key != "per_worker"
            },
        },
        "environment": {
            "cpus": cpus,
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
