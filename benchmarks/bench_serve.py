#!/usr/bin/env python3
"""Load-test the evaluation service and record BENCH_serve.json.

Closed-loop load generation: ``--clients`` threads each own a
:class:`ServeClient` and fire their next request the moment the previous
response lands. Two phases hit the same spec mix — cold (empty result
cache, every request evaluates) and warm (every request is a disk/memory
hit) — so the numbers bracket the service's range: batching + evaluation
cost on one side, pure serving overhead on the other. Reports p50/p99
request latency and throughput per phase, plus the server-side batch-size
distribution, to ``BENCH_serve.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--clients 8]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import FailurePlan, ScenarioSpec, figure6_slices
from repro.serve import ServeClient, ServerConfig, ServerThread


def spec_mix(n: int) -> list[ScenarioSpec]:
    """``n`` distinct repair specs — real evaluation work per cache miss,
    so the cold phase measures batching + evaluation and the warm phase
    isolates serving overhead."""
    chips = [(x, y, 0) for x in range(4) for y in range(4)][: n // 2]
    return [
        ScenarioSpec(
            fabric=fabric,
            slices=figure6_slices(),
            outputs=("repair",),
            failures=FailurePlan(failed_chips=(chip,)),
        )
        for fabric in ("electrical", "photonic")
        for chip in chips
    ]


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_phase(
    port: int, specs: list[ScenarioSpec], clients: int, requests_per_client: int
) -> dict:
    """One closed-loop phase; returns latency/throughput stats."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        client = ServeClient(port=port)
        mine: list[float] = []
        for i in range(requests_per_client):
            spec = specs[(worker_id + i * clients) % len(specs)]
            begin = time.perf_counter()
            try:
                client.evaluate_bytes(spec)
            except Exception as exc:  # pragma: no cover - reported below
                with lock:
                    errors.append(repr(exc))
                return
            mine.append(time.perf_counter() - begin)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(clients)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if errors:
        raise RuntimeError(f"{len(errors)} request(s) failed: {errors[0]}")
    return {
        "requests": len(latencies),
        "wall_clock_s": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "latency_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "latency_mean_ms": round(statistics.mean(latencies) * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests-per-client", type=int, default=4)
    parser.add_argument("--specs", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serve.json"),
    )
    args = parser.parse_args(argv)

    specs = spec_mix(args.specs)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as cache_dir:
        config = ServerConfig(
            port=0, jobs=args.jobs, cache_dir=cache_dir, queue_limit=256
        )
        with ServerThread(config) as handle:
            client = ServeClient(port=handle.port)
            client.wait_until_ready()
            print(
                f"server up on :{handle.port} "
                f"(jobs={args.jobs}, clients={args.clients})",
                flush=True,
            )
            cold = run_phase(
                handle.port, specs, args.clients, args.requests_per_client
            )
            print(
                f"cold: {cold['throughput_rps']} req/s, "
                f"p50 {cold['latency_p50_ms']} ms, "
                f"p99 {cold['latency_p99_ms']} ms",
                flush=True,
            )
            warm = run_phase(
                handle.port, specs, args.clients, args.requests_per_client
            )
            print(
                f"warm: {warm['throughput_rps']} req/s, "
                f"p50 {warm['latency_p50_ms']} ms, "
                f"p99 {warm['latency_p99_ms']} ms",
                flush=True,
            )
            metrics = client.metrics()
            snapshot = metrics["metrics"]
            batch = snapshot.get("serve.batch_size", {})
            server_side = {
                "batches": snapshot.get("serve.batches", {}).get("value", 0),
                "batch_size_mean": round(batch.get("mean", 0.0), 3),
                "batch_size_max": batch.get("max", 0),
                "requests_admitted": snapshot.get(
                    "serve.requests_admitted", {}
                ).get("value", 0),
                "requests_rejected": snapshot.get(
                    "serve.requests_rejected_full", {}
                ).get("value", 0),
                "cache_hit_ratio": round(
                    snapshot.get("serve.cache_hit_ratio", {}).get("value", 0.0),
                    4,
                ),
            }

    if warm["latency_p50_ms"] > cold["latency_p50_ms"]:
        print(
            "WARNING: warm p50 exceeded cold p50 (noisy host?)",
            file=sys.stderr,
        )

    payload = {
        "workload": {
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "unique_specs": len(specs),
            "outputs": ["repair"],
            "jobs": args.jobs,
        },
        "cold": cold,
        "warm": warm,
        "warm_speedup_p50": round(
            cold["latency_p50_ms"] / max(warm["latency_p50_ms"], 1e-9), 2
        ),
        "server": server_side,
        "environment": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
