"""Ablation: centralized vs decentralized circuit allocation (Section 5).

MoE-style dynamic traffic needs circuits programmed at request time. A
centralized controller with global waveguide state serializes requests —
setup latency grows linearly with the batch — while the decentralized
random-claim/backoff allocator stays flat at the cost of occasional retry
rounds. The bench sweeps the offered batch size and reports both.
"""

import numpy as np

from _helpers import emit
from repro.analysis.tables import render_table
from repro.core.decentralized import (
    CentralizedController,
    DecentralizedAllocator,
    mean_setup_latency,
    success_rate,
)
from repro.core.wafer import LightpathWafer
from repro.sim.traffic import MoeGatingWorkload

BATCH_SIZES = [4, 8, 16, 32]


def _requests(batch_size, seed):
    chips = [(r, c) for r in range(4) for c in range(8)]
    workload = MoeGatingWorkload(chips=chips, fanout=1, seed=seed)
    batch = workload.next_batch()
    return batch[:batch_size]


def _sweep():
    rows = []
    for batch_size in BATCH_SIZES:
        requests = _requests(batch_size, seed=batch_size)
        central = CentralizedController(LightpathWafer()).allocate_batch(requests)
        decentral = DecentralizedAllocator(
            LightpathWafer(), rng=np.random.default_rng(batch_size)
        ).allocate_batch(requests)
        rows.append(
            (
                batch_size,
                mean_setup_latency(central),
                success_rate(central),
                mean_setup_latency(decentral),
                success_rate(decentral),
            )
        )
    return rows


def test_ablation_decentralized_allocation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation — circuit setup latency, centralized controller vs "
        "decentralized random-claim (MoE gating traffic)",
        render_table(
            [
                "batch",
                "central latency",
                "central ok",
                "decentral latency",
                "decentral ok",
            ],
            [
                [
                    str(n),
                    f"{c_lat * 1e6:.1f} us",
                    f"{c_ok:.0%}",
                    f"{d_lat * 1e6:.1f} us",
                    f"{d_ok:.0%}",
                ]
                for n, c_lat, c_ok, d_lat, d_ok in rows
            ],
        ),
    )
    central_latencies = [r[1] for r in rows]
    decentral_latencies = [r[3] for r in rows]
    # Centralized latency grows with the batch; decentralized stays flat.
    assert central_latencies == sorted(central_latencies)
    assert central_latencies[-1] > 2 * central_latencies[0]
    assert max(decentral_latencies) < 4 * min(decentral_latencies)
    # At the largest batch, decentralized is faster on average.
    assert decentral_latencies[-1] < central_latencies[-1]
    # Both succeed on the uncontended wafer.
    assert all(r[2] == 1.0 and r[4] == 1.0 for r in rows)
