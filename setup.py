"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``. This shim
exists so environments without the ``wheel`` package (where pip's
PEP 517 editable path cannot build) can still do an editable install via
``python setup.py develop``.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
