#!/usr/bin/env python3
"""CI smoke test for ``repro serve``: golden bytes + graceful SIGTERM.

Starts the real server as a subprocess (the way an operator would),
then asserts the full serving contract end to end:

1. ``POST /v1/evaluate`` with the golden request spec returns exactly
   ``tests/golden/serve_evaluate.json`` — the same bytes the CLI prints.
2. ``GET /healthz`` and ``GET /metrics`` answer with sane payloads.
3. SIGTERM while a request is in flight drains it (the request gets its
   200 and full body) and the process exits 0 reporting a clean drain.

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on an ephemeral port; parse the bound port."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "2", "--cache-dir", cache_dir,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stderr is not None
    line = process.stderr.readline()
    match = re.search(r"http://[\w.]+:(\d+)", line)
    if not match:
        process.kill()
        fail(f"could not parse the listen line: {line!r}")
    return process, int(match.group(1))


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.serve import ServeClient

    request_payload = (GOLDEN / "serve_request.json").read_bytes()
    golden_response = (GOLDEN / "serve_evaluate.json").read_bytes()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        process, port = start_server(cache_dir)
        drained = {}
        try:
            client = ServeClient(port=port)
            client.wait_until_ready()

            # 1. Golden byte-identity.
            status, headers, body = client._request(
                "POST", "/v1/evaluate", request_payload
            )
            if status != 200:
                fail(f"evaluate answered {status}: {body[:200]!r}")
            if body != golden_response:
                fail(
                    "served bytes differ from tests/golden/serve_evaluate.json "
                    f"({len(body)} vs {len(golden_response)} bytes)"
                )
            print(f"evaluate: 200, {len(body)} bytes, golden-identical")

            # 2. Introspection endpoints.
            health = client.healthz()
            if health["status"] != "ok":
                fail(f"unexpected health: {health}")
            metrics = client.metrics()["metrics"]
            if metrics["serve.requests_admitted"]["value"] < 1:
                fail(f"metrics did not count the request: {metrics}")
            print(
                f"healthz: {health['status']}, metrics: "
                f"{metrics['serve.requests_admitted']['value']:g} admitted"
            )

            # 3. SIGTERM with a request in flight drains cleanly. The spec
            # is a fresh variant (different seed → cache miss), so the
            # signal really does land mid-evaluation.
            fresh = json.loads(request_payload)
            fresh["seed"] = fresh.get("seed", 42) + 1
            fresh_payload = json.dumps(fresh).encode()

            def inflight() -> None:
                status, _, body = client._request(
                    "POST", "/v1/evaluate", fresh_payload
                )
                drained["status"] = status
                drained["bytes"] = len(body)
                drained["answered"] = body.startswith(b"{") and body.endswith(
                    b"}\n"
                )

            worker = threading.Thread(target=inflight)
            worker.start()
            time.sleep(0.05)  # let the request reach the server
            process.send_signal(signal.SIGTERM)
            worker.join(timeout=60)
            stderr = process.stderr.read()
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()

    if drained.get("status") != 200 or not drained.get("answered"):
        fail(f"in-flight request not drained cleanly: {drained}")
    if returncode != 0:
        fail(f"server exited {returncode}; stderr tail: {stderr[-500:]}")
    if "drained cleanly" not in stderr:
        fail(f"no clean-drain message; stderr tail: {stderr[-500:]}")
    print(
        f"sigterm: in-flight request answered 200 "
        f"({drained['bytes']} bytes, complete body), exit 0"
    )
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
