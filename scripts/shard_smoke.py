#!/usr/bin/env python3
"""CI smoke test for ``repro serve --workers N``: the sharded tier.

Starts the real router as a subprocess (the way an operator would, via
``python -m repro serve --workers 2``) and asserts the tier's end-to-end
contract:

1. ``POST /v1/evaluate`` through the router returns exactly
   ``tests/golden/serve_evaluate.json`` — the same bytes the
   single-process service and the CLI produce — with routing provenance
   headers (``X-Repro-Worker``, ``X-Repro-Coalesced``).
2. ``GET /healthz`` shows two live workers; ``GET /metrics`` aggregates
   them.
3. SIGKILL one worker: the next request for the same spec reroutes along
   the hash ring and answers byte-identically; the supervisor respawns
   the dead slot.
4. A request sent with an explicit ``X-Repro-Trace-Id`` gets the id
   echoed back, and ``GET /metrics?format=prometheus`` on the router
   *and* on a worker passes the text-exposition parse check.
5. SIGTERM drains the router and its workers cleanly (exit 0, clean
   drain message), every process writes its runtime trace file, and the
   merged timeline (``repro obs merge``) contains spans from at least
   two processes sharing the request's trace id. The merged trace is
   left at ``$SHARD_SMOKE_TRACE`` (default ``shard-trace.json``) as a
   CI artifact — open it at ui.perfetto.dev.

Run:  PYTHONPATH=src python scripts/shard_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_router(
    cache_dir: str, trace_dir: str
) -> tuple[subprocess.Popen, int]:
    """Launch the sharded tier on an ephemeral port; parse the bound port."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "--jobs", "1",
            "--cache-dir", cache_dir,
            "--trace-dir", trace_dir,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert process.stderr is not None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            break
        match = re.search(r"router listening on http://[\w.]+:(\d+)", line)
        if match:
            return process, int(match.group(1))
    process.kill()
    fail("router never printed its listen line")
    raise AssertionError  # unreachable


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.prometheus import parse_exposition
    from repro.obs.runtime import merge_traces, write_merged
    from repro.serve import ServeClient

    request_payload = (GOLDEN / "serve_request.json").read_bytes()
    golden_response = (GOLDEN / "serve_evaluate.json").read_bytes()
    trace_id = "shard-smoke-1"
    merged_out = Path(os.environ.get("SHARD_SMOKE_TRACE", "shard-trace.json"))

    with tempfile.TemporaryDirectory(
        prefix="repro-shard-smoke-"
    ) as cache_dir, tempfile.TemporaryDirectory(
        prefix="repro-shard-trace-"
    ) as trace_dir:
        process, port = start_router(cache_dir, trace_dir)
        try:
            client = ServeClient(port=port)
            client.wait_until_ready()

            # 1. Golden byte-identity through the sharded tier.
            status, headers, body = client._request(
                "POST", "/v1/evaluate", request_payload
            )
            if status != 200:
                fail(f"evaluate answered {status}: {body[:200]!r}")
            if body != golden_response:
                fail(
                    "routed bytes differ from tests/golden/serve_evaluate.json "
                    f"({len(body)} vs {len(golden_response)} bytes)"
                )
            owner = headers.get("x-repro-worker", "")
            if not re.fullmatch(r"w[01]", owner):
                fail(f"missing/odd X-Repro-Worker header: {owner!r}")
            if headers.get("x-repro-coalesced") != "leader":
                fail(f"missing X-Repro-Coalesced header: {headers}")
            print(
                f"evaluate: 200 via {owner}, {len(body)} bytes, "
                "golden-identical"
            )

            # 2. Tier introspection.
            health = client.healthz()
            if health["status"] != "ok" or len(health["workers"]) != 2:
                fail(f"unexpected router health: {health}")
            payload = client.metrics()
            if sorted(payload.get("workers", {})) != ["w0", "w1"]:
                fail(f"metrics missing worker payloads: {payload.keys()}")
            print(
                "healthz: ok (2 workers), metrics aggregate "
                f"{payload['tier_disk_cache']['entries']} cached entries"
            )

            # 3. Kill the owner worker: reroute, byte-identical, respawn.
            victim = next(
                worker for worker in health["workers"]
                if worker["name"] == owner
            )
            os.kill(victim["pid"], signal.SIGKILL)
            status, headers, rerouted = client._request(
                "POST", "/v1/evaluate", request_payload
            )
            if status != 200 or rerouted != golden_response:
                fail(
                    f"post-kill request not byte-identical: {status}, "
                    f"{len(rerouted)} bytes"
                )
            print(
                f"killed {owner} (pid {victim['pid']}): rerouted via "
                f"{headers.get('x-repro-worker')}, bytes identical"
            )
            deadline = time.monotonic() + 60
            while True:
                workers = client.healthz()["workers"]
                if all(worker["alive"] for worker in workers):
                    break
                if time.monotonic() > deadline:
                    fail(f"worker never respawned: {workers}")
                time.sleep(0.1)
            restarts = sum(worker["restarts"] for worker in workers)
            if restarts < 1:
                fail(f"no restart recorded: {workers}")
            print(f"supervisor respawned {owner} (restarts={restarts:g})")

            # 4. Trace-id echo + Prometheus exposition on router & worker.
            status, headers, body = client.evaluate_response(
                json.loads(request_payload), trace_id=trace_id
            )
            if status != 200 or headers.get("x-repro-trace-id") != trace_id:
                fail(
                    f"trace id not echoed: {status}, "
                    f"{headers.get('x-repro-trace-id')!r}"
                )
            families = parse_exposition(client.metrics_text())
            if not any(name.startswith("repro_serve_") for name in families):
                fail(f"router exposition missing serve metrics: {families}")
            worker_port = client.healthz()["workers"][0]["port"]
            worker_families = parse_exposition(
                ServeClient(port=worker_port).metrics_text()
            )
            if not worker_families:
                fail("worker exposition parsed to zero families")
            print(
                f"trace id echoed; prometheus parse ok (router "
                f"{len(families)} families, worker "
                f"{len(worker_families)} families)"
            )

            # 5. SIGTERM drains the tier cleanly.
            process.send_signal(signal.SIGTERM)
            stderr = process.stderr.read()
            returncode = process.wait(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()

        if returncode != 0:
            fail(f"router exited {returncode}; stderr tail: {stderr[-800:]}")
        if "drained cleanly" not in stderr:
            fail(f"no clean-drain message; stderr tail: {stderr[-800:]}")
        print("sigterm: router and workers drained, exit 0")

        # Every process left a runtime trace; the merged timeline must
        # show the traced request crossing the router/worker boundary.
        trace_files = sorted(Path(trace_dir).glob("*.trace.json"))
        if len(trace_files) < 3:
            fail(f"expected 3 trace files (router + 2 workers): {trace_files}")
        merged = merge_traces(trace_files)
        tagged = [
            event for event in merged["traceEvents"]
            if event.get("args", {}).get("trace_id") == trace_id
        ]
        tagged_pids = {event["pid"] for event in tagged}
        if len(tagged_pids) < 2:
            fail(
                f"trace id {trace_id!r} did not cross processes: "
                f"{len(tagged)} span(s) from pids {sorted(tagged_pids)}"
            )
        out, count = write_merged(trace_files, merged_out)
        print(
            f"runtime trace: {len(tagged)} spans for {trace_id!r} across "
            f"{len(tagged_pids)} processes; merged {count} events -> {out}"
        )

    print("shard smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
