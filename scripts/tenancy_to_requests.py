#!/usr/bin/env python3
"""Convert a tenancy arrival trace into a timed serve-tier request schedule.

Bridges the tenancy simulator's workload model to the serving tier: the
same seeded job stream that drives ``repro tenancy`` becomes a JSON
schedule of ``/v1/evaluate`` requests — one per job, fired at the job's
(time-scaled) arrival instant, carrying a spec whose tenant slice is the
job's shape and a priority class mapped from the job's
(``production`` -> ``interactive``, ``best-effort`` -> ``batch``, the
classes the router's admission control sheds by). A load generator
replays the schedule against ``python -m repro serve`` to see the
serving tier under the *same* churn the placement policies saw.

Each request's spec gets a distinct seed (the job index), so every
request is a cache miss unless ``--shared-seed`` collapses them into
the single-flight/coalescing regime.

Run:  PYTHONPATH=src python scripts/tenancy_to_requests.py --out schedule.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api import ScenarioSpec, SliceSpec
from repro.tenancy import generate_jobs

#: Tenancy priority class -> serve-tier priority header value.
PRIORITY_MAP = {"production": "interactive", "best-effort": "batch"}


def job_spec(job, shared_seed: int | None) -> ScenarioSpec:
    """The ``/v1/evaluate`` spec standing in for one tenant job."""
    return ScenarioSpec(
        fabric="photonic",
        slices=(
            SliceSpec(name=job.name, shape=job.shape, offset=(0,) * len(job.shape)),
        ),
        outputs=("costs",),
        seed=job.index if shared_seed is None else shared_seed,
    )


def build_schedule(
    days: float,
    arrivals_per_day: float,
    profile: str,
    seed: int,
    time_scale: float,
    shared_seed: int | None,
) -> dict:
    jobs = generate_jobs(
        horizon_s=days * 86400.0,
        arrivals_per_day=arrivals_per_day,
        profile=profile,
        seed=seed,
    )
    return {
        "workload": {
            "days": days,
            "arrivals_per_day": arrivals_per_day,
            "profile": profile,
            "seed": seed,
            "time_scale": time_scale,
            "jobs": len(jobs),
        },
        "requests": [
            {
                "at_s": job.arrival_s * time_scale,
                "name": job.name,
                "priority": PRIORITY_MAP[job.priority],
                "chips": job.chips,
                "spec": job_spec(job, shared_seed).to_dict(),
            }
            for job in jobs
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--arrivals-per-day", type=float, default=1500.0)
    parser.add_argument(
        "--profile", choices=("poisson", "burst", "trace"), default="poisson"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--time-scale", type=float, default=1e-3,
        help="multiply arrival times by this factor (default 1e-3: a "
        "day of arrivals replays in ~86 s)",
    )
    parser.add_argument(
        "--shared-seed", type=int, default=None, metavar="SEED",
        help="give every request the same spec seed (exercises the "
        "router's single-flight coalescing instead of cold evaluation)",
    )
    parser.add_argument(
        "--out", default="-", metavar="PATH",
        help="write the schedule JSON to PATH ('-' = stdout)",
    )
    args = parser.parse_args(argv)
    if args.time_scale <= 0:
        parser.error("--time-scale must be positive")

    schedule = build_schedule(
        days=args.days,
        arrivals_per_day=args.arrivals_per_day,
        profile=args.profile,
        seed=args.seed,
        time_scale=args.time_scale,
        shared_seed=args.shared_seed,
    )
    text = json.dumps(schedule, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text, encoding="utf-8")
        print(
            f"wrote {args.out}: {schedule['workload']['jobs']} requests "
            f"over {schedule['requests'][-1]['at_s']:.1f} s (scaled)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
