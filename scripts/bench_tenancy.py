#!/usr/bin/env python3
"""Measure tenancy-simulator throughput, record to BENCH_tenancy.json.

Runs the ISSUE's headline workload — a week of tenant churn (~10,500
job arrivals) over the 4-rack torus pod — on both fabrics under every
placement policy (steer is photonic-only), plus a burst-profile stress
configuration at double the arrival rate. Records events/sec per run,
the scheduling-quality figures, and asserts the photonic-dominates-
electrical contract along the way.

Run:  PYTHONPATH=src python scripts/bench_tenancy.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.tenancy import (
    PLACEMENT_POLICY_NAMES,
    TenancyConfig,
    TenancyStats,
    simulate_tenancy,
)


def timed(config: TenancyConfig, fabric: str, policy: str):
    start = time.perf_counter()
    stats = simulate_tenancy(config, fabric, policy=policy)
    return stats, time.perf_counter() - start


def row(stats: TenancyStats, elapsed: float) -> dict:
    return {
        "events": stats.events_processed,
        "events_per_sec": round(stats.events_processed / max(elapsed, 1e-9)),
        "wall_s": round(elapsed, 4),
        "arrivals": stats.arrivals,
        "rejected": stats.rejected,
        "queue_delay_mean_s": stats.queue_delay_mean_s,
        "mean_occupancy": stats.mean_occupancy,
        "stranded_fraction": stats.stranded_fraction,
        "defrag_moves": stats.defrag_moves,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_tenancy.json"
        ),
    )
    args = parser.parse_args(argv)

    week = TenancyConfig(seed=args.seed)
    stress = TenancyConfig(
        seed=args.seed,
        horizon_s=2 * 86400.0,
        arrivals_per_day=3000.0,
        profile="burst",
    )

    runs: dict[str, dict] = {}
    for label, config in (("week", week), ("stress_burst_2x", stress)):
        for policy in PLACEMENT_POLICY_NAMES:
            pair = {}
            for fabric in ("electrical", "photonic"):
                if policy == "steer" and fabric == "electrical":
                    continue  # steering needs reconfigurable reach
                stats, elapsed = timed(config, fabric, policy)
                pair[fabric] = row(stats, elapsed)
                print(
                    f"{label:>15} {policy:>9} {fabric:>10}: "
                    f"{stats.events_processed:>6} events in {elapsed:.3f} s "
                    f"({stats.events_processed / max(elapsed, 1e-9):,.0f} "
                    f"events/sec)",
                    flush=True,
                )
            # The dominance contract: photonic strands strictly less and
            # rejects no more. (Mean delay is NOT gated: under overload
            # photonic admits jobs electrical rejects, and those extra
            # queue-drained placements raise the mean among the placed —
            # a survivorship artifact, not worse scheduling.)
            if "electrical" in pair and (
                pair["photonic"]["stranded_fraction"]
                >= pair["electrical"]["stranded_fraction"]
                or pair["photonic"]["rejected"]
                > pair["electrical"]["rejected"]
            ):
                print(
                    f"ERROR: photonic does not dominate electrical "
                    f"({label}/{policy})",
                    file=sys.stderr,
                )
                return 1
            runs[f"{label}.{policy}"] = pair

    total_events = sum(
        fabric["events"] for pair in runs.values() for fabric in pair.values()
    )
    total_wall = sum(
        fabric["wall_s"] for pair in runs.values() for fabric in pair.values()
    )
    payload = {
        "workload": {
            "chips": week.total_chips,
            "horizon_days": round(week.horizon_s / 86400.0, 1),
            "arrivals_per_day": week.arrivals_per_day,
            "stress_profile": stress.profile,
            "stress_arrivals_per_day": stress.arrivals_per_day,
            "seed": args.seed,
        },
        "runs": runs,
        "aggregate_events_per_sec": round(total_events / max(total_wall, 1e-9)),
        "environment": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {args.output} "
          f"({payload['aggregate_events_per_sec']:,} events/sec aggregate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
