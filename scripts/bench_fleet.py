#!/usr/bin/env python3
"""Measure fleet-simulator throughput, record to BENCH_fleet.json.

Runs the ISSUE's headline workload — one simulated year of failures and
repairs at 4096 chips — on both fabrics under every dispatch policy,
plus a failure-dense stress configuration (10x the failure rate) that
pushes tens of thousands of events through the engine. Records
events/sec per run, the availability figures, and asserts the
photonic-dominates-electrical contract along the way.

Run:  PYTHONPATH=src python scripts/bench_fleet.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.fleet import POLICY_NAMES, FleetConfig, FleetStats, simulate_fleet

YEAR_S = 365.0 * 24.0 * 3600.0


def timed(config: FleetConfig, fabric: str, policy: str):
    start = time.perf_counter()
    stats = simulate_fleet(config, fabric, policy=policy)
    return stats, time.perf_counter() - start


def row(stats: FleetStats, elapsed: float) -> dict:
    return {
        "events": stats.events_processed,
        "events_per_sec": round(stats.events_processed / max(elapsed, 1e-9)),
        "wall_s": round(elapsed, 4),
        "failures": stats.failures,
        "repairs": stats.repairs,
        "mean_availability": stats.mean_availability,
        "lost_chip_hours": round(stats.lost_chip_seconds / 3600.0, 2),
        "ttr_p99_s": stats.ttr_p99_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        ),
    )
    args = parser.parse_args(argv)

    year = FleetConfig(seed=args.seed)
    stress = FleetConfig(seed=args.seed, mtbf_s=0.5 * YEAR_S)

    runs: dict[str, dict] = {}
    for label, config in (("year", year), ("stress_10x", stress)):
        for policy in POLICY_NAMES:
            pair = {}
            for fabric in ("electrical", "photonic"):
                stats, elapsed = timed(config, fabric, policy)
                pair[fabric] = row(stats, elapsed)
                print(
                    f"{label:>10} {policy:>9} {fabric:>10}: "
                    f"{stats.events_processed:>6} events in {elapsed:.3f} s "
                    f"({stats.events_processed / max(elapsed, 1e-9):,.0f} "
                    f"events/sec)",
                    flush=True,
                )
            if (
                pair["photonic"]["mean_availability"]
                <= pair["electrical"]["mean_availability"]
            ):
                print(
                    f"ERROR: photonic does not dominate electrical "
                    f"({label}/{policy})",
                    file=sys.stderr,
                )
                return 1
            runs[f"{label}.{policy}"] = pair

    total_events = sum(
        fabric["events"] for pair in runs.values() for fabric in pair.values()
    )
    total_wall = sum(
        fabric["wall_s"] for pair in runs.values() for fabric in pair.values()
    )
    payload = {
        "workload": {
            "chips": year.chips,
            "horizon_days": round(year.horizon_s / 86400.0, 1),
            "mtbf_years_year": round(year.mtbf_s / YEAR_S, 2),
            "mtbf_years_stress": round(stress.mtbf_s / YEAR_S, 2),
            "seed": args.seed,
        },
        "runs": runs,
        "aggregate_events_per_sec": round(total_events / max(total_wall, 1e-9)),
        "environment": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
        },
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {args.output} "
          f"({payload['aggregate_events_per_sec']:,} events/sec aggregate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
