#!/usr/bin/env python3
"""Operating a LIGHTPATH rack through the fabric controller.

Plays a day in the life of the fabric: tenants are admitted (with
automatic bandwidth steering), collectives are predicted and executed
with link telemetry, chips fail and are repaired optically, and the
controller's books are shown after every event.

Run:  python examples/fabric_controller_demo.py
"""

from repro.analysis.tables import render_table
from repro.collectives.cost_model import CostParameters
from repro.core.controller import FabricController
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.engine import EventEngine
from repro.sim.flows import Flow
from repro.sim.telemetry import InstrumentedNetwork

BUFFER = 1 << 26  # 64 MiB


def show_status(controller: FabricController, moment: str) -> None:
    status = controller.status()
    rows = [
        [name, "x".join(map(str, info["shape"])), str(info["chips"]),
         str(info["steered_dims"]), str(info["repairs"])]
        for name, info in status["tenants"].items()
    ]
    print(render_table(
        ["tenant", "shape", "chips", "steered dims", "repairs"],
        rows,
        title=f"\n[{moment}] tenants "
        f"(spares: {status['spare_chips']}, failed: {status['failed_chips']}, "
        f"circuits: {status['active_circuits']})",
    ))


def run_collective_with_telemetry(controller: FabricController, name: str) -> None:
    schedule = controller.build_schedule(name, BUFFER)
    predicted = controller.predict_reduce_scatter_s(name, BUFFER)
    engine = EventEngine()
    fraction = 1.0 if len(controller.tenant(name).steering.target_dims) == 1 else 0.5
    capacities = {
        link: CHIP_EGRESS_BYTES * fraction
        for link in controller.rack.torus.links()
    }
    network = InstrumentedNetwork(engine, capacities)
    params = CostParameters()
    elapsed = 0.0
    for phase in schedule.phases:
        elapsed += phase.reconfigurations * params.reconfig_s + params.alpha_s
        start = engine.now_s
        for i, transfer in enumerate(phase.transfers):
            network.inject(Flow((id(phase), i), transfer.links, transfer.n_bytes))
        network.run_until_idle()
        elapsed += engine.now_s - start
    horizon = engine.now_s
    idle = len(network.telemetry.idle_links())
    total = len(capacities)
    print(f"\n{name}: steered REDUCESCATTER of {BUFFER >> 20} MiB — "
          f"predicted {predicted * 1e3:.3f} ms, measured {elapsed * 1e3:.3f} ms")
    print(f"  telemetry: {total - idle}/{total} links carried traffic, "
          f"mean utilization {network.telemetry.mean_utilization(horizon):.1%} "
          f"over the busy window")
    print(f"  steering speedup over static links: "
          f"{controller.steering_speedup(name):.1f}x (beta)")


def main() -> None:
    controller = FabricController()
    controller.admit("Slice-3", (4, 4, 1), (0, 0, 0))
    controller.admit("Slice-4", (4, 4, 2), (0, 0, 1))
    controller.admit("Slice-1", (4, 2, 1), (0, 0, 3))
    show_status(controller, "admission")

    run_collective_with_telemetry(controller, "Slice-3")
    run_collective_with_telemetry(controller, "Slice-1")

    plan = controller.handle_failure((1, 2, 0))
    print(f"\nfailure: chip (1, 2, 0) in Slice-3 — repaired via "
          f"{plan.replacement} with {len(plan.circuits)} circuits in "
          f"{plan.setup_latency_s * 1e6:.1f} us")
    show_status(controller, "after repair")

    controller.evict("Slice-1")
    show_status(controller, "after Slice-1 departed")


if __name__ == "__main__":
    main()
