#!/usr/bin/env python3
"""Measured stranded bandwidth: the Figure 5c story from the simulator.

The paper asserts that static electrical links strand up to 66 % of
Slice-1's per-chip bandwidth. This example *measures* it: the same
REDUCESCATTER workload runs instrumented on the electrical torus and on
the photonic fabric, the per-link telemetry is aggregated per torus
dimension, and the bandwidth-loss fraction falls out of the two finish
times — no closed-form shortcut anywhere.

Run:  python examples/link_utilization.py
"""

from repro.analysis.tables import render_table
from repro.analysis.utilization import (
    compare_link_utilization,
    dimension_utilization,
)
from repro.api import ScenarioSpec, compare, table1_slices

SPEC = ScenarioSpec(
    slices=table1_slices(),
    mode="sim",
    outputs=("link_utilization",),
)


def show_dimensions(fabric: str, report) -> None:
    """Per-dimension mean utilization and idle-link fraction."""
    print(render_table(
        ["dimension", "links", "mean util", "idle links"],
        [
            [
                str(d.dimension),
                str(d.links),
                f"{d.mean_utilization:.1%}",
                f"{d.idle_fraction:.0%}",
            ]
            for d in dimension_utilization(report)
        ],
        title=f"{fabric} — per-dimension link load",
    ))
    print()


def main() -> None:
    results = compare(SPEC, fabrics=("electrical", "photonic"))
    electrical = results["electrical"].link_utilization
    photonic = results["photonic"].link_utilization

    show_dimensions("electrical", electrical)
    show_dimensions("photonic", photonic)

    comparison = compare_link_utilization(electrical, photonic)
    print(f"electrical finish: {electrical.horizon_s * 1e3:.3f} ms")
    print(f"photonic finish:   {photonic.horizon_s * 1e3:.3f} ms")
    print(f"speedup:           {comparison.speedup:.2f}x")
    print(
        f"measured bandwidth loss: "
        f"{comparison.bandwidth_loss_fraction:.0%} "
        "(paper Figure 5c: 66 % for Slice-1)"
    )

    loss = comparison.bandwidth_loss_fraction
    assert 0.60 <= loss <= 0.70, f"expected ~66 % measured loss, got {loss:.0%}"


if __name__ == "__main__":
    main()
