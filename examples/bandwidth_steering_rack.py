#!/usr/bin/env python3
"""Bandwidth steering on a multi-tenant rack (paper Section 4.1).

Walks the Figure 5b scenario end to end: four tenants share a TPUv4 rack,
each runs a REDUCESCATTER over its slice, and we measure — on the
discrete-event simulator, via the batch engine's ``sim`` specs — how
long every tenant takes with (a) static electrical links and (b)
LIGHTPATH wavelength steering. Also prints each slice's steering plan
(which wavelengths move where and what the 3.7 us reprogramming buys).

Run:  python examples/bandwidth_steering_rack.py
"""

from repro.analysis.tables import render_table
from repro.api import FabricSession, ScenarioSpec, figure5b_slices, run_many
from repro.collectives.primitives import Interconnect
from repro.core.steering import plan_steering

BUFFER_BYTES = 1 << 26  # 64 MiB per tenant

SESSION = FabricSession()

SPEC = ScenarioSpec(
    slices=figure5b_slices(),
    buffer_bytes=BUFFER_BYTES,
    mode="sim",
    outputs=("telemetry",),
)


def print_steering_plans() -> None:
    rows = []
    for slc in SESSION.slices(SPEC):
        plan = plan_steering(slc, Interconnect.OPTICAL)
        fractions = ", ".join(
            f"dim{d}: {f:.0%}" for d, f in sorted(plan.per_dimension_fraction.items())
        )
        rows.append(
            [
                slc.name,
                fractions,
                str(plan.switch_programs),
                f"{plan.latency_s * 1e6:.1f} us",
            ]
        )
    print(render_table(
        ["slice", "steered bandwidth", "MZI programs", "settle"],
        rows,
        title="Steering plans (all 16 wavelengths per chip reassigned)",
    ))


def main() -> None:
    print_steering_plans()

    # Both fabrics in one batch; the shared session keeps the steering
    # plans above and the simulated runs on the same topology artifacts.
    sweep = run_many(
        [SPEC.with_fabric("electrical"), SPEC.with_fabric("photonic")],
        session=SESSION,
    )
    electrical = sweep.results[0].telemetry.schedules
    optical = sweep.results[1].telemetry.schedules

    rows = []
    for entry, e, o in zip(SPEC.slices, electrical, optical):
        rows.append(
            [
                entry.name,
                "x".join(map(str, entry.shape)),
                f"{e.duration_s * 1e3:.3f} ms",
                f"{o.duration_s * 1e3:.3f} ms",
                f"{e.duration_s / o.duration_s:.2f}x",
            ]
        )
    print(render_table(
        ["tenant", "shape", "electrical", "steered optics", "speedup"],
        rows,
        title=f"\nConcurrent REDUCESCATTER, {BUFFER_BYTES >> 20} MiB per tenant",
    ))
    print(
        "\nSlice-1/2 recover the paper's 3x (one usable dimension -> full"
        "\nsteered ring); Slice-3/4 recover 1.5x (two usable dimensions)."
    )


if __name__ == "__main__":
    main()
