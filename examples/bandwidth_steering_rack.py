#!/usr/bin/env python3
"""Bandwidth steering on a multi-tenant rack (paper Section 4.1).

Walks the Figure 5b scenario end to end: four tenants share a TPUv4 rack,
each runs a REDUCESCATTER over its slice, and we measure — on the
discrete-event simulator — how long every tenant takes with (a) static
electrical links and (b) LIGHTPATH wavelength steering. Also prints each
slice's steering plan (which wavelengths move where and what the 3.7 us
reprogramming buys).

Run:  python examples/bandwidth_steering_rack.py
"""

from repro.analysis.tables import render_table
from repro.analysis.utilization import figure5b_layout
from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import Interconnect
from repro.core.steering import plan_steering
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_concurrent_schedules
from repro.sim.traffic import MultiTenantWorkload
from repro.topology.torus import Torus

BUFFER_BYTES = 1 << 26  # 64 MiB per tenant


def print_steering_plans(allocator) -> None:
    rows = []
    for slc in sorted(allocator.slices, key=lambda s: s.name):
        plan = plan_steering(slc, Interconnect.OPTICAL)
        fractions = ", ".join(
            f"dim{d}: {f:.0%}" for d, f in sorted(plan.per_dimension_fraction.items())
        )
        rows.append(
            [
                slc.name,
                fractions,
                str(plan.switch_programs),
                f"{plan.latency_s * 1e6:.1f} us",
            ]
        )
    print(render_table(
        ["slice", "steered bandwidth", "MZI programs", "settle"],
        rows,
        title="Steering plans (all 16 wavelengths per chip reassigned)",
    ))


def measure(allocator, interconnect: Interconnect) -> list:
    rack = Torus((4, 4, 4))
    fraction = 1.0 if interconnect is Interconnect.OPTICAL else 1 / 3
    capacities = {
        link: CHIP_EGRESS_BYTES * fraction for link in rack.links()
    }
    workload = MultiTenantWorkload(
        slices=allocator.slices,
        buffer_bytes=BUFFER_BYTES,
        interconnect=interconnect,
    )
    params = CostParameters()
    return run_concurrent_schedules(
        workload.schedules(), capacities, params.alpha_s, params.reconfig_s
    )


def main() -> None:
    allocator = figure5b_layout()
    print_steering_plans(allocator)

    electrical = measure(allocator, Interconnect.ELECTRICAL)
    optical = measure(allocator, Interconnect.OPTICAL)

    rows = []
    for slc, e, o in zip(allocator.slices, electrical, optical):
        rows.append(
            [
                slc.name,
                "x".join(map(str, slc.shape)),
                f"{e.duration_s * 1e3:.3f} ms",
                f"{o.duration_s * 1e3:.3f} ms",
                f"{e.duration_s / o.duration_s:.2f}x",
            ]
        )
    print(render_table(
        ["tenant", "shape", "electrical", "steered optics", "speedup"],
        rows,
        title=f"\nConcurrent REDUCESCATTER, {BUFFER_BYTES >> 20} MiB per tenant",
    ))
    print(
        "\nSlice-1/2 recover the paper's 3x (one usable dimension -> full"
        "\nsteered ring); Slice-3/4 recover 1.5x (two usable dimensions)."
    )


if __name__ == "__main__":
    main()
