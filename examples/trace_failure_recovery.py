#!/usr/bin/env python3
"""Trace a chip failure and both fabrics' recoveries as Chrome timelines.

The paper's availability argument (Figures 6 and 7) is a *timeline*
argument: when a chip dies, the electrical torus exhausts every
congested replacement candidate and falls back to a ~10-minute rack
migration, while the photonic fabric re-dials a handful of 3.7 us MZI
circuits and is back in microseconds. This example runs the same
three-tenant workload with the same failed chip on both fabrics and
exports one ``trace_event`` JSON file per fabric — open them side by
side in ui.perfetto.dev (or chrome://tracing) and the story is the gap
between two "slice-recovered" markers.

Run:  python examples/trace_failure_recovery.py [output-dir]
"""

import json
import sys
from pathlib import Path

from repro.analysis.trace_summary import render_trace_summary, summarize_trace
from repro.api import FailurePlan, ScenarioSpec, compare, figure6_slices

FAILED_CHIP = (1, 2, 0)

SPEC = ScenarioSpec(
    slices=figure6_slices(),
    mode="sim",
    outputs=("trace",),
    failures=FailurePlan(failed_chips=(FAILED_CHIP,)),
)


def recovery_window_s(report) -> float:
    """Seconds from the chip failure to the last recovery event."""
    (failure,) = report.instants("failure")
    last = max(e.end_us for e in report.events if e.cat == "recovery")
    return (last - failure.ts_us) / 1e6


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    results = compare(SPEC, fabrics=("electrical", "photonic"))
    windows = {}
    for fabric, result in results.items():
        report = result.trace
        path = out_dir / f"{fabric}_failure_recovery.trace.json"
        path.write_text(
            json.dumps(report.to_chrome(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        windows[fabric] = recovery_window_s(report)

        print(f"== {fabric} fabric -> {path} ==")
        print(render_trace_summary(report))
        recovery = next(
            s for s in summarize_trace(report) if s.category == "recovery"
        )
        print(f"recovery: {recovery.spans} span(s), "
              f"{windows[fabric]:.6f} s after the failure\n")

    ratio = windows["electrical"] / windows["photonic"]
    print(f"failed chip {FAILED_CHIP}: electrical recovery "
          f"{windows['electrical']:.1f} s (rack migration), photonic "
          f"{windows['photonic'] * 1e6:.1f} us (optical repair) — "
          f"{ratio:.0f}x faster")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
