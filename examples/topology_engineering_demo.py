#!/usr/bin/env python3
"""Topology engineering on a LIGHTPATH wafer (paper Section 6).

Given a skewed traffic matrix over the wafer's 32 accelerators — a few
elephant flows (pipeline-parallel stage traffic) over a mouse-level
floor — engineer a wavelength-circuit topology that serves the elephants
directly, and compare it with the port-equivalent static mesh. Then apply
the engineered topology to the fabric as real circuits, demonstrating the
whole path from traffic matrix to programmed MZIs.

Run:  python examples/topology_engineering_demo.py
"""

from repro.analysis.tables import render_table
from repro.core.circuits import CircuitError, CircuitManager
from repro.core.topology_engineering import (
    engineer_topology,
    evaluate_topology,
    skewed_traffic,
    uniform_mesh,
)
from repro.core.wafer import LightpathWafer

PORTS = 8


def wafer_nodes(wafer):
    """Accelerator per tile, labelled by its tile coordinate."""
    return sorted(wafer.tiles)


def main() -> None:
    wafer = LightpathWafer()
    nodes = wafer_nodes(wafer)
    traffic = skewed_traffic(
        nodes, heavy_pairs=24, heavy_bytes=56e9, light_bytes=1e9
    )
    print(f"traffic: {len(traffic.demand)} pairs, "
          f"{traffic.total_bytes_per_s() / 1e12:.2f} TB/s offered, "
          f"24 elephant flows of 56 GB/s\n")

    engineered = engineer_topology(traffic, ports_per_node=PORTS)
    mesh = uniform_mesh(nodes, ports_per_node=PORTS)
    engineered_score = evaluate_topology(engineered, traffic)
    mesh_score = evaluate_topology(mesh, traffic)
    print(render_table(
        ["topology", "direct-served", "served TB/s"],
        [
            [
                "engineered circuits",
                f"{engineered_score.direct_fraction:.1%}",
                f"{engineered_score.served_bytes_per_s / 1e12:.2f}",
            ],
            [
                "static uniform mesh",
                f"{mesh_score.direct_fraction:.1%}",
                f"{mesh_score.served_bytes_per_s / 1e12:.2f}",
            ],
        ],
        title=f"Engineered vs static ({PORTS} ports per accelerator)",
    ))

    # Program the engineered topology onto the wafer as actual circuits.
    manager = CircuitManager(wafer=wafer)
    established = 0
    failed = 0
    for (src, dst), count in sorted(engineered.circuits.items()):
        for _ in range(count):
            try:
                manager.establish(src, dst)
                established += 1
            except CircuitError:
                failed += 1
    print(f"\nprogrammed {established} circuits onto the wafer "
          f"({failed} rejected by resource limits); "
          f"mean waveguide-bus utilization "
          f"{manager.router.utilization():.2%}")
    print(f"every circuit congestion-free with "
          f"worst link margin {manager.worst_margin_db():.1f} dB")


if __name__ == "__main__":
    main()
