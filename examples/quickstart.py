#!/usr/bin/env python3
"""Quickstart: the paper's story in five steps.

Builds a LIGHTPATH wafer, establishes an optical circuit, reproduces the
Figure 5c bandwidth-utilization numbers for the Figure 5b rack, prints
Table 1, and repairs a failed TPU optically (Figure 7).

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import cost_row, render_table
from repro.analysis.utilization import figure5b_layout, rack_utilization
from repro.collectives.primitives import Interconnect, reduce_scatter_cost
from repro.core.circuits import CircuitManager
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.core.wafer import LightpathWafer
from repro.topology.slices import SliceAllocator
from repro.topology.tpu import TpuRack


def step1_wafer() -> None:
    """A 32-tile LIGHTPATH wafer with the paper's Section 3 capabilities."""
    wafer = LightpathWafer()
    print(render_table(
        ["capability", "value"],
        [list(r) for r in wafer.capabilities().rows()],
        title="1) LIGHTPATH wafer",
    ))


def step2_circuit() -> None:
    """An on-demand chip-to-chip optical circuit across the wafer."""
    manager = CircuitManager(wafer=LightpathWafer())
    circuit = manager.establish((0, 0), (3, 7))
    print("\n2) corner-to-corner circuit:")
    print(f"   route: {len(circuit.route.tiles)} tiles, "
          f"{circuit.route.boundary_crossings} crossings, "
          f"{circuit.route.mzi_hops} MZI hops")
    print(f"   loss {circuit.link_report.path_loss_db:.2f} dB, "
          f"margin {circuit.link_report.margin_db:.2f} dB, "
          f"setup {circuit.setup_latency_s * 1e6:.1f} us")


def step3_utilization() -> None:
    """Figure 5c: what each tenant of the Figure 5b rack can actually use."""
    rows = rack_utilization(figure5b_layout())
    print(render_table(
        ["slice", "shape", "electrical", "optical", "loss"],
        [
            [
                u.name,
                "x".join(map(str, u.shape)),
                f"{u.electrical_fraction:.0%}",
                f"{u.optical_fraction:.0%}",
                f"{u.bandwidth_loss_percent:.0f} %",
            ]
            for u in rows
        ],
        title="\n3) Figure 5c — usable per-chip bandwidth",
    ))


def step4_table1() -> None:
    """Table 1: REDUCESCATTER costs of Slice-1."""
    allocator = SliceAllocator(TpuRack(0).torus)
    slice1 = allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    electrical = reduce_scatter_cost(slice1, Interconnect.ELECTRICAL)
    optical = reduce_scatter_cost(slice1, Interconnect.OPTICAL)
    print(render_table(
        ["slice", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [cost_row("Slice-1", electrical, optical)],
        title="\n4) Table 1 — REDUCESCATTER costs",
    ))


def step5_repair() -> None:
    """Figure 7: splice a free TPU into the broken rings optically."""
    rack = TpuRack(0)
    fabric = LightpathRackFabric(rack)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    plan = plan_optical_repair(fabric, allocator, slice3, failed=(1, 2, 0))
    print("\n5) Figure 7 — optical repair:")
    print(f"   failed {plan.failed} -> replacement {plan.replacement}")
    print(f"   {len(plan.circuits)} circuits, {plan.fibers_used} fibers, "
          f"ready in {plan.setup_latency_s * 1e6:.1f} us, "
          f"blast radius {plan.blast_radius_chips} chip")


def main() -> None:
    step1_wafer()
    step2_circuit()
    step3_utilization()
    step4_table1()
    step5_repair()


if __name__ == "__main__":
    main()
