#!/usr/bin/env python3
"""Quickstart: the paper's story in five steps, through the experiment API.

Builds a LIGHTPATH wafer, establishes an optical circuit, then describes
the remaining experiments as :class:`repro.api.ScenarioSpec` values and
evaluates them all with one :func:`repro.api.run_many` batch: the
Figure 5c bandwidth utilization of the Figure 5b rack, Table 1 on both
fabrics, and the Figure 7 optical repair of a failed TPU. The batch
engine deduplicates the specs and can fan them across worker processes
(``jobs=4``) or a persistent cache (``cache_dir=...``) without touching
this script.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import cost_row, render_table
from repro.api import FailurePlan, RunResult, ScenarioSpec, SliceSpec, run_many
from repro.api import figure5b_slices, table1_slices
from repro.core.circuits import CircuitManager
from repro.core.wafer import LightpathWafer


def step1_wafer() -> None:
    """A 32-tile LIGHTPATH wafer with the paper's Section 3 capabilities."""
    wafer = LightpathWafer()
    print(render_table(
        ["capability", "value"],
        [list(r) for r in wafer.capabilities().rows()],
        title="1) LIGHTPATH wafer",
    ))


def step2_circuit() -> None:
    """An on-demand chip-to-chip optical circuit across the wafer."""
    manager = CircuitManager(wafer=LightpathWafer())
    circuit = manager.establish((0, 0), (3, 7))
    print("\n2) corner-to-corner circuit:")
    print(f"   route: {len(circuit.route.tiles)} tiles, "
          f"{circuit.route.boundary_crossings} crossings, "
          f"{circuit.route.mzi_hops} MZI hops")
    print(f"   loss {circuit.link_report.path_loss_db:.2f} dB, "
          f"margin {circuit.link_report.margin_db:.2f} dB, "
          f"setup {circuit.setup_latency_s * 1e6:.1f} us")


UTILIZATION_SPEC = ScenarioSpec(
    slices=figure5b_slices(), outputs=("utilization",),
)

TABLE1_SPEC = ScenarioSpec(slices=table1_slices(), outputs=("costs",))

REPAIR_SPEC = ScenarioSpec(
    fabric="photonic",
    slices=(
        SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
        SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
    ),
    outputs=("repair",),
    failures=FailurePlan(failed_chips=((1, 2, 0),)),
)


def step3_utilization(result: RunResult) -> None:
    """Figure 5c: what each tenant of the Figure 5b rack can actually use."""
    print(render_table(
        ["slice", "shape", "electrical", "optical", "loss"],
        [
            [
                u.name,
                "x".join(map(str, u.shape)),
                f"{u.electrical_fraction:.0%}",
                f"{u.optical_fraction:.0%}",
                f"{u.bandwidth_loss_percent:.0f} %",
            ]
            for u in result.utilization
        ],
        title="\n3) Figure 5c — usable per-chip bandwidth",
    ))


def step4_table1(electrical_result: RunResult, optical_result: RunResult) -> None:
    """Table 1: REDUCESCATTER costs of Slice-1, electrical vs photonic."""
    electrical = electrical_result.costs.by_name("Slice-1").cost
    optical = optical_result.costs.by_name("Slice-1").cost
    print(render_table(
        ["slice", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [cost_row("Slice-1", electrical, optical)],
        title="\n4) Table 1 — REDUCESCATTER costs",
    ))


def step5_repair(result: RunResult) -> None:
    """Figure 7: splice a free TPU into the broken rings optically."""
    repair = result.repair
    print("\n5) Figure 7 — optical repair:")
    print(f"   failed {repair.failed} -> replacement {repair.replacement}")
    print(f"   {len(repair.circuits)} circuits, {repair.fibers_used} fibers, "
          f"ready in {repair.setup_latency_s * 1e6:.1f} us, "
          f"blast radius {repair.blast_radius_chips} chip")


def main() -> None:
    step1_wafer()
    step2_circuit()
    # Steps 3-5 are one batch: run_many dedupes the specs and evaluates
    # them on a shared session (pass jobs=4 to fan out over processes).
    sweep = run_many([
        UTILIZATION_SPEC,
        TABLE1_SPEC.with_fabric("electrical"),
        TABLE1_SPEC.with_fabric("photonic"),
        REPAIR_SPEC,
    ])
    utilization, table1_elec, table1_opt, repair = sweep.results
    step3_utilization(utilization)
    step4_table1(table1_elec, table1_opt)
    step5_repair(repair)


if __name__ == "__main__":
    main()
