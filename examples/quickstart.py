#!/usr/bin/env python3
"""Quickstart: the paper's story in five steps, through the experiment API.

Builds a LIGHTPATH wafer, establishes an optical circuit, then describes
the remaining experiments as :class:`repro.api.ScenarioSpec` values and
evaluates them with :func:`repro.api.run`: the Figure 5c bandwidth
utilization of the Figure 5b rack, Table 1, and the Figure 7 optical
repair of a failed TPU.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import cost_row, render_table
from repro.api import FailurePlan, ScenarioSpec, SliceSpec, compare, run
from repro.api import figure5b_slices, table1_slices
from repro.core.circuits import CircuitManager
from repro.core.wafer import LightpathWafer


def step1_wafer() -> None:
    """A 32-tile LIGHTPATH wafer with the paper's Section 3 capabilities."""
    wafer = LightpathWafer()
    print(render_table(
        ["capability", "value"],
        [list(r) for r in wafer.capabilities().rows()],
        title="1) LIGHTPATH wafer",
    ))


def step2_circuit() -> None:
    """An on-demand chip-to-chip optical circuit across the wafer."""
    manager = CircuitManager(wafer=LightpathWafer())
    circuit = manager.establish((0, 0), (3, 7))
    print("\n2) corner-to-corner circuit:")
    print(f"   route: {len(circuit.route.tiles)} tiles, "
          f"{circuit.route.boundary_crossings} crossings, "
          f"{circuit.route.mzi_hops} MZI hops")
    print(f"   loss {circuit.link_report.path_loss_db:.2f} dB, "
          f"margin {circuit.link_report.margin_db:.2f} dB, "
          f"setup {circuit.setup_latency_s * 1e6:.1f} us")


def step3_utilization() -> None:
    """Figure 5c: what each tenant of the Figure 5b rack can actually use."""
    result = run(ScenarioSpec(
        slices=figure5b_slices(), outputs=("utilization",),
    ))
    print(render_table(
        ["slice", "shape", "electrical", "optical", "loss"],
        [
            [
                u.name,
                "x".join(map(str, u.shape)),
                f"{u.electrical_fraction:.0%}",
                f"{u.optical_fraction:.0%}",
                f"{u.bandwidth_loss_percent:.0f} %",
            ]
            for u in result.utilization
        ],
        title="\n3) Figure 5c — usable per-chip bandwidth",
    ))


def step4_table1() -> None:
    """Table 1: REDUCESCATTER costs of Slice-1, electrical vs photonic."""
    results = compare(ScenarioSpec(slices=table1_slices(), outputs=("costs",)))
    electrical = results["electrical"].costs.by_name("Slice-1").cost
    optical = results["photonic"].costs.by_name("Slice-1").cost
    print(render_table(
        ["slice", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [cost_row("Slice-1", electrical, optical)],
        title="\n4) Table 1 — REDUCESCATTER costs",
    ))


def step5_repair() -> None:
    """Figure 7: splice a free TPU into the broken rings optically."""
    result = run(ScenarioSpec(
        fabric="photonic",
        slices=(
            SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
            SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
        ),
        outputs=("repair",),
        failures=FailurePlan(failed_chips=((1, 2, 0),)),
    ))
    repair = result.repair
    print("\n5) Figure 7 — optical repair:")
    print(f"   failed {repair.failed} -> replacement {repair.replacement}")
    print(f"   {len(repair.circuits)} circuits, {repair.fibers_used} fibers, "
          f"ready in {repair.setup_latency_s * 1e6:.1f} us, "
          f"blast radius {repair.blast_radius_chips} chip")


def main() -> None:
    step1_wafer()
    step2_circuit()
    step3_utilization()
    step4_table1()
    step5_repair()


if __name__ == "__main__":
    main()
