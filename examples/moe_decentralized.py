#!/usr/bin/env python3
"""Mixture-of-Experts dispatch over dynamic optical circuits (Section 5).

MoE inference routes tokens to experts chosen at runtime by a gating
function, so circuits cannot be planned ahead. This example generates
gating batches over the 32 accelerators of a LIGHTPATH wafer and serves
them with (a) a centralized controller that tracks every waveguide and
(b) the decentralized random-claim allocator the paper calls for —
printing per-batch setup latency, retry rounds and success rates.

Run:  python examples/moe_decentralized.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.decentralized import (
    CentralizedController,
    DecentralizedAllocator,
    mean_setup_latency,
    success_rate,
)
from repro.core.wafer import LightpathWafer
from repro.sim.traffic import MoeGatingWorkload

BATCHES = 6
FANOUT = 2


def wafer_chips() -> list:
    return [(r, c) for r in range(4) for c in range(8)]


def serve(batches, make_allocator) -> list:
    """Serve each batch on a fresh wafer; return per-batch stats."""
    stats = []
    for i, batch in enumerate(batches):
        allocator = make_allocator(i)
        outcomes = allocator.allocate_batch(batch)
        attempts = max((o.attempts for o in outcomes), default=0)
        stats.append(
            (
                len(batch),
                mean_setup_latency(outcomes),
                success_rate(outcomes),
                attempts,
            )
        )
    return stats


def main() -> None:
    workload = MoeGatingWorkload(chips=wafer_chips(), fanout=FANOUT, seed=11)
    batches = workload.batches(BATCHES)
    total = sum(len(b) for b in batches)
    print(f"MoE gating: {BATCHES} batches, fanout {FANOUT}, "
          f"{total} circuit requests over 32 experts\n")

    central = serve(batches, lambda i: CentralizedController(LightpathWafer()))
    decentral = serve(
        batches,
        lambda i: DecentralizedAllocator(
            LightpathWafer(), rng=np.random.default_rng(100 + i)
        ),
    )

    rows = []
    for i, (c, d) in enumerate(zip(central, decentral)):
        rows.append(
            [
                str(i),
                str(c[0]),
                f"{c[1] * 1e6:.1f} us",
                f"{d[1] * 1e6:.1f} us",
                str(d[3]),
                f"{d[2]:.0%}",
            ]
        )
    print(render_table(
        ["batch", "requests", "central latency", "decentral latency",
         "worst rounds", "decentral ok"],
        rows,
        title="Per-batch circuit setup",
    ))

    central_mean = np.mean([c[1] for c in central])
    decentral_mean = np.mean([d[1] for d in decentral])
    print(f"\nmean setup latency: centralized {central_mean * 1e6:.1f} us, "
          f"decentralized {decentral_mean * 1e6:.1f} us")
    print("The centralized controller serializes the gating burst; the "
          "decentralized allocator programs the whole batch in a few "
          "3.7 us rounds regardless of size — the Section 5 argument.")


if __name__ == "__main__":
    main()
