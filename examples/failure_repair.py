#!/usr/bin/env python3
"""Failure recovery: electrical congestion vs optical repair (Section 4.2).

Reproduces the paper's Figures 6a and 7 on one rack: a TPU of Slice-3
fails; the exhaustive electrical analysis shows every replacement path
congests a neighbouring tenant, while the LIGHTPATH fabric splices a free
chip into the broken rings with dedicated circuits in 3.7 us. Finishes
with the fleet-scale blast-radius comparison of Section 4.2.

Run:  python examples/failure_repair.py
"""

from repro.analysis.tables import render_table
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.failures.blast_radius import compare_policies, improvement_factor
from repro.failures.inject import FleetFailureModel
from repro.failures.recovery import ElectricalRecoveryAnalysis
from repro.topology.slices import SliceAllocator
from repro.topology.tpu import TpuCluster, TpuRack

FAILED = (1, 2, 0)


def build_scenario():
    """The Figure 6a/7 rack: Slice-3 + Slice-4 + Slice-1, 8 free chips."""
    rack = TpuRack(0)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    return rack, allocator, slice3


def electrical_attempt(rack, allocator, slice3) -> None:
    analysis = ElectricalRecoveryAnalysis(rack.torus, allocator, max_hops=5)
    attempts = analysis.evaluate_all_free_chips(slice3, FAILED)
    print(render_table(
        ["candidate free chip", "congestion-free?", "congested links (best path)"],
        [
            [str(a.free_chip), "yes" if a.feasible else "no",
             str(a.total_congested_links)]
            for a in attempts
        ],
        title=f"Figure 6a — electrical replacement of failed TPU {FAILED}",
    ))
    feasible = any(a.feasible for a in attempts)
    print(f"\n  congestion-free electrical replacement exists: {feasible}")
    assert not feasible


def optical_repair(rack, allocator, slice3) -> None:
    fabric = LightpathRackFabric(rack)
    plan = plan_optical_repair(fabric, allocator, slice3, FAILED)
    print(render_table(
        ["circuit", "server path", "fibers"],
        [
            [
                f"{c.src} -> {c.dst}",
                " -> ".join(map(str, c.server_path)),
                str(c.fiber_hops),
            ]
            for c in plan.circuits
        ],
        title=f"\nFigure 7 — optical repair via free TPU {plan.replacement}",
    ))
    print(f"\n  setup: {plan.setup_latency_s * 1e6:.1f} us, "
          f"fibers used: {plan.fibers_used}, congestion: none, "
          f"blast radius: {plan.blast_radius_chips} chip")


def fleet_blast_radius() -> None:
    cluster = TpuCluster()
    events = FleetFailureModel(cluster, seed=7).sample_failures(90 * 24 * 3600.0)
    rack_report, optical_report = compare_policies(events)
    print(render_table(
        ["metric", rack_report.policy, optical_report.policy],
        [
            ["failures (90 days, 4096 chips)",
             str(rack_report.failures), str(optical_report.failures)],
            ["blast radius", f"{rack_report.blast_radius_chips} chips (rack)",
             f"{optical_report.blast_radius_chips} chips (server)"],
            ["total chip impact", str(rack_report.total_chip_impact),
             str(optical_report.total_chip_impact)],
        ],
        title="\nSection 4.2 — fleet-scale blast radius",
    ))
    print(f"\n  improvement: {improvement_factor(rack_report, optical_report):.0f}x "
          "smaller blast radius")


def main() -> None:
    rack, allocator, slice3 = build_scenario()
    electrical_attempt(rack, allocator, slice3)
    optical_repair(rack, allocator, slice3)
    fleet_blast_radius()


if __name__ == "__main__":
    main()
