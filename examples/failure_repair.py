#!/usr/bin/env python3
"""Failure recovery: electrical congestion vs optical repair (Section 4.2).

Reproduces the paper's Figures 6a and 7 on one rack through the
experiment API: the same :class:`repro.api.ScenarioSpec` (one failed TPU
in Slice-3) is evaluated — in a single :func:`repro.api.run_many`
batch — by the electrical backend, whose exhaustive
replacement analysis shows every path congests a neighbouring tenant,
and by the photonic backend, which splices a free chip into the broken
rings with dedicated circuits in 3.7 us. Finishes with the fleet-scale
blast-radius comparison of Section 4.2.

Run:  python examples/failure_repair.py
"""

from repro.analysis.tables import render_table
from repro.api import FailurePlan, ScenarioSpec, figure6_slices, run_many

FAILED = (1, 2, 0)

SPEC = ScenarioSpec(
    slices=figure6_slices(),
    outputs=("repair",),
    failures=FailurePlan(failed_chips=(FAILED,)),
)


def electrical_attempt(repair) -> None:
    print(render_table(
        ["candidate free chip", "congestion-free?", "congested links (best path)"],
        [
            [str(a.free_chip), "yes" if a.feasible else "no",
             str(a.congested_links)]
            for a in repair.attempts
        ],
        title=f"Figure 6a — electrical replacement of failed TPU {FAILED}",
    ))
    print(f"\n  congestion-free electrical replacement exists: {repair.feasible}")
    assert not repair.feasible


def optical_repair(repair) -> None:
    print(render_table(
        ["circuit", "server path", "fibers"],
        [
            [
                f"{c.src} -> {c.dst}",
                " -> ".join(map(str, c.server_path)),
                str(c.fiber_hops),
            ]
            for c in repair.circuits
        ],
        title=f"\nFigure 7 — optical repair via free TPU {repair.replacement}",
    ))
    print(f"\n  setup: {repair.setup_latency_s * 1e6:.1f} us, "
          f"fibers used: {repair.fibers_used}, congestion: none, "
          f"blast radius: {repair.blast_radius_chips} chip")


BLAST_RADIUS_SPEC = ScenarioSpec(
    fabric="photonic",
    outputs=("blast_radius",),
    failures=FailurePlan(fleet_days=90, seed=7),
)


def fleet_blast_radius(result) -> None:
    rack = result.blast_radius.rack_policy
    optical = result.blast_radius.optical_policy
    print(render_table(
        ["metric", rack.policy, optical.policy],
        [
            ["failures (90 days, 4096 chips)",
             str(rack.failures), str(optical.failures)],
            ["blast radius", f"{rack.blast_radius_chips} chips (rack)",
             f"{optical.blast_radius_chips} chips (server)"],
            ["total chip impact", str(rack.total_chip_impact),
             str(optical.total_chip_impact)],
        ],
        title="\nSection 4.2 — fleet-scale blast radius",
    ))
    print(f"\n  improvement: {result.blast_radius.improvement_factor:.0f}x "
          "smaller blast radius")


def main() -> None:
    # All three experiments go through one batch call; independent specs
    # like these are exactly what run_many(jobs=N) parallelizes.
    sweep = run_many([
        SPEC.with_fabric("electrical"),
        SPEC.with_fabric("photonic"),
        BLAST_RADIUS_SPEC,
    ])
    electrical_attempt(sweep.results[0].repair)
    optical_repair(sweep.results[1].repair)
    fleet_blast_radius(sweep.results[2])


if __name__ == "__main__":
    main()
