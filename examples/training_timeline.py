#!/usr/bin/env python3
"""A training job's timeline through a chip failure (Sections 4.1 + 4.2).

Simulates a data-parallel training job on Slice-3 of the Figure 6a rack:
steps are ALLREDUCEs over the gradient buffer, measured on the
discrete-event simulator. Midway through, a TPU fails. The timeline is
then continued under the two recovery policies the paper compares —
TPUv4-style rack migration (minutes of checkpoint restore) versus
LIGHTPATH optical repair (3.7 us of circuit setup) — and the example
prints total time-to-completion and throughput for both, plus the
steering speedup the job enjoyed all along.

Run:  python examples/training_timeline.py
"""

from repro.analysis.tables import render_table
from repro.collectives.cost_model import CostParameters
from repro.collectives.primitives import Interconnect
from repro.core.fabric import LightpathRackFabric
from repro.core.repair import plan_optical_repair
from repro.failures.blast_radius import OpticalRepairPolicy
from repro.failures.recovery import RackMigrationPolicy
from repro.phy.constants import CHIP_EGRESS_BYTES
from repro.sim.runner import run_schedule
from repro.sim.traffic import TrainingStepWorkload
from repro.topology.slices import SliceAllocator
from repro.topology.tpu import TpuRack

GRADIENT_BYTES = 1 << 28   # 256 MiB of gradients per step
TOTAL_STEPS = 1000
FAILURE_AT_STEP = 500


def step_time(slc, interconnect: Interconnect) -> float:
    """Measured duration of one ALLREDUCE training step."""
    workload = TrainingStepWorkload(slc=slc, gradient_bytes=GRADIENT_BYTES)
    schedule = workload.schedules(optical=interconnect is Interconnect.OPTICAL)[0]
    fraction = 0.5 if interconnect is Interconnect.OPTICAL else 1 / 3
    capacities = {
        link: CHIP_EGRESS_BYTES * fraction for link in slc.rack.links()
    }
    params = CostParameters()
    return run_schedule(
        schedule, capacities, params.alpha_s, params.reconfig_s
    ).duration_s


def main() -> None:
    rack = TpuRack(0)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))

    electrical_step = step_time(slice3, Interconnect.ELECTRICAL)
    optical_step = step_time(slice3, Interconnect.OPTICAL)
    print(f"one training step (comm only): electrical "
          f"{electrical_step * 1e3:.2f} ms, steered optics "
          f"{optical_step * 1e3:.2f} ms "
          f"({electrical_step / optical_step:.2f}x)\n")

    # Failure at step 500: compute both recovery timelines.
    migration = RackMigrationPolicy()
    optical_policy = OpticalRepairPolicy()

    fabric = LightpathRackFabric(rack)
    plan = plan_optical_repair(fabric, allocator, slice3, failed=(1, 2, 0))
    print(f"failure at step {FAILURE_AT_STEP}: chip (1, 2, 0); optical plan "
          f"splices {plan.replacement} in via {len(plan.circuits)} circuits\n")

    timelines = []
    for name, comm_step, stall in (
        (
            "electrical + rack migration",
            electrical_step,
            migration.recovery_latency_s(),
        ),
        (
            "lightpath + optical repair",
            optical_step,
            optical_policy.recovery_latency_s(),
        ),
    ):
        total = TOTAL_STEPS * comm_step + stall
        timelines.append(
            [
                name,
                f"{comm_step * 1e3:.2f} ms",
                f"{stall:.6g} s",
                f"{total:.2f} s",
                f"{TOTAL_STEPS / total:.1f} steps/s",
            ]
        )
    print(render_table(
        ["system", "per-step comm", "failure stall", "total (comm)",
         "throughput"],
        timelines,
        title=f"{TOTAL_STEPS}-step job with one failure at step "
        f"{FAILURE_AT_STEP}",
    ))
    electrical_total = TOTAL_STEPS * electrical_step + migration.recovery_latency_s()
    optical_total = TOTAL_STEPS * optical_step + optical_policy.recovery_latency_s()
    print(f"\nend-to-end communication+recovery advantage: "
          f"{electrical_total / optical_total:.1f}x")


if __name__ == "__main__":
    main()
