"""Failure injection models.

Drives the Section 4.2 analysis: single deterministic chip failures (the
Figure 6/7 scenarios) and randomized fleet-scale injection (exponential
time-to-failure per chip) for the blast-radius sweeps over the full
TPUv4-scale cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.torus import Coordinate
from ..topology.tpu import GlobalChipId, TpuCluster

__all__ = ["FailureEvent", "FleetFailureModel", "InvalidChipError", "single_failure"]


class InvalidChipError(ValueError):
    """A failure names a chip coordinate outside its rack's torus."""


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One chip failure.

    Attributes:
        time_s: when the chip fails.
        chip: which chip fails.
    """

    time_s: float
    chip: GlobalChipId


@dataclass
class FleetFailureModel:
    """Random chip failures across a cluster.

    Chips fail independently with exponential inter-failure times. The
    default per-chip MTBF of five years puts a 4096-chip cluster at
    roughly two failures per day — the "regular cadence" production
    reports describe [60].

    Attributes:
        cluster: the cluster whose chips can fail.
        mtbf_s: mean time between failures of one chip, seconds.
        seed: RNG seed.
    """

    cluster: TpuCluster
    mtbf_s: float = 5 * 365 * 24 * 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError("MTBF must be positive")

    def sample_failures(self, horizon_s: float) -> list[FailureEvent]:
        """Failures occurring within ``horizon_s`` seconds, time-ordered.

        Each chip contributes at most one failure (chips are replaced
        offline, not restored into the model).

        The draw is a pure function of ``seed`` — the generator is
        re-derived per call rather than consumed statefully, so a
        long-lived process (a sweep worker, the evaluation service)
        answering the same seeded plan twice produces byte-identical
        traces, request-to-request.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(self.seed)
        events = []
        for chip in self.cluster.chip_ids():
            t = float(rng.exponential(self.mtbf_s))
            if t <= horizon_s:
                events.append(FailureEvent(time_s=t, chip=chip))
        return sorted(events)

    def inject(self, events: list[FailureEvent]) -> None:
        """Mark every event's chip failed in the cluster."""
        for event in events:
            self.cluster.rack(event.chip.rack).fail_chip(event.chip.coord)

    def expected_failures(self, horizon_s: float) -> float:
        """Expected number of failures within the horizon."""
        per_chip = 1.0 - np.exp(-horizon_s / self.mtbf_s)
        return float(per_chip * self.cluster.chip_count)


def single_failure(
    cluster: TpuCluster, rack: int, chip: Coordinate, time_s: float = 0.0
) -> FailureEvent:
    """A deterministic single-chip failure (the Figure 6/7 scenarios).

    Raises:
        IndexError: for a rack index outside the cluster.
        InvalidChipError: for a chip coordinate outside the rack torus —
            caught at construction rather than exploding later in
            :meth:`FleetFailureModel.inject`.
    """
    target = cluster.rack(rack)  # validates the index
    chip = tuple(chip)
    if not target.torus.contains(chip):
        raise InvalidChipError(
            f"chip {chip} is outside rack {rack}'s torus {target.shape}"
        )
    return FailureEvent(time_s=time_s, chip=GlobalChipId(rack=rack, coord=chip))
