"""Electrical failure recovery and its congestion analysis (Figures 6a/6b).

When a chip of a slice fails in an electrical torus, the only repair that
keeps the job running is to splice a free chip into the broken rings over
*existing* static links — forwarding through intermediate chips. The paper
shows by construction that this always congests somebody: within a rack
(Figure 6a) every path from the failed chip's ring neighbours to any free
chip crosses links already carrying other slices' rings, and across racks
(Figure 6b) the OCS detour collides with the Y-dimension rings of the
remote rack's tenant. This module performs that analysis exhaustively —
enumerating candidate replacement paths and counting collisions — and
implements the production fallback the paper cites [60]: migrate at rack
granularity, with its full-rack blast radius.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.repair import broken_rings
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Coordinate, Link, Torus

__all__ = [
    "ReplacementPath",
    "ReplacementAttempt",
    "ElectricalRecoveryAnalysis",
    "RackMigrationPolicy",
]


@dataclass(frozen=True)
class ReplacementPath:
    """One candidate path from a ring neighbour to a free chip.

    Attributes:
        endpoint: the ring neighbour needing connectivity.
        path: node sequence to the free chip.
        congested_links: links of the path already carrying ring traffic.
    """

    endpoint: Coordinate
    path: tuple[Coordinate, ...]
    congested_links: tuple[Link, ...]

    @property
    def is_congestion_free(self) -> bool:
        """Whether the path avoids every in-use link."""
        return not self.congested_links


@dataclass(frozen=True)
class ReplacementAttempt:
    """Evaluation of one free chip as the replacement.

    Attributes:
        free_chip: the candidate replacement.
        best_paths: least-congested path found per required endpoint.
        feasible: True when every endpoint has a congestion-free path and
            the paths do not collide with each other.
    """

    free_chip: Coordinate
    best_paths: tuple[ReplacementPath, ...]
    feasible: bool

    @property
    def total_congested_links(self) -> int:
        """Sum of congested links across the best paths."""
        return sum(len(p.congested_links) for p in self.best_paths)


class ElectricalRecoveryAnalysis:
    """Exhaustive replacement-path analysis on an electrical torus.

    Attributes:
        torus: the (possibly multi-rack) torus being analysed.
        allocator: slice allocator providing tenants and free chips.
        max_hops: path-length bound for the exhaustive enumeration.
    """

    def __init__(
        self,
        torus: Torus,
        allocator: SliceAllocator,
        max_hops: int = 6,
        dims_per_slice: dict[str, list[int]] | None = None,
    ):
        self.torus = torus
        self.allocator = allocator
        self.max_hops = max_hops
        self.dims_per_slice = dims_per_slice or {}

    def _ring_dims(self, slc: Slice) -> list[int]:
        """Dimensions a tenant's rings occupy.

        The standard multi-dimensional bucket algorithm rings over every
        active dimension of the slice torus (Section 4.1); override per
        slice via ``dims_per_slice``.
        """
        if self.dims_per_slice and slc.name in self.dims_per_slice:
            return list(self.dims_per_slice[slc.name])
        return slc.active_dimensions()

    def busy_links(self, exclude: Slice | None = None) -> set[Link]:
        """Links occupied by tenants' rings, in both directions.

        Every slice contributes the physical links of the rings it
        executes (its active dimensions by default, including the wrap
        paths of under-spanning dimensions — the Figure 5b traffic).
        Both link directions are claimed: the bucket algorithm's
        REDUCESCATTER and ALLGATHER phases run rings in opposite
        directions (and multi-ported variants [39] ring both directions
        simultaneously), so a cable carrying a tenant's ring is busy both
        ways. Pass ``exclude`` to ignore the failed slice entirely; its
        surviving traffic is added separately by
        :meth:`surviving_ring_links`.
        """
        links: set[Link] = set()
        for slc in self.allocator.slices:
            if exclude is not None and slc.name == exclude.name:
                continue
            for dim in self._ring_dims(slc):
                for link in slc.ring_links(dim):
                    links.add(link)
                    links.add(link.reverse)
        return links

    def surviving_ring_links(self, slc: Slice, failed: Coordinate) -> set[Link]:
        """The failed slice's ring links that remain in use after repair.

        Rings not through the failed chip keep running in full. A broken
        ring keeps all of its links except the hops into and out of the
        failed chip — the repaired ring still flows 9 -> 11 -> 5 in
        Figure 7's Y ring, only the failed chip's own hops are replaced by
        the new circuits.
        """
        links: set[Link] = set()
        for dim in self._ring_dims(slc):
            for ring in slc.rings(dim):
                for a, b in zip(ring, ring[1:] + ring[:1]):
                    if failed in ring and (a == failed or b == failed):
                        continue
                    for link in slc.physical_hop(a, b, dim):
                        links.add(link)
                        links.add(link.reverse)
        return links

    def required_endpoints(
        self, slc: Slice, failed: Coordinate
    ) -> list[Coordinate]:
        """Chips that must reach the replacement to close broken rings."""
        endpoints: list[Coordinate] = []
        for ring in broken_rings(slc, failed):
            for chip in (ring.predecessor, ring.successor):
                if chip != failed and chip not in endpoints:
                    endpoints.append(chip)
        return endpoints

    def _use_path_kernel(self, slc: Slice, failed: Coordinate) -> bool:
        """Whether the vectorized index-space repair kernel applies."""
        from ..kernels import active_kernel

        return (
            active_kernel() == "vectorized"
            and slc.rack.shape == self.torus.shape
            and self.torus.contains(failed)
        )

    def evaluate_free_chip(
        self,
        slc: Slice,
        failed: Coordinate,
        free_chip: Coordinate,
        extra_busy: set[Link] | None = None,
    ) -> ReplacementAttempt:
        """Assess splicing ``free_chip`` into the rings broken by ``failed``.

        For each required endpoint, enumerates every simple path up to
        ``max_hops`` (avoiding the failed chip) and keeps the one crossing
        the fewest in-use links. The attempt is feasible only if every
        endpoint found a congestion-free path and the chosen paths are
        mutually link-disjoint (they will carry traffic simultaneously).

        Dispatches to the index-space kernel
        (:func:`repro.kernels.paths.evaluate_free_chip_vectorized`)
        unless the reference backend is selected; results are identical.
        """
        from ..kernels import STATS

        if free_chip != failed and self._use_path_kernel(slc, failed):
            from ..kernels.paths import evaluate_free_chip_vectorized

            with STATS.timed("repair"):
                return evaluate_free_chip_vectorized(
                    self, slc, failed, free_chip, extra_busy
                )
        with STATS.timed("repair"):
            return self._evaluate_free_chip_reference(
                slc, failed, free_chip, extra_busy
            )

    def _evaluate_free_chip_reference(
        self,
        slc: Slice,
        failed: Coordinate,
        free_chip: Coordinate,
        extra_busy: set[Link] | None = None,
    ) -> ReplacementAttempt:
        """Pure-python replacement-path search (the reference backend)."""
        busy = self.busy_links(exclude=slc)
        busy |= self.surviving_ring_links(slc, failed)
        if extra_busy:
            busy |= set(extra_busy)
        attempts: list[ReplacementPath] = []
        chosen_links: set[Link] = set()
        feasible = True
        for endpoint in self.required_endpoints(slc, failed):
            blocked = busy | chosen_links
            # Fast path: BFS that never touches an in-use link. If it
            # succeeds the endpoint has a congestion-free route.
            clean = self.torus.shortest_path(
                endpoint,
                free_chip,
                forbidden_nodes={failed},
                forbidden_links=blocked,
            )
            if clean is not None:
                best = ReplacementPath(
                    endpoint=endpoint, path=tuple(clean), congested_links=()
                )
            else:
                # Exhaustive bounded search for the least-congested path —
                # the evidence Figure 6a presents.
                best = None
                for path in self.torus.all_paths(
                    endpoint, free_chip, self.max_hops, forbidden_nodes={failed}
                ):
                    links = self.torus.path_links(path)
                    congested = tuple(lnk for lnk in links if lnk in blocked)
                    candidate = ReplacementPath(
                        endpoint=endpoint,
                        path=tuple(path),
                        congested_links=congested,
                    )
                    if best is None or len(candidate.congested_links) < len(
                        best.congested_links
                    ):
                        best = candidate
            if best is None:
                feasible = False
                best = ReplacementPath(
                    endpoint=endpoint, path=(endpoint,), congested_links=()
                )
            else:
                if not best.is_congestion_free:
                    feasible = False
                chosen_links.update(self.torus.path_links(list(best.path)))
            attempts.append(best)
        return ReplacementAttempt(
            free_chip=free_chip, best_paths=tuple(attempts), feasible=feasible
        )

    def evaluate_all_free_chips(
        self, slc: Slice, failed: Coordinate
    ) -> list[ReplacementAttempt]:
        """Evaluate every free chip in the allocator as the replacement.

        Under the vectorized kernel the busy/surviving link masks and the
        per-endpoint path enumerations are computed once and shared
        across all candidates (the attempts are independent, so sharing
        changes nothing but the wall clock).
        """
        from ..kernels import STATS

        if self._use_path_kernel(slc, failed):
            from ..kernels.paths import evaluate_all_free_chips_vectorized

            with STATS.timed("repair"):
                return evaluate_all_free_chips_vectorized(self, slc, failed)
        with STATS.timed("repair"):
            return [
                self._evaluate_free_chip_reference(slc, failed, free_chip)
                for free_chip in self.allocator.free_chips()
                if free_chip != failed
            ]

    def congestion_free_replacement_exists(
        self, slc: Slice, failed: Coordinate
    ) -> bool:
        """The Figure 6a question: can *any* free chip be spliced in
        without congesting someone?"""
        return any(
            attempt.feasible
            for attempt in self.evaluate_all_free_chips(slc, failed)
        )


@dataclass(frozen=True)
class RackMigrationPolicy:
    """The production baseline [60]: recover at rack granularity.

    A failure anywhere in a rack interrupts the job and moves it to a
    different (fully free) set of racks; the OCSes re-splice the new racks
    into the job's torus.

    Attributes:
        rack_chips: chips per rack (the blast radius).
        checkpoint_restore_s: time to restart the job from its last
            checkpoint on the new rack.
        ocs_reconfigure_s: time to re-program the inter-rack OCSes.
    """

    rack_chips: int = 64
    checkpoint_restore_s: float = 600.0
    ocs_reconfigure_s: float = 20e-3

    def blast_radius_chips(self) -> int:
        """Chips impacted by one failure: the whole rack."""
        return self.rack_chips

    def recovery_latency_s(self) -> float:
        """Job downtime for one failure under this policy."""
        return self.checkpoint_restore_s + self.ocs_reconfigure_s

    def spare_racks_needed(self, concurrent_failures: int) -> int:
        """Fully-free racks required to absorb concurrent failures.

        The paper notes "it may also be infeasible to find an entirely
        unused set of servers for every job with a single failed TPU";
        each concurrent failure consumes one spare rack here.
        """
        if concurrent_failures < 0:
            raise ValueError("failures cannot be negative")
        return concurrent_failures
