"""Failure injection, recovery policies and blast-radius metrics.

Implements both sides of the paper's Section 4.2 comparison: the
electrical replacement analysis that always congests a neighbour (Figures
6a/6b), the production rack-migration policy [60], and the metrics that
quantify how much smaller the blast radius becomes with optical repair.
"""

from .availability import AvailabilityPoint, AvailabilityReport, replay_trace
from .occupancy import UnitOccupancy, merge_windows
from .blast_radius import (
    BlastRadiusReport,
    OpticalRepairPolicy,
    compare_policies,
    improvement_factor,
)
from .inject import (
    FailureEvent,
    FleetFailureModel,
    InvalidChipError,
    single_failure,
)
from .recovery import (
    ElectricalRecoveryAnalysis,
    RackMigrationPolicy,
    ReplacementAttempt,
    ReplacementPath,
)

__all__ = [
    "AvailabilityPoint",
    "AvailabilityReport",
    "replay_trace",
    "UnitOccupancy",
    "merge_windows",
    "InvalidChipError",
    "BlastRadiusReport",
    "OpticalRepairPolicy",
    "compare_policies",
    "improvement_factor",
    "FailureEvent",
    "FleetFailureModel",
    "single_failure",
    "ElectricalRecoveryAnalysis",
    "RackMigrationPolicy",
    "ReplacementAttempt",
    "ReplacementPath",
]
