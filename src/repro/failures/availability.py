"""Cluster capacity availability under a failure trace (Section 4.2).

Blast radius is a per-failure number; what an operator budgets for is
*availability*: what fraction of the cluster's chip capacity is usable,
integrated over time, as failures arrive and recoveries complete. This
module replays a failure trace against a recovery policy — rack-migration
(the failed rack's 64 chips are out for the checkpoint-restore duration)
versus optical repair (the failed chip's server stalls for 3.7 us and
only the dead chip stays out) — and reports the availability time series
and its integral.

Occupancy is tracked as interval sets per blast unit (the rack under
migration, the server under optical repair; see
:class:`~repro.failures.occupancy.UnitOccupancy`): overlapping outages of
one unit merge instead of stacking, so two failures inside the same
migration window cost the rack once, not twice. Traces that never put
two failures in the same blast unit replay byte-identically to the
historical per-event delta-sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..topology.tpu import TpuRack
from .blast_radius import OpticalRepairPolicy
from .inject import FailureEvent
from .occupancy import UnitOccupancy
from .recovery import RackMigrationPolicy

__all__ = ["AvailabilityPoint", "AvailabilityReport", "replay_trace"]


@dataclass(frozen=True)
class AvailabilityPoint:
    """Available capacity over one constant interval.

    Attributes:
        start_s: interval start.
        end_s: interval end.
        available_chips: chips in service during the interval.
    """

    start_s: float
    end_s: float
    available_chips: float


@dataclass(frozen=True)
class AvailabilityReport:
    """Outcome of replaying a failure trace under one policy.

    Attributes:
        policy: policy label.
        total_chips: cluster capacity before any failure.
        horizon_s: replay horizon.
        timeline: constant-capacity intervals covering the horizon.
        lost_chip_seconds: capacity-time lost versus a failure-free run.

    Raises:
        ValueError: when any timeline point leaves ``[0, total_chips]``
            or the mean availability leaves ``[0, 1]`` — the invariants
            the occupancy accounting guarantees.
    """

    policy: str
    total_chips: int
    horizon_s: float
    timeline: tuple[AvailabilityPoint, ...]
    lost_chip_seconds: float

    def __post_init__(self) -> None:
        for point in self.timeline:
            if not 0 <= point.available_chips <= self.total_chips:
                raise ValueError(
                    f"available_chips {point.available_chips} outside "
                    f"[0, {self.total_chips}] at t={point.start_s}"
                )
        if not 0.0 <= self.mean_availability <= 1.0:
            raise ValueError(
                f"mean_availability {self.mean_availability} outside [0, 1]"
            )

    @property
    def mean_availability(self) -> float:
        """Time-averaged fraction of capacity in service."""
        if self.total_chips == 0 or self.horizon_s == 0:
            return 1.0
        return 1.0 - self.lost_chip_seconds / (self.total_chips * self.horizon_s)


def _server_unit(event: FailureEvent) -> Hashable:
    """The failed chip's server board — the optical blast unit."""
    server = tuple(
        c // b for c, b in zip(event.chip.coord, TpuRack.SERVER_BLOCK)
    )
    return (event.chip.rack, server)


def _rack_unit(event: FailureEvent) -> Hashable:
    """The failed chip's rack — the migration blast unit."""
    return event.chip.rack


def _replay(
    events: list[FailureEvent],
    total_chips: int,
    horizon_s: float,
    outage_chips: int,
    outage_duration_s: float,
    permanent_chips: int,
    policy_name: str,
    unit_of: Callable[[FailureEvent], Hashable],
) -> AvailabilityReport:
    """Shared replay: each failure takes its blast unit's ``outage_chips``
    out for ``outage_duration_s``, after which ``permanent_chips`` stay
    out per distinct failed chip.

    Outages are interval sets per blast unit, so concurrent failures of
    one unit cost it once. The capacity sweep visits the same boundary
    times (failure and recovery instants below the horizon) in the same
    order as the historical delta-sum, so unit-disjoint traces produce
    bitwise-identical reports.
    """
    units: dict[Hashable, UnitOccupancy] = {}
    for event in events:
        unit = units.setdefault(
            unit_of(event),
            UnitOccupancy(
                blast_chips=outage_chips, permanent_chips=permanent_chips
            ),
        )
        unit.add_outage(
            event.chip, event.time_s, event.time_s + outage_duration_s
        )
    # Capacity deltas at unit-occupancy transitions (boundaries at or
    # past the horizon are dropped: the outage simply persists to the
    # horizon and the permanent transition never becomes visible).
    deltas: dict[float, float] = {}
    for unit in units.values():
        current = 0
        for t, unavailable in unit.transitions():
            if t < horizon_s:
                deltas[t] = deltas.get(t, 0.0) + float(current - unavailable)
            current = unavailable
    timeline: list[AvailabilityPoint] = []
    capacity = float(total_chips)
    lost = 0.0
    previous = 0.0
    for t in sorted(deltas):
        if t > previous:
            timeline.append(
                AvailabilityPoint(
                    start_s=previous, end_s=t, available_chips=capacity
                )
            )
            lost += (total_chips - capacity) * (t - previous)
        capacity += deltas[t]
        previous = t
    if previous < horizon_s:
        timeline.append(
            AvailabilityPoint(
                start_s=previous, end_s=horizon_s, available_chips=capacity
            )
        )
        lost += (total_chips - capacity) * (horizon_s - previous)
    return AvailabilityReport(
        policy=policy_name,
        total_chips=total_chips,
        horizon_s=horizon_s,
        timeline=tuple(timeline),
        lost_chip_seconds=lost,
    )


def replay_trace(
    events: list[FailureEvent],
    total_chips: int,
    horizon_s: float,
    migration: RackMigrationPolicy | None = None,
    optical: OpticalRepairPolicy | None = None,
) -> tuple[AvailabilityReport, AvailabilityReport]:
    """Replay ``events`` under both recovery policies.

    Under rack migration a failure parks the whole rack for the
    checkpoint-restore time and leaves one chip permanently out; under
    optical repair only the server stalls (microseconds) and one chip
    stays out. Concurrent failures sharing a blast unit cost it once.

    Returns:
        (rack-migration report, optical-repair report).

    Raises:
        ValueError: on a non-positive horizon or capacity.
    """
    if horizon_s <= 0 or total_chips <= 0:
        raise ValueError("horizon and capacity must be positive")
    migration = migration or RackMigrationPolicy()
    optical = optical or OpticalRepairPolicy()
    rack_report = _replay(
        events,
        total_chips,
        horizon_s,
        outage_chips=migration.blast_radius_chips(),
        outage_duration_s=migration.recovery_latency_s(),
        permanent_chips=1,
        policy_name="rack-migration [60]",
        unit_of=_rack_unit,
    )
    optical_report = _replay(
        events,
        total_chips,
        horizon_s,
        outage_chips=optical.blast_radius_chips(),
        outage_duration_s=optical.recovery_latency_s(),
        permanent_chips=1,
        policy_name="lightpath-repair (Fig 7)",
        unit_of=_server_unit,
    )
    return rack_report, optical_report
