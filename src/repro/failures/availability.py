"""Cluster capacity availability under a failure trace (Section 4.2).

Blast radius is a per-failure number; what an operator budgets for is
*availability*: what fraction of the cluster's chip capacity is usable,
integrated over time, as failures arrive and recoveries complete. This
module replays a failure trace against a recovery policy — rack-migration
(the failed rack's 64 chips are out for the checkpoint-restore duration)
versus optical repair (the failed chip's server stalls for 3.7 us and
only the dead chip stays out) — and reports the availability time series
and its integral.
"""

from __future__ import annotations

from dataclasses import dataclass

from .blast_radius import OpticalRepairPolicy
from .inject import FailureEvent
from .recovery import RackMigrationPolicy

__all__ = ["AvailabilityPoint", "AvailabilityReport", "replay_trace"]


@dataclass(frozen=True)
class AvailabilityPoint:
    """Available capacity over one constant interval.

    Attributes:
        start_s: interval start.
        end_s: interval end.
        available_chips: chips in service during the interval.
    """

    start_s: float
    end_s: float
    available_chips: float


@dataclass(frozen=True)
class AvailabilityReport:
    """Outcome of replaying a failure trace under one policy.

    Attributes:
        policy: policy label.
        total_chips: cluster capacity before any failure.
        horizon_s: replay horizon.
        timeline: constant-capacity intervals covering the horizon.
        lost_chip_seconds: capacity-time lost versus a failure-free run.
    """

    policy: str
    total_chips: int
    horizon_s: float
    timeline: tuple[AvailabilityPoint, ...]
    lost_chip_seconds: float

    @property
    def mean_availability(self) -> float:
        """Time-averaged fraction of capacity in service."""
        if self.total_chips == 0 or self.horizon_s == 0:
            return 1.0
        return 1.0 - self.lost_chip_seconds / (self.total_chips * self.horizon_s)


def _replay(
    events: list[FailureEvent],
    total_chips: int,
    horizon_s: float,
    outage_chips: int,
    outage_duration_s: float,
    permanent_chips: int,
    policy_name: str,
) -> AvailabilityReport:
    """Shared replay: each failure takes ``outage_chips`` out for
    ``outage_duration_s``, after which ``permanent_chips`` stay out."""
    # Build capacity deltas at event boundaries.
    deltas: dict[float, float] = {}

    def add(t: float, delta: float) -> None:
        if t < horizon_s:
            deltas[t] = deltas.get(t, 0.0) + delta

    for event in sorted(events):
        add(event.time_s, -float(outage_chips))
        recover_t = event.time_s + outage_duration_s
        add(recover_t, float(outage_chips - permanent_chips))
    timeline: list[AvailabilityPoint] = []
    capacity = float(total_chips)
    lost = 0.0
    previous = 0.0
    for t in sorted(deltas):
        if t > previous:
            timeline.append(
                AvailabilityPoint(
                    start_s=previous, end_s=t, available_chips=capacity
                )
            )
            lost += (total_chips - capacity) * (t - previous)
        capacity += deltas[t]
        previous = t
    if previous < horizon_s:
        timeline.append(
            AvailabilityPoint(
                start_s=previous, end_s=horizon_s, available_chips=capacity
            )
        )
        lost += (total_chips - capacity) * (horizon_s - previous)
    return AvailabilityReport(
        policy=policy_name,
        total_chips=total_chips,
        horizon_s=horizon_s,
        timeline=tuple(timeline),
        lost_chip_seconds=lost,
    )


def replay_trace(
    events: list[FailureEvent],
    total_chips: int,
    horizon_s: float,
    migration: RackMigrationPolicy | None = None,
    optical: OpticalRepairPolicy | None = None,
) -> tuple[AvailabilityReport, AvailabilityReport]:
    """Replay ``events`` under both recovery policies.

    Under rack migration a failure parks the whole rack for the
    checkpoint-restore time and leaves one chip permanently out; under
    optical repair only the server stalls (microseconds) and one chip
    stays out.

    Returns:
        (rack-migration report, optical-repair report).

    Raises:
        ValueError: on a non-positive horizon or capacity.
    """
    if horizon_s <= 0 or total_chips <= 0:
        raise ValueError("horizon and capacity must be positive")
    migration = migration or RackMigrationPolicy()
    optical = optical or OpticalRepairPolicy()
    rack_report = _replay(
        events,
        total_chips,
        horizon_s,
        outage_chips=migration.blast_radius_chips(),
        outage_duration_s=migration.recovery_latency_s(),
        permanent_chips=1,
        policy_name="rack-migration [60]",
    )
    optical_report = _replay(
        events,
        total_chips,
        horizon_s,
        outage_chips=optical.blast_radius_chips(),
        outage_duration_s=optical.recovery_latency_s(),
        permanent_chips=1,
        policy_name="lightpath-repair (Fig 7)",
    )
    return rack_report, optical_report
