"""Blast-radius metrics: rack-granularity recovery vs optical repair.

Section 4.2's quantitative claim: with server-scale photonics "the blast
radius of a single chip failure [shrinks] to only the multi-accelerator
server containing the failed chip", versus the rack-granularity policy of
the production TPUv4 cluster [60]. This module turns that claim into
metrics — impacted chips, recovery latency, and capacity lost over a
failure trace — for the Section 4.2 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.constants import CHIPS_PER_SERVER, RECONFIG_LATENCY_S
from .inject import FailureEvent
from .recovery import RackMigrationPolicy

__all__ = ["BlastRadiusReport", "OpticalRepairPolicy", "compare_policies"]


@dataclass(frozen=True)
class OpticalRepairPolicy:
    """Recovery with LIGHTPATH circuit repair (Section 4.2, Figure 7).

    Attributes:
        server_chips: chips sharing a board with the failed chip; the
            paper's blast radius is this server.
        circuit_setup_s: time to program the repair circuits (3.7 us,
            switches program in parallel).
        spare_required: free chips consumed per failure (one).
    """

    server_chips: int = CHIPS_PER_SERVER
    circuit_setup_s: float = RECONFIG_LATENCY_S
    spare_required: int = 1

    def blast_radius_chips(self) -> int:
        """Chips impacted by one failure: the failed chip's server."""
        return self.server_chips

    def recovery_latency_s(self) -> float:
        """Job stall for one failure: the circuit setup time."""
        return self.circuit_setup_s


@dataclass(frozen=True)
class BlastRadiusReport:
    """Aggregate impact of a failure trace under one recovery policy.

    Attributes:
        policy: human-readable policy name.
        failures: failures in the trace.
        blast_radius_chips: chips impacted per failure.
        total_chip_impact: failures x blast radius.
        total_downtime_s: summed per-failure recovery latency.
        lost_chip_seconds: capacity lost = impacted chips x downtime,
            summed over failures.
    """

    policy: str
    failures: int
    blast_radius_chips: int
    total_chip_impact: int
    total_downtime_s: float
    lost_chip_seconds: float


def _report(
    policy_name: str,
    blast: int,
    latency_s: float,
    events: list[FailureEvent],
) -> BlastRadiusReport:
    n = len(events)
    return BlastRadiusReport(
        policy=policy_name,
        failures=n,
        blast_radius_chips=blast,
        total_chip_impact=n * blast,
        total_downtime_s=n * latency_s,
        lost_chip_seconds=n * blast * latency_s,
    )


def compare_policies(
    events: list[FailureEvent],
    migration: RackMigrationPolicy | None = None,
    optical: OpticalRepairPolicy | None = None,
) -> tuple[BlastRadiusReport, BlastRadiusReport]:
    """Evaluate a failure trace under both recovery policies.

    Returns:
        (rack-migration report, optical-repair report).
    """
    migration = migration or RackMigrationPolicy()
    optical = optical or OpticalRepairPolicy()
    rack_report = _report(
        "rack-migration [60]",
        migration.blast_radius_chips(),
        migration.recovery_latency_s(),
        events,
    )
    optical_report = _report(
        "lightpath-repair (Fig 7)",
        optical.blast_radius_chips(),
        optical.recovery_latency_s(),
        events,
    )
    return rack_report, optical_report


def improvement_factor(
    rack_report: BlastRadiusReport, optical_report: BlastRadiusReport
) -> float:
    """How many times smaller the optical policy's chip impact is."""
    if optical_report.total_chip_impact == 0:
        return float("inf")
    return rack_report.total_chip_impact / optical_report.total_chip_impact
