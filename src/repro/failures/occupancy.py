"""Set-based outage occupancy for one blast unit.

The availability replay charges every failure a *blast unit* — the whole
rack under rack migration, the failed chip's server under optical repair.
Summing per-event capacity deltas double-subtracts when two failures of
the same unit overlap in time (the unit is only out once), so occupancy
is tracked here as an interval set per unit instead: merged outage
windows, plus the permanently-dead chips that remain after each window
drains. :mod:`repro.failures.availability` sweeps these unit occupancies
to build the cluster timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["merge_windows", "UnitOccupancy"]


def merge_windows(
    windows: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of half-open ``[start, end)`` windows, merged and sorted.

    Touching windows (one ends exactly where the next starts) merge: the
    unit never comes back in between.
    """
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class UnitOccupancy:
    """Unavailable-chip step function of one blast unit.

    Each outage takes the whole unit (``blast_chips``) out for its
    window; overlapping windows merge rather than stack. Once every
    window covering a chip's recovery has drained, that chip contributes
    ``permanent_chips`` forever (each distinct chip at most once), capped
    at the unit size — a unit cannot lose more chips than it has.

    Attributes:
        blast_chips: chips the unit loses while any outage is active
            (also the unit's capacity).
        permanent_chips: chips each distinct failed chip leaves
            permanently out after its outage window.
    """

    blast_chips: int
    permanent_chips: int
    _windows: list[tuple[float, float]] = field(default_factory=list)
    _recoveries: dict[Hashable, float] = field(default_factory=dict)

    def add_outage(self, chip: Hashable, start_s: float, end_s: float) -> None:
        """Record ``chip`` failing at ``start_s``, recovering at ``end_s``."""
        self._windows.append((start_s, end_s))
        first = self._recoveries.get(chip)
        if first is None or end_s < first:
            self._recoveries[chip] = end_s

    def transitions(self) -> list[tuple[float, int]]:
        """``(time, unavailable_chips)`` steps, time-ordered.

        The function is 0 before the first window; ``blast_chips``
        inside every merged window; and between/after windows the capped
        permanent loss of the chips recovered so far. Recoveries strictly
        inside a window produce no step — they are masked by the outage.
        """
        recoveries = sorted(self._recoveries.values())
        steps: list[tuple[float, int]] = []
        recovered = 0
        for start, end in merge_windows(self._windows):
            steps.append((start, self.blast_chips))
            while recovered < len(recoveries) and recoveries[recovered] <= end:
                recovered += 1
            permanent = min(
                self.blast_chips, self.permanent_chips * recovered
            )
            steps.append((end, permanent))
        return steps
