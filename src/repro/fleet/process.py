"""Per-chip failure renewal process for the fleet simulator.

:class:`~repro.failures.inject.FleetFailureModel` draws at most one
failure per chip — fine for a blast-radius snapshot, silently
undercounting on long horizons where repaired chips fail again. The
fleet simulator instead treats each chip as a renewal process: after
every repair the chip draws a fresh exponential time-to-failure from its
own RNG substream.

Determinism matches the PR 5 seed-purity guarantee: each chip's
substream is derived from ``(seed, chip_index)`` and consumed only by
that chip's own renewals, so the whole failure trace is a pure function
of the seed and the (deterministic) repair dynamics — two runs of the
same seeded config, in the same process or across sharded serve
workers, produce byte-identical traces request-to-request.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RenewalFailureProcess"]


class RenewalFailureProcess:
    """Independent exponential renewal streams, one per chip.

    Attributes:
        chips: number of chips (stream count).
        mtbf_s: mean time between failures of one chip, seconds.
        seed: base RNG seed; chip ``i`` draws from
            ``default_rng((seed, i))``.
    """

    def __init__(self, chips: int, mtbf_s: float, seed: int = 0):
        if chips <= 0:
            raise ValueError("need at least one chip")
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        self.chips = chips
        self.mtbf_s = mtbf_s
        self.seed = seed
        self._streams: list[np.random.Generator | None] = [None] * chips

    def next_delay_s(self, chip: int) -> float:
        """The chip's next time-to-failure draw, seconds from now.

        Consumes one value from the chip's substream; substreams are
        created lazily so an uneventful chip costs nothing.
        """
        if not 0 <= chip < self.chips:
            raise IndexError(f"chip {chip} outside fleet of {self.chips}")
        stream = self._streams[chip]
        if stream is None:
            stream = np.random.default_rng((self.seed, chip))
            self._streams[chip] = stream
        return float(stream.exponential(self.mtbf_s))
