"""Event-driven fleet reliability simulator (a year of Section 4.2).

The paper's blast-radius argument is a single-failure snapshot; this
module runs the ambitious extension — months of fleet life over the full
4096-chip cluster — on the existing :class:`~repro.sim.engine.EventEngine`.
Chips fail as independent renewal processes
(:class:`~repro.fleet.process.RenewalFailureProcess`), a pluggable policy
(:mod:`repro.fleet.policies`) decides when repairs dispatch, and the
fabric's repair executor enforces its bandwidth budget:

* **electrical** — a failure is repaired by migrating the whole rack
  (the production policy [60]): every chip of the rack is out for the
  checkpoint-restore window, at most ``max_concurrent_migrations``
  migrations run fleet-wide, and one migration fixes every failed chip
  of its rack.
* **photonic** — the failed chip's server stalls for the 3.7 us circuit
  setup while a spare chip is spliced in over LIGHTPATH circuits; each
  rack holds ``spare_inventory`` spares, and a consumed spare returns
  ``spare_replenish_s`` later (the physical replacement), so failure
  bursts can exhaust the inventory and queue.

Occupancy is tracked live — failed chips and blast-radius collateral are
integrated separately — and every number in the resulting
:class:`FleetStats` derives from simulation state, never wall clock, so
runs are deterministic per seed and golden-testable.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..failures.recovery import RackMigrationPolicy
from ..obs.log import INFO as _INFO, NULL_LOG, EventLog
from ..phy.constants import CHIPS_PER_SERVER, RACKS_PER_CLUSTER, RECONFIG_LATENCY_S
from ..sim.engine import EventEngine, SimulationError
from .policies import RepairPolicy, make_policy
from .process import RenewalFailureProcess

__all__ = [
    "FleetConfig",
    "FleetStats",
    "FleetSimulator",
    "simulate_fleet",
    "set_progress_log",
    "FABRICS",
]

#: Seconds in the simulator's year.
YEAR_S = 365.0 * 24.0 * 3600.0

#: Fabrics the simulator models.
FABRICS = ("electrical", "photonic")

_OPERATIONAL, _FAILED, _SUSPENDED = 0, 1, 2

_MIGRATION_S = RackMigrationPolicy().recovery_latency_s()


@dataclass(frozen=True)
class FleetConfig:
    """Geometry, failure statistics and repair budgets of one fleet run.

    Defaults reproduce the paper's TPUv4 deployment (64 racks x 64 chips)
    over one year at the five-year per-chip MTBF — roughly two failures
    per day fleet-wide, the production "regular cadence" [60].

    Attributes:
        racks: racks in the cluster.
        chips_per_rack: chips per rack (the migration blast radius).
        chips_per_server: chips per server board (the optical blast
            radius; servers tile each rack contiguously).
        horizon_s: simulated time span.
        mtbf_s: per-chip mean time between failures.
        seed: base RNG seed of the renewal process.
        max_concurrent_migrations: rack migrations allowed in flight at
            once (the electrical repair-bandwidth budget).
        spare_inventory: spare chips stocked per rack (the photonic
            repair budget).
        spare_replenish_s: time for a consumed spare to be physically
            replaced and returned to the rack's inventory.
        migration_s: rack-migration outage duration.
        circuit_setup_s: photonic repair stall (circuit programming).
        series_points: buckets in the availability time series.
    """

    racks: int = RACKS_PER_CLUSTER
    chips_per_rack: int = 64
    chips_per_server: int = CHIPS_PER_SERVER
    horizon_s: float = YEAR_S
    mtbf_s: float = 5 * YEAR_S
    seed: int = 0
    max_concurrent_migrations: int = 4
    spare_inventory: int = 8
    spare_replenish_s: float = 86400.0
    migration_s: float = _MIGRATION_S
    circuit_setup_s: float = RECONFIG_LATENCY_S
    series_points: int = 48

    def __post_init__(self) -> None:
        if self.racks < 1 or self.chips_per_rack < 1:
            raise ValueError("the cluster needs at least one rack and chip")
        if not 1 <= self.chips_per_server <= self.chips_per_rack:
            raise ValueError("chips_per_server must fit inside a rack")
        if self.horizon_s <= 0 or self.mtbf_s <= 0:
            raise ValueError("horizon and MTBF must be positive")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")
        if self.max_concurrent_migrations < 1:
            raise ValueError("need at least one migration slot")
        if self.spare_inventory < 0:
            raise ValueError("spare inventory cannot be negative")
        if self.spare_replenish_s <= 0:
            raise ValueError("spare replenish time must be positive")
        if self.migration_s <= 0 or self.circuit_setup_s <= 0:
            raise ValueError("repair durations must be positive")
        if self.series_points < 1:
            raise ValueError("the series needs at least one bucket")

    @property
    def chips(self) -> int:
        """Total chips in the fleet."""
        return self.racks * self.chips_per_rack


@dataclass(frozen=True)
class FleetStats:
    """Everything one fleet simulation measured.

    Attributes:
        fabric: ``"electrical"`` or ``"photonic"``.
        policy: dispatch policy name.
        chips: fleet size.
        horizon_s: simulated span.
        seed: RNG seed.
        failures: chip failures that occurred.
        repairs: failures repaired within the horizon.
        unrepaired: chips still failed at the horizon.
        events_processed: engine events executed.
        mean_availability: time-averaged fraction of chips in service.
        min_available_chips: lowest instantaneous capacity.
        peak_failed_chips: most chips simultaneously failed.
        lost_chip_seconds: integral of unavailable chips (failed plus
            blast-radius collateral).
        collateral_chip_seconds: the blast-radius share of the loss —
            chip-seconds of *healthy* chips taken out by rack migrations
            or server stalls (the goodput lost to blast radius).
        ttr_p50_s / ttr_p90_s / ttr_p99_s / ttr_max_s: time-to-repair
            percentiles (failure to capacity restored), nearest-rank.
        series: ``(start_s, end_s, mean_available_chips)`` buckets.
    """

    fabric: str
    policy: str
    chips: int
    horizon_s: float
    seed: int
    failures: int
    repairs: int
    unrepaired: int
    events_processed: int
    mean_availability: float
    min_available_chips: int
    peak_failed_chips: int
    lost_chip_seconds: float
    collateral_chip_seconds: float
    ttr_p50_s: float
    ttr_p90_s: float
    ttr_p99_s: float
    ttr_max_s: float
    series: tuple[tuple[float, float, float], ...]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class FleetSimulator:
    """One fabric's failure/repair dynamics over the horizon.

    Build one simulator (and one fresh policy) per run; :meth:`run`
    consumes the instance.
    """

    def __init__(
        self,
        config: FleetConfig,
        fabric: str,
        policy: RepairPolicy | None = None,
        log: EventLog | None = None,
        heartbeats: int = 10,
    ):
        if fabric not in FABRICS:
            raise ValueError(f"unknown fabric {fabric!r}; choose from {FABRICS}")
        if heartbeats < 1:
            raise ValueError(f"heartbeats must be positive, got {heartbeats}")
        self.config = config
        self.fabric = fabric
        self.policy = policy if policy is not None else make_policy("immediate")
        self.log = log if log is not None else NULL_LOG
        self.heartbeats = heartbeats
        self._heartbeats_fired = 0
        self._engine = EventEngine()
        self._process = RenewalFailureProcess(
            chips=config.chips, mtbf_s=config.mtbf_s, seed=config.seed
        )
        self._state = [_OPERATIONAL] * config.chips
        self._failure_events: list[object | None] = [None] * config.chips
        self._fail_times: dict[int, float] = {}
        # Occupancy accounting: failed chips and blast collateral are
        # integrated separately so "goodput lost to blast radius" falls
        # out directly.
        self._down_failed = 0
        self._down_collateral = 0
        self._last_t = 0.0
        self._lost = 0.0
        self._collateral_lost = 0.0
        self._transitions: list[tuple[float, int]] = [(0.0, config.chips)]
        self._min_available = config.chips
        self._peak_failed = 0
        self._failures = 0
        self._repairs = 0
        self._ttrs: list[float] = []
        # Electrical budget: bounded concurrent rack migrations.
        self._rack_busy = [False] * config.racks
        self._migration_queue: deque[int] = deque()
        self._active_migrations = 0
        # Photonic budget: per-rack spare inventory.
        self._spares = [config.spare_inventory] * config.racks
        self._spare_wait: list[deque[int]] = [deque() for _ in range(config.racks)]
        self._ran = False

    # -- occupancy accounting ----------------------------------------------------

    def _account(self) -> None:
        """Integrate the loss counters up to the engine's current time."""
        now = self._engine.now_s
        dt = now - self._last_t
        if dt > 0:
            down = self._down_failed + self._down_collateral
            self._lost += down * dt
            self._collateral_lost += self._down_collateral * dt
            self._last_t = now

    def _record(self) -> None:
        """Snapshot available capacity after a state change."""
        available = self.config.chips - self._down_failed - self._down_collateral
        if not 0 <= available <= self.config.chips:
            raise SimulationError(
                f"available chips {available} outside "
                f"[0, {self.config.chips}] at t={self._engine.now_s}"
            )
        self._transitions.append((self._engine.now_s, available))
        if available < self._min_available:
            self._min_available = available

    def _heartbeat(self) -> None:
        """Emit one ``fleet.progress`` record at the current sim time."""
        self._heartbeats_fired += 1
        self.log.info(
            "fleet.progress",
            fabric=self.fabric,
            t_days=round(self._engine.now_s / 86400.0, 3),
            failures=self._failures,
            repairs=self._repairs,
            available=(
                self.config.chips - self._down_failed - self._down_collateral
            ),
        )

    # -- failure renewal ----------------------------------------------------------

    def _schedule_failure(self, chip: int) -> None:
        t = self._engine.now_s + self._process.next_delay_s(chip)
        if t <= self.config.horizon_s:
            self._failure_events[chip] = self._engine.schedule_at(
                t, lambda chip=chip: self._on_failure(chip)
            )
        else:
            self._failure_events[chip] = None

    def _on_failure(self, chip: int) -> None:
        self._failure_events[chip] = None
        self._account()
        self._state[chip] = _FAILED
        self._down_failed += 1
        self._failures += 1
        self._fail_times[chip] = self._engine.now_s
        if self._down_failed > self._peak_failed:
            self._peak_failed = self._down_failed
        self._record()
        self.policy.on_failure(chip)

    def _suspend(self, chip: int) -> None:
        """Take a healthy chip out as blast-radius collateral."""
        event = self._failure_events[chip]
        if event is not None:
            event.cancel()
            self._failure_events[chip] = None
        self._state[chip] = _SUSPENDED
        self._down_collateral += 1

    def _restore(self, chip: int) -> None:
        """Return a chip to service with a fresh failure draw."""
        self._state[chip] = _OPERATIONAL
        self._schedule_failure(chip)

    def _repair_done(self, chip: int) -> None:
        self._down_failed -= 1
        self._repairs += 1
        self._ttrs.append(self._engine.now_s - self._fail_times.pop(chip))
        self._restore(chip)

    # -- electrical executor: budgeted rack migrations ----------------------------

    def _rack_chips(self, rack: int) -> range:
        base = rack * self.config.chips_per_rack
        return range(base, base + self.config.chips_per_rack)

    def _dispatch_electrical(self, chip: int) -> None:
        if self._state[chip] != _FAILED:
            return  # an earlier migration of the rack already fixed it
        rack = chip // self.config.chips_per_rack
        if self._rack_busy[rack]:
            return  # the queued/active migration will repair this chip too
        self._rack_busy[rack] = True
        self._migration_queue.append(rack)
        self._start_migrations()

    def _start_migrations(self) -> None:
        cfg = self.config
        while (
            self._migration_queue
            and self._active_migrations < cfg.max_concurrent_migrations
        ):
            rack = self._migration_queue.popleft()
            self._active_migrations += 1
            self._account()
            for c in self._rack_chips(rack):
                if self._state[c] == _OPERATIONAL:
                    self._suspend(c)
            self._record()
            self._engine.schedule_after(
                cfg.migration_s, lambda rack=rack: self._complete_migration(rack)
            )

    def _complete_migration(self, rack: int) -> None:
        self._account()
        for c in self._rack_chips(rack):
            if self._state[c] == _SUSPENDED:
                self._down_collateral -= 1
                self._restore(c)
            elif self._state[c] == _FAILED:
                self._repair_done(c)
        self._rack_busy[rack] = False
        self._active_migrations -= 1
        self._record()
        self._start_migrations()

    # -- photonic executor: spare-bounded circuit repairs -------------------------

    def _server_chips(self, chip: int) -> range:
        cfg = self.config
        base = (chip // cfg.chips_per_rack) * cfg.chips_per_rack
        server = (chip - base) // cfg.chips_per_server
        start = base + server * cfg.chips_per_server
        return range(
            start, min(start + cfg.chips_per_server, base + cfg.chips_per_rack)
        )

    def _dispatch_photonic(self, chip: int) -> None:
        if self._state[chip] != _FAILED:
            return
        rack = chip // self.config.chips_per_rack
        if self._spares[rack] > 0:
            self._start_photonic_repair(chip)
        else:
            self._spare_wait[rack].append(chip)

    def _start_photonic_repair(self, chip: int) -> None:
        rack = chip // self.config.chips_per_rack
        self._spares[rack] -= 1
        self._account()
        stalled = []
        for peer in self._server_chips(chip):
            if peer != chip and self._state[peer] == _OPERATIONAL:
                self._suspend(peer)
                stalled.append(peer)
        self._record()
        self._engine.schedule_after(
            self.config.circuit_setup_s,
            lambda: self._finish_photonic_repair(chip, stalled),
        )

    def _finish_photonic_repair(self, chip: int, stalled: list[int]) -> None:
        self._account()
        self._repair_done(chip)
        for peer in stalled:
            if self._state[peer] == _SUSPENDED:
                self._down_collateral -= 1
                self._restore(peer)
        self._record()
        rack = chip // self.config.chips_per_rack
        self._engine.schedule_after(
            self.config.spare_replenish_s, lambda rack=rack: self._replenish(rack)
        )

    def _replenish(self, rack: int) -> None:
        self._spares[rack] += 1
        while self._spare_wait[rack] and self._spares[rack] > 0:
            chip = self._spare_wait[rack].popleft()
            if self._state[chip] == _FAILED:
                self._start_photonic_repair(chip)

    # -- run ---------------------------------------------------------------------

    def _series(self) -> tuple[tuple[float, float, float], ...]:
        """Time-weighted mean available chips per fixed bucket."""
        cfg = self.config
        width = cfg.horizon_s / cfg.series_points
        integrals = [0.0] * cfg.series_points
        for i, (t0, available) in enumerate(self._transitions):
            t1 = (
                self._transitions[i + 1][0]
                if i + 1 < len(self._transitions)
                else cfg.horizon_s
            )
            if t1 <= t0:
                continue
            bucket = min(int(t0 // width), cfg.series_points - 1)
            while t0 < t1 and bucket < cfg.series_points:
                edge = min(t1, (bucket + 1) * width)
                integrals[bucket] += available * (edge - t0)
                t0 = edge
                bucket += 1
        return tuple(
            (i * width, (i + 1) * width, integrals[i] / width)
            for i in range(cfg.series_points)
        )

    def run(self) -> FleetStats:
        """Simulate the horizon and return the measured statistics.

        Raises:
            SimulationError: on an occupancy invariant violation or a
                runaway event loop — both indicate a simulator bug.
        """
        if self._ran:
            raise SimulationError("a FleetSimulator instance runs once")
        self._ran = True
        dispatch = (
            self._dispatch_electrical
            if self.fabric == "electrical"
            else self._dispatch_photonic
        )
        self.policy.start(self._engine, dispatch)
        for chip in range(self.config.chips):
            self._schedule_failure(chip)
        if self.log.enabled_for(_INFO):
            # Progress heartbeats ride the sim-time event queue (so they
            # interleave deterministically with the dynamics they report
            # on); they only *read* state, and their event count is
            # subtracted below so FleetStats stays byte-identical with
            # heartbeats on or off.
            for k in range(1, self.heartbeats + 1):
                self._engine.schedule_at(
                    k * self.config.horizon_s / self.heartbeats,
                    self._heartbeat,
                )
        self._engine.run(until_s=self.config.horizon_s)
        self._account()
        cfg = self.config
        ttrs = sorted(self._ttrs)
        return FleetStats(
            fabric=self.fabric,
            policy=self.policy.name,
            chips=cfg.chips,
            horizon_s=cfg.horizon_s,
            seed=cfg.seed,
            failures=self._failures,
            repairs=self._repairs,
            unrepaired=len(self._fail_times),
            events_processed=self._engine.processed - self._heartbeats_fired,
            mean_availability=(
                1.0 - self._lost / (cfg.chips * cfg.horizon_s)
            ),
            min_available_chips=self._min_available,
            peak_failed_chips=self._peak_failed,
            lost_chip_seconds=self._lost,
            collateral_chip_seconds=self._collateral_lost,
            ttr_p50_s=_percentile(ttrs, 0.50),
            ttr_p90_s=_percentile(ttrs, 0.90),
            ttr_p99_s=_percentile(ttrs, 0.99),
            ttr_max_s=ttrs[-1] if ttrs else 0.0,
            series=self._series(),
        )


_PROGRESS_LOG: EventLog = NULL_LOG


def set_progress_log(log: EventLog | None) -> None:
    """Install a process-wide heartbeat log for runs whose call path
    cannot thread ``log`` through (the CLI's ``repro fleet --progress``
    goes through the spec/backend machinery, and specs are frozen cache
    keys). ``None`` restores the silent default."""
    global _PROGRESS_LOG
    _PROGRESS_LOG = log if log is not None else NULL_LOG


def simulate_fleet(
    config: FleetConfig,
    fabric: str,
    policy: str = "immediate",
    lazy_threshold: int = 4,
    batch_interval_s: float = 21600.0,
    log: EventLog | None = None,
) -> FleetStats:
    """Run one fabric's fleet simulation with a fresh policy instance.

    ``log`` (when given and at ``info`` or lower) receives ten
    ``fleet.progress`` heartbeats on the *sim-time* schedule; the
    returned stats are byte-identical either way. A cached fleet result
    (``repro fleet`` reuses the result cache) skips the simulation and
    therefore emits no heartbeats.
    """
    return FleetSimulator(
        config,
        fabric,
        make_policy(
            policy,
            lazy_threshold=lazy_threshold,
            batch_interval_s=batch_interval_s,
        ),
        log=log if log is not None else _PROGRESS_LOG,
    ).run()
