"""Year-scale fleet reliability simulation (the CR-SIM direction).

Extends the Section 4.2 single-failure blast-radius comparison to months
of fleet life: per-chip failure renewal processes drive the event engine,
pluggable policies decide when repairs dispatch, and each fabric's repair
executor enforces its bandwidth budget (bounded concurrent rack
migrations for electrical; per-rack spare inventories for photonic).
"""

from .policies import (
    POLICY_NAMES,
    BatchedPolicy,
    ImmediatePolicy,
    LazyThresholdPolicy,
    RepairPolicy,
    make_policy,
)
from .process import RenewalFailureProcess
from .simulator import (
    FABRICS,
    FleetConfig,
    FleetSimulator,
    FleetStats,
    set_progress_log,
    simulate_fleet,
)

__all__ = [
    "POLICY_NAMES",
    "BatchedPolicy",
    "ImmediatePolicy",
    "LazyThresholdPolicy",
    "RepairPolicy",
    "make_policy",
    "RenewalFailureProcess",
    "FABRICS",
    "FleetConfig",
    "FleetSimulator",
    "FleetStats",
    "simulate_fleet",
    "set_progress_log",
]
