"""Pluggable repair-dispatch policies for the fleet simulator.

A policy decides *when* a failed chip's repair request is handed to the
fabric's repair executor (which then enforces the bandwidth budget —
concurrent rack migrations or spare inventory). Three policies model the
operational spectrum:

* :class:`ImmediatePolicy` — dispatch the moment the chip fails.
* :class:`LazyThresholdPolicy` — batch failures until ``threshold`` are
  pending, then dispatch them all (the CR-SIM ``lazy_recovery`` /
  ``recovery_threshold`` idiom: trade availability for fewer, larger
  repair operations).
* :class:`BatchedPolicy` — dispatch everything pending on a fixed
  maintenance cadence (the technician-rounds model).

Policies are stateful per run: build a fresh instance per simulation.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..sim.engine import EventEngine

__all__ = [
    "RepairPolicy",
    "ImmediatePolicy",
    "LazyThresholdPolicy",
    "BatchedPolicy",
    "make_policy",
    "POLICY_NAMES",
]

POLICY_NAMES = ("immediate", "lazy", "batched")


class RepairPolicy(Protocol):
    """Dispatch scheduling contract the simulator drives."""

    name: str

    def start(
        self, engine: EventEngine, dispatch: Callable[[int], None]
    ) -> None:
        """Bind the run's engine and dispatch sink before events flow."""
        ...

    def on_failure(self, chip: int) -> None:
        """A chip just failed; dispatch it now or hold it."""
        ...

    @property
    def held(self) -> int:
        """Failed chips held back, not yet dispatched."""
        ...


class ImmediatePolicy:
    """Dispatch every failure the moment it happens."""

    name = "immediate"

    def __init__(self) -> None:
        self._dispatch: Callable[[int], None] | None = None

    def start(
        self, engine: EventEngine, dispatch: Callable[[int], None]
    ) -> None:
        self._dispatch = dispatch

    def on_failure(self, chip: int) -> None:
        self._dispatch(chip)

    @property
    def held(self) -> int:
        return 0


class _HoldingPolicy:
    """Shared pending-queue plumbing for the batching policies."""

    def __init__(self) -> None:
        self._dispatch: Callable[[int], None] | None = None
        self._pending: list[int] = []

    def start(
        self, engine: EventEngine, dispatch: Callable[[int], None]
    ) -> None:
        self._dispatch = dispatch

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        for chip in pending:
            self._dispatch(chip)

    @property
    def held(self) -> int:
        return len(self._pending)


class LazyThresholdPolicy(_HoldingPolicy):
    """Hold failures until ``threshold`` are pending, then dispatch all."""

    name = "lazy"

    def __init__(self, threshold: int = 4):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        super().__init__()
        self.threshold = threshold

    def on_failure(self, chip: int) -> None:
        self._pending.append(chip)
        if len(self._pending) >= self.threshold:
            self._flush()


class BatchedPolicy(_HoldingPolicy):
    """Dispatch everything pending every ``interval_s`` seconds."""

    name = "batched"

    def __init__(self, interval_s: float = 21600.0):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        super().__init__()
        self.interval_s = interval_s

    def start(
        self, engine: EventEngine, dispatch: Callable[[int], None]
    ) -> None:
        super().start(engine, dispatch)

        def tick() -> None:
            self._flush()
            engine.schedule_after(self.interval_s, tick)

        engine.schedule_after(self.interval_s, tick)

    def on_failure(self, chip: int) -> None:
        self._pending.append(chip)


def make_policy(
    name: str,
    lazy_threshold: int = 4,
    batch_interval_s: float = 21600.0,
) -> RepairPolicy:
    """A fresh policy instance for one simulation run.

    Raises:
        ValueError: for an unknown policy name.
    """
    if name == "immediate":
        return ImmediatePolicy()
    if name == "lazy":
        return LazyThresholdPolicy(lazy_threshold)
    if name == "batched":
        return BatchedPolicy(batch_interval_s)
    raise ValueError(
        f"unknown repair policy {name!r}; choose from {POLICY_NAMES}"
    )
