"""Unit conversion helpers shared across the physical-layer models.

Internally the repository works in SI units (seconds, bytes, bytes/second,
watts). The optics literature mixes dB, dBm, Gbps and GB/s; these helpers
keep every conversion in one audited place.
"""

from __future__ import annotations

import math

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "gbps_to_bytes_per_s",
    "bytes_per_s_to_gbps",
    "gib",
    "mib",
    "kib",
    "us",
    "ns",
]


def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert absolute power in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert absolute power in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts!r}")
    return linear_to_db(watts / 1e-3)


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return gbps * 1e9 / 8.0


def bytes_per_s_to_gbps(rate: float) -> float:
    """Convert bytes per second to gigabits per second."""
    return rate * 8.0 / 1e9


def gib(n: float) -> int:
    """``n`` gibibytes expressed in bytes."""
    return int(n * 1024**3)


def mib(n: float) -> int:
    """``n`` mebibytes expressed in bytes."""
    return int(n * 1024**2)


def kib(n: float) -> int:
    """``n`` kibibytes expressed in bytes."""
    return int(n * 1024)


def us(n: float) -> float:
    """``n`` microseconds expressed in seconds."""
    return n * 1e-6


def ns(n: float) -> float:
    """``n`` nanoseconds expressed in seconds."""
    return n * 1e-9
