"""SerDes (serializer/deserializer) port model.

The paper notes that although a tile can physically carry >10,000
waveguides, "the number of connections that can be made by one LIGHTPATH
tile is limited by the number of SerDes ports available in the electrical
chip" (Section 3). This module models that electrical bottleneck: a pool of
lanes, each pinned to one active wavelength connection, with explicit
allocation so the fabric layer can enforce the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import SERDES_LANE_RATE_BPS, SERDES_LANES_PER_CHIP

__all__ = ["SerdesLane", "SerdesPool", "SerdesExhausted"]


class SerdesExhausted(RuntimeError):
    """Raised when a connection is requested but no SerDes lane is free."""


@dataclass
class SerdesLane:
    """One electrical lane between the accelerator and its tile.

    Attributes:
        index: lane index on the chip.
        rate_bps: line rate of the lane.
        bound_to: opaque identifier of the connection using the lane, or
            ``None`` when the lane is free.
    """

    index: int
    rate_bps: float = SERDES_LANE_RATE_BPS
    bound_to: object | None = None

    @property
    def is_free(self) -> bool:
        """Whether the lane is unallocated."""
        return self.bound_to is None


@dataclass
class SerdesPool:
    """The full set of SerDes lanes on one accelerator chip.

    Attributes:
        lanes: lane objects, index-ordered.
    """

    lanes: list[SerdesLane] = field(default_factory=list)

    @classmethod
    def for_chip(cls, lane_count: int = SERDES_LANES_PER_CHIP) -> "SerdesPool":
        """A fresh pool with ``lane_count`` free lanes."""
        if lane_count < 1:
            raise ValueError("a chip needs at least one SerDes lane")
        return cls(lanes=[SerdesLane(index=i) for i in range(lane_count)])

    @property
    def capacity(self) -> int:
        """Total lanes on the chip."""
        return len(self.lanes)

    @property
    def free_lanes(self) -> int:
        """Lanes currently unallocated."""
        return sum(1 for lane in self.lanes if lane.is_free)

    def allocate(self, connection: object) -> SerdesLane:
        """Bind the lowest-index free lane to ``connection``.

        Raises:
            SerdesExhausted: if every lane is in use.
        """
        for lane in self.lanes:
            if lane.is_free:
                lane.bound_to = connection
                return lane
        raise SerdesExhausted(
            f"all {self.capacity} SerDes lanes in use; cannot terminate "
            f"another wavelength connection"
        )

    def release(self, connection: object) -> int:
        """Free every lane bound to ``connection``; returns lanes freed."""
        freed = 0
        for lane in self.lanes:
            if lane.bound_to is connection or lane.bound_to == connection:
                lane.bound_to = None
                freed += 1
        return freed

    def release_lane(self, index: int) -> None:
        """Free the lane at ``index`` unconditionally."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"lane {index} outside pool of {self.capacity}")
        self.lanes[index].bound_to = None

    def aggregate_rate_bps(self) -> float:
        """Total electrical bandwidth of the pool, bits per second."""
        return sum(lane.rate_bps for lane in self.lanes)

    def allocated_rate_bps(self) -> float:
        """Electrical bandwidth currently bound to connections."""
        return sum(lane.rate_bps for lane in self.lanes if not lane.is_free)
