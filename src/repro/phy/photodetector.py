"""Photodetector and receiver-front-end model.

The LIGHTPATH receiver demultiplexes comb wavelengths and converts each to
an electrical signal with a photodetector feeding the SerDes (paper
Section 3). This module provides the noise-limited detection model used by
:mod:`repro.phy.link_budget` to turn a received optical power into a bit
error rate — the physical-layer feasibility check for every optical
circuit the fabric establishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .constants import PD_RESPONSIVITY_A_PER_W, RX_SENSITIVITY_DBM, TARGET_BER
from .mrr import ModulatedSignal
from .units import dbm_to_watts

__all__ = ["Photodetector", "DetectionResult"]

_ELECTRON_CHARGE_C = 1.602176634e-19
_BOLTZMANN_J_PER_K = 1.380649e-23


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of detecting one modulated wavelength.

    Attributes:
        photocurrent_a: average photocurrent, amperes.
        snr: electrical signal-to-noise ratio (linear Q^2 style metric).
        q_factor: Gaussian Q factor of the eye.
        ber: estimated bit error rate.
    """

    photocurrent_a: float
    snr: float
    q_factor: float
    ber: float

    @property
    def meets_target(self) -> bool:
        """Whether the detection meets the pre-FEC BER target."""
        return self.ber <= TARGET_BER


def _q_to_ber(q: float) -> float:
    """BER of an OOK eye with Gaussian noise and Q factor ``q``."""
    return 0.5 * math.erfc(q / math.sqrt(2.0))


@dataclass
class Photodetector:
    """A PIN photodetector with a thermal-noise-limited TIA.

    Attributes:
        responsivity_a_per_w: photocurrent per watt of incident light.
        temperature_k: receiver temperature (thermal noise).
        load_ohm: effective TIA input resistance.
        dark_current_a: detector dark current.
    """

    responsivity_a_per_w: float = PD_RESPONSIVITY_A_PER_W
    temperature_k: float = 300.0
    load_ohm: float = 50.0
    dark_current_a: float = 1e-9

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise ValueError("responsivity must be positive")
        if self.load_ohm <= 0 or self.temperature_k <= 0:
            raise ValueError("load and temperature must be positive")

    def detect(self, signal: ModulatedSignal, received_power_dbm: float) -> DetectionResult:
        """Detect ``signal`` arriving with average power ``received_power_dbm``.

        Noise model: shot noise on each eye level plus thermal noise over a
        bandwidth of ``0.75 * rate`` (NRZ matched-filter approximation).
        """
        avg_w = dbm_to_watts(received_power_dbm)
        p1 = avg_w * signal.one_level_factor
        p0 = avg_w * signal.zero_level_factor
        i1 = self.responsivity_a_per_w * p1 + self.dark_current_a
        i0 = self.responsivity_a_per_w * p0 + self.dark_current_a
        bandwidth_hz = 0.75 * signal.rate_bps
        thermal_var = 4.0 * _BOLTZMANN_J_PER_K * self.temperature_k * bandwidth_hz / self.load_ohm
        shot1 = 2.0 * _ELECTRON_CHARGE_C * i1 * bandwidth_hz
        shot0 = 2.0 * _ELECTRON_CHARGE_C * i0 * bandwidth_hz
        sigma1 = math.sqrt(thermal_var + shot1)
        sigma0 = math.sqrt(thermal_var + shot0)
        q = (i1 - i0) / (sigma1 + sigma0)
        avg_current = self.responsivity_a_per_w * avg_w
        return DetectionResult(
            photocurrent_a=avg_current,
            snr=q * q,
            q_factor=q,
            ber=_q_to_ber(q),
        )

    def sensitivity_dbm(self, signal: ModulatedSignal, target_ber: float = TARGET_BER) -> float:
        """Minimum received power meeting ``target_ber``, via bisection.

        Provides the model-derived counterpart of the
        :data:`~repro.phy.constants.RX_SENSITIVITY_DBM` datasheet constant.
        """
        if not 0.0 < target_ber < 0.5:
            raise ValueError("target BER must be in (0, 0.5)")
        lo, hi = -40.0, 10.0
        if self.detect(signal, hi).ber > target_ber:
            raise ValueError("target BER unreachable even at +10 dBm")
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.detect(signal, mid).ber <= target_ber:
                hi = mid
            else:
                lo = mid
        return hi

    @staticmethod
    def datasheet_sensitivity_dbm() -> float:
        """The datasheet sensitivity constant used by the link budget."""
        return RX_SENSITIVITY_DBM
