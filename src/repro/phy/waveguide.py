"""Waveguide and fiber segment models.

Waveguides form the edges of the two-dimensional grid that connects
LIGHTPATH tiles (paper Section 3, Figure 2c); attached fibers extend the
same circuits across wafers/servers. Both are passive segments whose only
system-visible property is insertion loss, which this module accumulates so
the link-budget model (:mod:`repro.phy.link_budget`) can decide whether a
candidate circuit closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .constants import (
    FIBER_COUPLER_LOSS_DB,
    FIBER_LOSS_DB_PER_M,
    WAVEGUIDE_LOSS_DB_PER_M,
    WAVEGUIDE_PITCH_M,
    WAVEGUIDES_PER_TILE,
)

__all__ = ["MediumKind", "Segment", "waveguide", "fiber", "PathLoss"]


class MediumKind(str, Enum):
    """Physical medium of a circuit segment."""

    WAVEGUIDE = "waveguide"
    FIBER = "fiber"


@dataclass(frozen=True)
class Segment:
    """One passive segment of an optical path.

    Attributes:
        kind: medium (on-wafer waveguide or off-wafer fiber).
        length_m: physical length, meters.
        crossings: waveguide/reticle crossings traversed by the segment.
        couplers: fiber attach couplers traversed (fiber segments only).
    """

    kind: MediumKind
    length_m: float
    crossings: int = 0
    couplers: int = 0

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ValueError("segment length cannot be negative")
        if self.crossings < 0 or self.couplers < 0:
            raise ValueError("crossings/couplers cannot be negative")

    @property
    def propagation_loss_db(self) -> float:
        """Loss from propagation alone, dB."""
        per_m = (
            WAVEGUIDE_LOSS_DB_PER_M
            if self.kind is MediumKind.WAVEGUIDE
            else FIBER_LOSS_DB_PER_M
        )
        return self.length_m * per_m

    def loss_db(self, crossing_loss_db: float) -> float:
        """Total segment loss given a per-crossing loss, dB."""
        return (
            self.propagation_loss_db
            + self.crossings * crossing_loss_db
            + self.couplers * FIBER_COUPLER_LOSS_DB
        )


def waveguide(length_m: float, crossings: int = 0) -> Segment:
    """Convenience constructor for an on-wafer waveguide segment."""
    return Segment(MediumKind.WAVEGUIDE, length_m, crossings=crossings)


def fiber(length_m: float, couplers: int = 2) -> Segment:
    """Convenience constructor for a wafer-to-wafer fiber segment.

    A fiber is coupled on and off the wafer, hence two couplers by default.
    """
    return Segment(MediumKind.FIBER, length_m, couplers=couplers)


@dataclass
class PathLoss:
    """Accumulates the passive loss of a multi-segment optical path.

    Attributes:
        segments: ordered passive segments of the path.
        mzi_hops: number of MZI switch elements the path traverses.
        crossing_loss_db: per-crossing loss used for the total (defaults to
            the paper's measured 0.25 dB mean; pass a sampled value to study
            fabrication spread).
    """

    segments: list[Segment]
    mzi_hops: int = 0
    crossing_loss_db: float = 0.25

    def __post_init__(self) -> None:
        if self.mzi_hops < 0:
            raise ValueError("mzi_hops cannot be negative")

    @property
    def crossings(self) -> int:
        """Total crossings over all segments."""
        return sum(s.crossings for s in self.segments)

    def total_db(self, mzi_insertion_loss_db: float = 0.5) -> float:
        """Total passive path loss, dB."""
        passive = sum(s.loss_db(self.crossing_loss_db) for s in self.segments)
        return passive + self.mzi_hops * mzi_insertion_loss_db


def tile_waveguide_capacity(tile_edge_m: float) -> int:
    """Bus waveguides that fit along one tile edge at the 3 um pitch.

    The paper derives "over 10,000 waveguides per tile" from the 3 um
    MZI/waveguide pitch (Figure 4); this function reproduces that count
    for the prototype's tile geometry.
    """
    if tile_edge_m <= 0:
        raise ValueError("tile edge must be positive")
    return int(tile_edge_m / WAVEGUIDE_PITCH_M)


def paper_waveguide_claim_holds(tile_edge_m: float = 0.200 / 4) -> bool:
    """Check the ">10,000 waveguides per tile" claim for a 4x8 grid wafer.

    A 200 mm wafer edge split into 4 tile rows gives a 50 mm tile edge;
    50 mm / 3 um pitch > 10,000 tracks.
    """
    return tile_waveguide_capacity(tile_edge_m) >= WAVEGUIDES_PER_TILE
