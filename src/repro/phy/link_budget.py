"""End-to-end optical link budget.

Combines the transmitter (laser + micro-ring modulator), the passive path
(waveguides, crossings, MZI hops, fibers) and the receiver (photodetector)
into a single feasibility check: *does this candidate optical circuit close
at the target BER?* The paper's Section 3 argues feasibility from the
measured 0.25 dB crossing loss; this module generalizes that argument to
arbitrary paths so the routing layer can reject circuits that would not
physically work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import (
    LASER_POWER_DBM,
    MZI_INSERTION_LOSS_DB,
    RX_SENSITIVITY_DBM,
    WAVELENGTH_RATE_BPS,
)
from .mrr import MicroRingModulator, ModulatedSignal
from .photodetector import DetectionResult, Photodetector
from .waveguide import PathLoss

__all__ = ["LinkBudget", "LinkReport"]


@dataclass(frozen=True)
class LinkReport:
    """Result of evaluating one optical circuit's physical feasibility.

    Attributes:
        launch_power_dbm: power entering the path after the modulator.
        path_loss_db: total passive loss along the path.
        received_power_dbm: power arriving at the photodetector.
        margin_db: received power minus the receiver sensitivity.
        detection: noise-model detection result (BER, Q factor).
        feasible: True when the link closes with non-negative margin *and*
            the noise model meets the BER target.
    """

    launch_power_dbm: float
    path_loss_db: float
    received_power_dbm: float
    margin_db: float
    detection: DetectionResult
    feasible: bool


@dataclass
class LinkBudget:
    """Evaluator for end-to-end optical circuits.

    Attributes:
        laser_power_dbm: per-wavelength launch power before the modulator.
        modulator: transmit-side micro-ring model.
        detector: receive-side photodetector model.
        sensitivity_dbm: datasheet receiver sensitivity used for margin.
        mzi_insertion_loss_db: per-MZI-hop loss applied to paths.
    """

    laser_power_dbm: float = LASER_POWER_DBM
    modulator: MicroRingModulator | None = None
    detector: Photodetector = field(default_factory=Photodetector)
    sensitivity_dbm: float = RX_SENSITIVITY_DBM
    mzi_insertion_loss_db: float = MZI_INSERTION_LOSS_DB

    def _signal(self, carrier_hz: float, rate_bps: float) -> ModulatedSignal:
        modulator = self.modulator or MicroRingModulator(resonance_hz=carrier_hz)
        return modulator.modulate(carrier_hz, self.laser_power_dbm, rate_bps)

    def evaluate(
        self,
        path: PathLoss,
        carrier_hz: float = 193.1e12,
        rate_bps: float = WAVELENGTH_RATE_BPS,
    ) -> LinkReport:
        """Evaluate a circuit carried on ``carrier_hz`` over ``path``."""
        signal = self._signal(carrier_hz, rate_bps)
        loss_db = path.total_db(self.mzi_insertion_loss_db)
        received_dbm = signal.carrier_power_dbm - loss_db
        detection = self.detector.detect(signal, received_dbm)
        margin = received_dbm - self.sensitivity_dbm
        return LinkReport(
            launch_power_dbm=signal.carrier_power_dbm,
            path_loss_db=loss_db,
            received_power_dbm=received_dbm,
            margin_db=margin,
            detection=detection,
            feasible=margin >= 0.0 and detection.meets_target,
        )

    def max_crossings(
        self,
        base_path: PathLoss,
        crossing_loss_db: float | None = None,
        carrier_hz: float = 193.1e12,
    ) -> int:
        """Largest number of extra crossings the budget tolerates.

        Quantifies the paper's routing-feasibility argument: with 0.25 dB
        per crossing, how deep into the wafer can a circuit go before the
        link stops closing?
        """
        per_crossing = (
            base_path.crossing_loss_db if crossing_loss_db is None else crossing_loss_db
        )
        if per_crossing <= 0:
            raise ValueError("per-crossing loss must be positive")
        report = self.evaluate(base_path, carrier_hz=carrier_hz)
        if not report.feasible:
            return 0
        return int(report.margin_db // per_crossing)
