"""Reticle stitch-loss model (paper Figure 3b).

A LIGHTPATH wafer is larger than one lithography reticle, so waveguides that
cross a reticle boundary ("stitch") — and waveguides that cross each other
in the same device layer — incur a small excess loss. The paper measures a
distribution of this loss across the prototype and reports it is low enough
(0.25 dB mean) to route circuits within a single active silicon layer.

We model fabrication variation with a truncated-normal generative model
calibrated to the paper's statistics, and reproduce the Figure 3b histogram
from Monte-Carlo samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .constants import CROSSING_LOSS_DB, CROSSING_LOSS_SIGMA_DB

__all__ = ["StitchLossModel", "LossHistogram"]


@dataclass
class LossHistogram:
    """Histogram of per-crossing losses, as plotted in Figure 3b.

    Attributes:
        bin_edges_db: histogram bin edges, dB.
        counts: occurrences per bin.
        mean_db: sample mean, dB.
        median_db: sample median, dB.
        p95_db: 95th-percentile loss, dB.
    """

    bin_edges_db: np.ndarray
    counts: np.ndarray
    mean_db: float
    median_db: float
    p95_db: float

    def rows(self) -> list[tuple[float, float, int]]:
        """Histogram as ``(lo_db, hi_db, count)`` rows for reporting."""
        return [
            (float(self.bin_edges_db[i]), float(self.bin_edges_db[i + 1]), int(c))
            for i, c in enumerate(self.counts)
        ]


@dataclass
class StitchLossModel:
    """Generative model of reticle stitch / crossing loss.

    Losses are drawn from a normal distribution truncated at zero (a
    crossing can only attenuate). Defaults reproduce the paper's 0.25 dB
    mean with the spread visible in the Figure 3b histogram.

    Attributes:
        mean_db: mean loss per crossing, dB.
        sigma_db: standard deviation of the fabrication variation, dB.
    """

    mean_db: float = CROSSING_LOSS_DB
    sigma_db: float = CROSSING_LOSS_SIGMA_DB
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def __post_init__(self) -> None:
        if self.mean_db < 0.0:
            raise ValueError("mean loss cannot be negative")
        if self.sigma_db < 0.0:
            raise ValueError("loss spread cannot be negative")

    def sample(self, n: int = 1) -> np.ndarray:
        """Draw ``n`` per-crossing losses in dB (always non-negative).

        Uses rejection-free resampling: negative draws are re-drawn from
        the positive half, preserving the unimodal shape of Figure 3b.
        """
        if n < 1:
            raise ValueError("need at least one sample")
        draws = self.rng.normal(self.mean_db, self.sigma_db, size=n)
        negative = draws < 0.0
        while np.any(negative):
            draws[negative] = self.rng.normal(
                self.mean_db, self.sigma_db, size=int(np.count_nonzero(negative))
            )
            negative = draws < 0.0
        return draws

    def path_loss_db(self, crossings: int) -> float:
        """Sampled total loss of a path with ``crossings`` crossings, dB."""
        if crossings < 0:
            raise ValueError("crossings cannot be negative")
        if crossings == 0:
            return 0.0
        return float(np.sum(self.sample(crossings)))

    def expected_path_loss_db(self, crossings: int) -> float:
        """Expected total crossing loss of a path, dB."""
        if crossings < 0:
            raise ValueError("crossings cannot be negative")
        return crossings * self.mean_db

    def histogram(self, samples: int = 5000, bins: int = 32) -> LossHistogram:
        """Monte-Carlo reproduction of the Figure 3b histogram."""
        draws = self.sample(samples)
        counts, edges = np.histogram(draws, bins=bins)
        return LossHistogram(
            bin_edges_db=edges,
            counts=counts,
            mean_db=float(np.mean(draws)),
            median_db=float(np.median(draws)),
            p95_db=float(np.percentile(draws, 95)),
        )
