"""Mach-Zehnder interferometer (MZI) switch models.

LIGHTPATH routes wavelengths between tiles with 1x3 optical switches built
from MZIs (paper Section 3, Figure 2b). Two aspects of the device matter for
the system-level analysis:

* the *static* transfer function — how a phase shift splits input power
  between the bar and cross ports, which sets insertion loss and crosstalk;
* the *dynamic* step response — how long the thermo-optic phase shifter
  takes to settle after a reconfiguration command. The paper measures
  3.7 us worst case (Figure 3a), which is the ``r`` term in every
  alpha-beta-r collective cost in Section 4.

Both are modelled here. :class:`MziSwitchDynamics` reproduces Figure 3a: it
generates the (noisy) normalized-amplitude-vs-time trace of a switching MZI
and fits a first-order exponential to recover the time constant, exactly the
analysis overlaid on the measured oscilloscope trace in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .constants import (
    MZI_INSERTION_LOSS_DB,
    MZI_TIME_CONSTANT_S,
    RECONFIG_LATENCY_S,
)
from .units import db_to_linear

__all__ = [
    "MziState",
    "MziSwitch",
    "StepResponse",
    "ExponentialFit",
    "MziSwitchDynamics",
]


class MziState:
    """Named phase settings for a 2x2 MZI element."""

    BAR = "bar"
    CROSS = "cross"

    #: Phase shift (radians) that realizes each state in a push-pull MZI.
    PHASE = {BAR: 0.0, CROSS: math.pi}


@dataclass
class MziSwitch:
    """A single 2x2 MZI element with a thermo-optic phase shifter.

    The power transfer from the input port to the cross port is
    ``sin^2(phi / 2)`` and to the bar port ``cos^2(phi / 2)``, scaled by the
    element's insertion loss. ``phi`` is the differential phase between the
    two interferometer arms.

    Attributes:
        insertion_loss_db: excess loss of the element in dB.
        phase_rad: current differential phase in radians.
    """

    insertion_loss_db: float = MZI_INSERTION_LOSS_DB
    phase_rad: float = 0.0

    def set_state(self, state: str) -> None:
        """Drive the phase shifter to a named state (``bar`` or ``cross``).

        Raises:
            ValueError: if ``state`` is not a recognized :class:`MziState`.
        """
        if state not in MziState.PHASE:
            raise ValueError(f"unknown MZI state {state!r}")
        self.phase_rad = MziState.PHASE[state]

    @property
    def transmissivity(self) -> float:
        """Linear power transmission excluding the interferometric split."""
        return db_to_linear(-self.insertion_loss_db)

    def cross_power(self, input_power_w: float = 1.0) -> float:
        """Optical power emerging from the cross port, watts."""
        split = math.sin(self.phase_rad / 2.0) ** 2
        return input_power_w * split * self.transmissivity

    def bar_power(self, input_power_w: float = 1.0) -> float:
        """Optical power emerging from the bar port, watts."""
        split = math.cos(self.phase_rad / 2.0) ** 2
        return input_power_w * split * self.transmissivity

    def extinction_ratio_db(self) -> float:
        """Ratio of the intended port's power to the leaked port's, in dB.

        Returns ``inf`` for an ideally-set bar or cross state.
        """
        hi = max(self.cross_power(), self.bar_power())
        lo = min(self.cross_power(), self.bar_power())
        if lo == 0.0:
            return math.inf
        return 10.0 * math.log10(hi / lo)


@dataclass
class StepResponse:
    """A sampled switch-transition trace (paper Figure 3a).

    Attributes:
        time_s: sample instants, seconds, starting at the drive edge.
        amplitude: normalized optical amplitude at each instant (0 -> 1).
    """

    time_s: np.ndarray
    amplitude: np.ndarray

    def settling_time(self, tolerance: float = 0.05) -> float:
        """Earliest time after which the trace stays within ``tolerance``
        of its final value.

        This is the quantity the paper reports as the 3.7 us
        reconfiguration latency.

        Raises:
            ValueError: if the trace never settles within tolerance.
        """
        final = float(self.amplitude[-1])
        deviation = np.abs(self.amplitude - final)
        outside = np.nonzero(deviation > tolerance)[0]
        if outside.size == 0:
            return float(self.time_s[0])
        last_outside = outside[-1]
        if last_outside + 1 >= self.time_s.size:
            raise ValueError("trace does not settle within tolerance")
        return float(self.time_s[last_outside + 1])


@dataclass
class ExponentialFit:
    """Least-squares fit of ``1 - A * exp(-t / tau)`` to a rising trace.

    Attributes:
        amplitude: fitted pre-exponential factor ``A``.
        tau_s: fitted time constant, seconds.
        residual_rms: root-mean-square residual of the fit.
    """

    amplitude: float
    tau_s: float
    residual_rms: float

    def settling_time(self, tolerance: float = 0.05) -> float:
        """Analytic settling time of the fitted exponential."""
        if self.amplitude <= 0 or tolerance <= 0:
            raise ValueError("amplitude and tolerance must be positive")
        if tolerance >= self.amplitude:
            return 0.0
        return self.tau_s * math.log(self.amplitude / tolerance)


@dataclass
class MziSwitchDynamics:
    """Thermo-optic switching dynamics of a LIGHTPATH MZI.

    The phase shifter behaves as a first-order thermal system: after a step
    drive at ``t = 0`` the normalized optical amplitude follows
    ``1 - exp(-t / tau)``. With ``tau = 3.7 us / 3`` the device settles to
    within 5 % after exactly the 3.7 us the paper measures.

    Attributes:
        tau_s: thermo-optic time constant, seconds.
        noise_rms: RMS of additive measurement noise on the sampled trace
            (models the oscilloscope/photodetector noise visible in
            Figure 3a).
    """

    tau_s: float = MZI_TIME_CONSTANT_S
    noise_rms: float = 0.02
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def ideal_amplitude(self, t_s: np.ndarray) -> np.ndarray:
        """Noise-free normalized amplitude at times ``t_s`` (seconds)."""
        t = np.asarray(t_s, dtype=float)
        return np.where(t < 0.0, 0.0, 1.0 - np.exp(-np.maximum(t, 0.0) / self.tau_s))

    def measure_step(
        self, duration_s: float = 10e-6, samples: int = 2000
    ) -> StepResponse:
        """Sample a noisy switching transient, as captured in Figure 3a.

        Args:
            duration_s: capture window after the drive edge, seconds.
            samples: number of evenly-spaced samples in the window.

        Raises:
            ValueError: if the capture window or sample count is not
                positive.
        """
        if duration_s <= 0 or samples <= 1:
            raise ValueError("need a positive window and at least 2 samples")
        t = np.linspace(0.0, duration_s, samples)
        clean = self.ideal_amplitude(t)
        noisy = clean + self.rng.normal(0.0, self.noise_rms, size=samples)
        return StepResponse(time_s=t, amplitude=noisy)

    def fit_exponential(self, trace: StepResponse) -> ExponentialFit:
        """Recover ``A`` and ``tau`` from a measured trace.

        Uses the standard log-linearization of ``1 - y = A exp(-t/tau)``
        restricted to samples safely above the noise floor, matching the
        fit annotation in the paper's Figure 3a.
        """
        final = float(np.median(trace.amplitude[-max(1, trace.amplitude.size // 10):]))
        residual = final - trace.amplitude
        # Keep only early samples where the decaying residual dominates noise.
        usable = residual > max(4.0 * self.noise_rms, 1e-6)
        if np.count_nonzero(usable) < 2:
            raise ValueError("trace too noisy or too short to fit")
        t = trace.time_s[usable]
        log_res = np.log(residual[usable])
        slope, intercept = np.polyfit(t, log_res, 1)
        if slope >= 0.0:
            raise ValueError("trace is not a rising exponential")
        tau = -1.0 / slope
        amplitude = math.exp(intercept)
        model = 1.0 - amplitude * np.exp(-trace.time_s / tau)
        rms = float(np.sqrt(np.mean((model - trace.amplitude) ** 2)))
        return ExponentialFit(amplitude=amplitude, tau_s=tau, residual_rms=rms)

    def reconfiguration_latency(self, tolerance: float = 0.05) -> float:
        """Analytic settling latency of the device model.

        With default parameters this returns the paper's 3.7 us.
        """
        return self.tau_s * math.log(1.0 / tolerance)


def assert_matches_paper() -> None:
    """Sanity-check that the default dynamics reproduce the 3.7 us figure.

    Raises:
        AssertionError: if the model deviates more than 2 % from the paper.
    """
    latency = MziSwitchDynamics().reconfiguration_latency()
    if not math.isclose(latency, RECONFIG_LATENCY_S, rel_tol=0.02):
        raise AssertionError(
            f"model latency {latency:.3e}s != paper {RECONFIG_LATENCY_S:.3e}s"
        )
