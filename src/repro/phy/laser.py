"""Laser comb and WDM wavelength-grid model.

Each LIGHTPATH tile carries 16 wavelength-multiplexed lasers (paper
Section 3). This module models the WDM comb those lasers emit: channel
center frequencies on a fixed grid, per-channel launch power, and simple
failure accounting (a dead laser removes one wavelength of egress from the
tile, which :mod:`repro.core` translates into lost connection capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import (
    LASER_POWER_DBM,
    LASERS_PER_TILE,
    WAVELENGTH_RATE_BPS,
    WDM_CENTER_HZ,
    WDM_GRID_SPACING_HZ,
)

__all__ = ["WdmChannel", "LaserBank"]

_SPEED_OF_LIGHT_M_PER_S = 299_792_458.0


@dataclass(frozen=True)
class WdmChannel:
    """One wavelength channel of the comb.

    Attributes:
        index: channel index on the tile (0-based).
        frequency_hz: optical carrier frequency.
        power_dbm: launch power.
        rate_bps: data rate the channel sustains when modulated.
    """

    index: int
    frequency_hz: float
    power_dbm: float = LASER_POWER_DBM
    rate_bps: float = WAVELENGTH_RATE_BPS

    @property
    def wavelength_m(self) -> float:
        """Free-space wavelength of the carrier, meters."""
        return _SPEED_OF_LIGHT_M_PER_S / self.frequency_hz


@dataclass
class LaserBank:
    """The bank of wavelength-multiplexed lasers on one tile.

    Attributes:
        channels: number of lasers (paper: 16 per tile).
        center_hz: comb center frequency.
        spacing_hz: channel spacing.
    """

    channels: int = LASERS_PER_TILE
    center_hz: float = WDM_CENTER_HZ
    spacing_hz: float = WDM_GRID_SPACING_HZ
    power_dbm: float = LASER_POWER_DBM
    _failed: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("a laser bank needs at least one channel")
        if self.spacing_hz <= 0:
            raise ValueError("channel spacing must be positive")

    def channel(self, index: int) -> WdmChannel:
        """The comb channel at ``index``.

        Raises:
            IndexError: if the index is outside the comb.
        """
        if not 0 <= index < self.channels:
            raise IndexError(f"channel {index} outside comb of {self.channels}")
        offset = index - (self.channels - 1) / 2.0
        return WdmChannel(
            index=index,
            frequency_hz=self.center_hz + offset * self.spacing_hz,
            power_dbm=self.power_dbm,
        )

    def comb(self) -> list[WdmChannel]:
        """All channels of the comb, in index order."""
        return [self.channel(i) for i in range(self.channels)]

    def fail(self, index: int) -> None:
        """Mark the laser at ``index`` as failed."""
        if not 0 <= index < self.channels:
            raise IndexError(f"channel {index} outside comb of {self.channels}")
        self._failed.add(index)

    def repair(self, index: int) -> None:
        """Clear a failure on the laser at ``index``."""
        self._failed.discard(index)

    @property
    def working_channels(self) -> int:
        """Lasers currently operational."""
        return self.channels - len(self._failed)

    def is_working(self, index: int) -> bool:
        """Whether the laser at ``index`` is operational."""
        return index not in self._failed

    def aggregate_rate_bps(self) -> float:
        """Total egress rate the working comb can carry, bits per second."""
        return self.working_channels * WAVELENGTH_RATE_BPS
