"""Physical layer of the LIGHTPATH photonic interconnect.

Models the silicon-photonic devices described in Section 3 of the paper:
MZI switches and their thermo-optic dynamics (Figure 3a), reticle
stitch/crossing loss (Figure 3b), WDM laser combs, micro-ring modulators,
photodetectors, waveguides/fibers, SerDes lane limits, and the end-to-end
link budget that decides whether a candidate optical circuit closes.
"""

from .constants import (
    CHIP_EGRESS_BYTES,
    CROSSING_LOSS_DB,
    LASERS_PER_TILE,
    RECONFIG_LATENCY_S,
    SERDES_LANES_PER_CHIP,
    SWITCH_DEGREE,
    SWITCHES_PER_TILE,
    TILES_PER_WAFER,
    WAFER_GRID,
    WAVEGUIDES_PER_TILE,
    WAVELENGTH_RATE_BPS,
    WAVELENGTH_RATE_BYTES,
)
from .crosstalk import CrosstalkModel, CrosstalkReport
from .energy import (
    ElectricalLinkEnergy,
    PhotonicLinkEnergy,
    crossover_reach_m,
)
from .laser import LaserBank, WdmChannel
from .link_budget import LinkBudget, LinkReport
from .mrr import MicroRingModulator, ModulatedSignal
from .mzi import (
    ExponentialFit,
    MziState,
    MziSwitch,
    MziSwitchDynamics,
    StepResponse,
)
from .photodetector import DetectionResult, Photodetector
from .serdes import SerdesExhausted, SerdesLane, SerdesPool
from .stitch_loss import LossHistogram, StitchLossModel
from .thermal import TilePowerModel, TilePowerReport, WaferPowerReport
from .waveguide import (
    MediumKind,
    PathLoss,
    Segment,
    fiber,
    paper_waveguide_claim_holds,
    tile_waveguide_capacity,
    waveguide,
)

__all__ = [
    "CHIP_EGRESS_BYTES",
    "CROSSING_LOSS_DB",
    "LASERS_PER_TILE",
    "RECONFIG_LATENCY_S",
    "SERDES_LANES_PER_CHIP",
    "SWITCH_DEGREE",
    "SWITCHES_PER_TILE",
    "TILES_PER_WAFER",
    "WAFER_GRID",
    "WAVEGUIDES_PER_TILE",
    "WAVELENGTH_RATE_BPS",
    "WAVELENGTH_RATE_BYTES",
    "CrosstalkModel",
    "CrosstalkReport",
    "ElectricalLinkEnergy",
    "PhotonicLinkEnergy",
    "crossover_reach_m",
    "LaserBank",
    "WdmChannel",
    "LinkBudget",
    "LinkReport",
    "MicroRingModulator",
    "ModulatedSignal",
    "ExponentialFit",
    "MziState",
    "MziSwitch",
    "MziSwitchDynamics",
    "StepResponse",
    "DetectionResult",
    "Photodetector",
    "SerdesExhausted",
    "SerdesLane",
    "SerdesPool",
    "LossHistogram",
    "StitchLossModel",
    "TilePowerModel",
    "TilePowerReport",
    "WaferPowerReport",
    "MediumKind",
    "PathLoss",
    "Segment",
    "fiber",
    "paper_waveguide_claim_holds",
    "tile_waveguide_capacity",
    "waveguide",
]
