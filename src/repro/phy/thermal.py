"""Wafer power budget: lasers, ring tuning, switch heaters, receivers.

A server-scale photonic interconnect spends power on four device classes:
the per-tile laser bank (wall-plug), thermal tuning that keeps every
micro-ring on its comb wavelength, the thermo-optic MZI heaters holding
switch states, and the receiver electronics. This module totals them per
tile and per wafer so the energy ablation can report watts alongside the
per-bit numbers of :mod:`repro.phy.energy` — the operating-cost face of
the paper's Section 1 argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import (
    LASER_POWER_DBM,
    LASERS_PER_TILE,
    SWITCHES_PER_TILE,
    TILES_PER_WAFER,
    WAVELENGTH_RATE_BPS,
)
from .units import dbm_to_watts

__all__ = ["TilePowerModel", "TilePowerReport", "WaferPowerReport"]


@dataclass(frozen=True)
class TilePowerReport:
    """Power drawn by one tile, watts.

    Attributes:
        laser_w: wall-plug laser power.
        ring_tuning_w: thermal tuning of the micro-rings.
        switch_heater_w: MZI heaters holding routes.
        receiver_w: photodetector/TIA/CDR electronics.
    """

    laser_w: float
    ring_tuning_w: float
    switch_heater_w: float
    receiver_w: float

    @property
    def total_w(self) -> float:
        """Total tile power."""
        return (
            self.laser_w + self.ring_tuning_w + self.switch_heater_w + self.receiver_w
        )


@dataclass(frozen=True)
class WaferPowerReport:
    """Power drawn by a wafer, with the efficiency headline.

    Attributes:
        per_tile: the per-tile breakdown.
        tiles: tiles on the wafer.
        aggregate_rate_bps: total bandwidth the wafer can move.
    """

    per_tile: TilePowerReport
    tiles: int
    aggregate_rate_bps: float

    @property
    def total_w(self) -> float:
        """Total wafer power."""
        return self.per_tile.total_w * self.tiles

    @property
    def pj_per_bit(self) -> float:
        """Wafer-level energy efficiency at full utilization."""
        if self.aggregate_rate_bps == 0:
            return float("inf")
        return self.total_w / self.aggregate_rate_bps * 1e12


@dataclass(frozen=True)
class TilePowerModel:
    """Per-device power figures for a LIGHTPATH tile.

    Attributes:
        laser_efficiency: wall-plug efficiency of each laser.
        ring_tuning_mw: mean thermal tuning power per micro-ring.
        rings_per_tile: rings needing tuning (one per wavelength at Tx
            and Rx).
        switch_heater_mw: holding power per MZI heater.
        mzis_per_switch: heater-bearing elements per 1x3 switch.
        receiver_mw_per_lane: receive-electronics power per wavelength.
    """

    laser_efficiency: float = 0.20
    ring_tuning_mw: float = 3.0
    rings_per_tile: int = 2 * LASERS_PER_TILE
    switch_heater_mw: float = 25.0
    mzis_per_switch: int = 2
    receiver_mw_per_lane: float = 150.0

    def __post_init__(self) -> None:
        if not 0.0 < self.laser_efficiency <= 1.0:
            raise ValueError("laser efficiency must be in (0, 1]")
        if min(
            self.ring_tuning_mw, self.switch_heater_mw, self.receiver_mw_per_lane
        ) < 0:
            raise ValueError("power figures cannot be negative")

    def tile_power(
        self, active_wavelengths: int = LASERS_PER_TILE
    ) -> TilePowerReport:
        """Per-tile power with ``active_wavelengths`` lit.

        Raises:
            ValueError: if more wavelengths than lasers are requested.
        """
        if not 0 <= active_wavelengths <= LASERS_PER_TILE:
            raise ValueError(
                f"active wavelengths must be in [0, {LASERS_PER_TILE}]"
            )
        per_laser_w = dbm_to_watts(LASER_POWER_DBM) / self.laser_efficiency
        return TilePowerReport(
            laser_w=active_wavelengths * per_laser_w,
            ring_tuning_w=self.rings_per_tile * self.ring_tuning_mw * 1e-3,
            switch_heater_w=(
                SWITCHES_PER_TILE * self.mzis_per_switch
                * self.switch_heater_mw * 1e-3
            ),
            receiver_w=active_wavelengths * self.receiver_mw_per_lane * 1e-3,
        )

    def wafer_power(
        self,
        tiles: int = TILES_PER_WAFER,
        active_wavelengths: int = LASERS_PER_TILE,
    ) -> WaferPowerReport:
        """Whole-wafer report at the given activity level.

        Raises:
            ValueError: on a non-positive tile count.
        """
        if tiles < 1:
            raise ValueError("a wafer needs at least one tile")
        per_tile = self.tile_power(active_wavelengths)
        return WaferPowerReport(
            per_tile=per_tile,
            tiles=tiles,
            aggregate_rate_bps=tiles * active_wavelengths * WAVELENGTH_RATE_BPS,
        )
