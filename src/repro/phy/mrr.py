"""Micro-ring modulator (MRR) model.

LIGHTPATH transmitters modulate data onto a wavelength with micro-ring
modulators (paper Section 3, "Modulators and Photodetectors"). For the
system-level analysis the relevant behaviour is: each MRR targets one comb
wavelength (ring resonance must align with the carrier), imposes an
insertion loss, and produces an optical eye whose extinction ratio feeds
the receiver-side BER estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .constants import (
    MRR_EXTINCTION_RATIO_DB,
    MRR_INSERTION_LOSS_DB,
    WAVELENGTH_RATE_BPS,
)
from .units import db_to_linear

__all__ = ["MicroRingModulator", "ModulatedSignal"]


@dataclass(frozen=True)
class ModulatedSignal:
    """A carrier after modulation.

    Attributes:
        carrier_power_dbm: average optical power after the modulator, dBm.
        extinction_ratio_db: ratio of the "1" level to the "0" level, dB.
        rate_bps: modulation rate, bits per second.
    """

    carrier_power_dbm: float
    extinction_ratio_db: float
    rate_bps: float

    @property
    def one_level_factor(self) -> float:
        """Linear multiplier mapping average power to the "1" level.

        For extinction ratio ``ER`` (linear) and equiprobable bits, the
        average power is ``(P1 + P0) / 2`` with ``P0 = P1 / ER``.
        """
        er = db_to_linear(self.extinction_ratio_db)
        return 2.0 * er / (er + 1.0)

    @property
    def zero_level_factor(self) -> float:
        """Linear multiplier mapping average power to the "0" level."""
        er = db_to_linear(self.extinction_ratio_db)
        return 2.0 / (er + 1.0)


@dataclass
class MicroRingModulator:
    """An MRR bound to one comb wavelength.

    Attributes:
        resonance_hz: ring resonance frequency (must match the carrier to
            within ``tuning_range_hz`` after thermal tuning).
        insertion_loss_db: on-resonance excess loss, dB.
        extinction_ratio_db: achievable eye extinction, dB.
        tuning_range_hz: thermal tuning range of the resonance.
        max_rate_bps: bandwidth limit of the modulator.
    """

    resonance_hz: float
    insertion_loss_db: float = MRR_INSERTION_LOSS_DB
    extinction_ratio_db: float = MRR_EXTINCTION_RATIO_DB
    tuning_range_hz: float = 400e9
    max_rate_bps: float = WAVELENGTH_RATE_BPS

    def can_modulate(self, carrier_hz: float) -> bool:
        """Whether the ring can be tuned onto ``carrier_hz``."""
        return abs(carrier_hz - self.resonance_hz) <= self.tuning_range_hz

    def modulate(
        self, carrier_hz: float, launch_power_dbm: float, rate_bps: float
    ) -> ModulatedSignal:
        """Modulate data at ``rate_bps`` onto the carrier.

        Raises:
            ValueError: if the carrier is outside the tuning range or the
                requested rate exceeds the modulator bandwidth.
        """
        if not self.can_modulate(carrier_hz):
            raise ValueError(
                f"carrier at {carrier_hz:.3e} Hz is outside the ring's "
                f"tuning range around {self.resonance_hz:.3e} Hz"
            )
        if rate_bps <= 0 or rate_bps > self.max_rate_bps:
            raise ValueError(
                f"rate {rate_bps:.3e} bps outside (0, {self.max_rate_bps:.3e}]"
            )
        return ModulatedSignal(
            carrier_power_dbm=launch_power_dbm - self.insertion_loss_db,
            extinction_ratio_db=self.extinction_ratio_db,
            rate_bps=rate_bps,
        )

    def detune_penalty_db(self, carrier_hz: float, linewidth_hz: float = 50e9) -> float:
        """Excess loss from imperfect resonance alignment, dB.

        Modelled as a Lorentzian rolloff of the ring response; zero when
        perfectly aligned, growing quadratically for small detuning.
        """
        if linewidth_hz <= 0:
            raise ValueError("linewidth must be positive")
        detune = (carrier_hz - self.resonance_hz) / (linewidth_hz / 2.0)
        return 10.0 * math.log10(1.0 + detune * detune)
