"""Energy-per-bit model: electrical vs photonic chip-to-chip links.

The paper's Section 1 motivation — copper loses to light at high rates and
long reach — has an energy corollary the optics literature quantifies in
picojoules per bit. This model lets the ablation benches compare the
interconnect technologies the paper discusses:

* an electrical SerDes link whose energy grows with channel loss (reach);
* a LIGHTPATH-class photonic link whose wall-plug laser power is fixed
  per wavelength (reach-independent up to the link budget) plus
  modulator/receiver energy.

Values are representative of the technology classes, not vendor
datasheets; the crossover *shape* (optics wins beyond a few centimetres at
200+ Gbps) is the result of interest.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import WAVELENGTH_RATE_BPS
from .units import dbm_to_watts

__all__ = ["ElectricalLinkEnergy", "PhotonicLinkEnergy", "crossover_reach_m"]


@dataclass(frozen=True)
class ElectricalLinkEnergy:
    """Energy model of a copper SerDes link.

    Attributes:
        base_pj_per_bit: TX+RX energy at negligible channel loss.
        pj_per_bit_per_db: equalization/redriver energy per dB of channel
            loss the link must overcome.
        loss_db_per_m: channel loss per metre at the signalling rate
            (copper at 100+ Gbps loses tens of dB per metre).
    """

    base_pj_per_bit: float = 1.0
    pj_per_bit_per_db: float = 0.15
    loss_db_per_m: float = 40.0

    def energy_pj_per_bit(self, reach_m: float) -> float:
        """Energy per bit at the given reach.

        Raises:
            ValueError: on negative reach.
        """
        if reach_m < 0:
            raise ValueError("reach cannot be negative")
        return (
            self.base_pj_per_bit
            + self.pj_per_bit_per_db * self.loss_db_per_m * reach_m
        )


@dataclass(frozen=True)
class PhotonicLinkEnergy:
    """Energy model of a LIGHTPATH-class photonic link.

    Attributes:
        laser_power_dbm: wall-plug-relevant optical launch power.
        laser_efficiency: wall-plug efficiency of the laser.
        modulator_pj_per_bit: micro-ring drive energy.
        receiver_pj_per_bit: photodetector + TIA + CDR energy.
        serdes_pj_per_bit: electrical lane in/out of the optics.
        rate_bps: data rate carried per wavelength.
    """

    laser_power_dbm: float = 10.0
    laser_efficiency: float = 0.20
    modulator_pj_per_bit: float = 0.3
    receiver_pj_per_bit: float = 0.5
    serdes_pj_per_bit: float = 0.6
    rate_bps: float = WAVELENGTH_RATE_BPS

    def laser_pj_per_bit(self) -> float:
        """Laser wall-plug energy amortized per bit."""
        if not 0.0 < self.laser_efficiency <= 1.0:
            raise ValueError("laser efficiency must be in (0, 1]")
        wall_plug_w = dbm_to_watts(self.laser_power_dbm) / self.laser_efficiency
        return wall_plug_w / self.rate_bps * 1e12

    def energy_pj_per_bit(self, reach_m: float = 0.0) -> float:
        """Energy per bit — independent of reach within the link budget.

        Raises:
            ValueError: on negative reach.
        """
        if reach_m < 0:
            raise ValueError("reach cannot be negative")
        return (
            self.laser_pj_per_bit()
            + self.modulator_pj_per_bit
            + self.receiver_pj_per_bit
            + self.serdes_pj_per_bit
        )


def crossover_reach_m(
    electrical: ElectricalLinkEnergy, photonic: PhotonicLinkEnergy
) -> float:
    """Reach beyond which the photonic link is cheaper per bit.

    Returns 0 when optics wins even at zero reach, ``inf`` when copper
    always wins (a degenerate parameterization).
    """
    optical = photonic.energy_pj_per_bit()
    at_zero = electrical.energy_pj_per_bit(0.0)
    if optical <= at_zero:
        return 0.0
    slope = electrical.pj_per_bit_per_db * electrical.loss_db_per_m
    if slope <= 0:
        return float("inf")
    return (optical - at_zero) / slope
