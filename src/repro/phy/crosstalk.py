"""Optical crosstalk accumulation along switched circuits.

Every MZI a circuit traverses leaks a small fraction of *other* circuits'
light into it (finite extinction ratio), and every waveguide crossing
couples a sliver of the crossing signal. Over the many hops of a
server-scale route these leaks accumulate and erode the optical
signal-to-noise ratio — a physical-layer limit on the paper's ">10,000
waveguides per tile" density that the link budget alone does not capture.

The model is the standard incoherent-crosstalk accumulation: each leak
contributes interferer power ``P_signal - X`` dB (``X`` the isolation),
summed linearly; the resulting signal-to-crosstalk ratio maps to a power
penalty that :func:`penalized_margin_db` charges against the link budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .units import db_to_linear, linear_to_db

__all__ = ["CrosstalkModel", "CrosstalkReport"]


@dataclass(frozen=True)
class CrosstalkReport:
    """Accumulated crosstalk along one circuit.

    Attributes:
        leak_count: interfering leak contributions accumulated.
        crosstalk_ratio_db: signal-to-crosstalk ratio (higher is better).
        power_penalty_db: equivalent receiver power penalty.
    """

    leak_count: int
    crosstalk_ratio_db: float
    power_penalty_db: float

    @property
    def negligible(self) -> bool:
        """Whether the penalty is below 0.1 dB."""
        return self.power_penalty_db < 0.1


@dataclass(frozen=True)
class CrosstalkModel:
    """Per-element isolation figures for a LIGHTPATH circuit.

    Attributes:
        mzi_isolation_db: extinction of an off-state MZI port.
        crossing_isolation_db: coupling suppression at a waveguide
            crossing (much better than a switch port).
        occupancy: fraction of neighbouring ports/crossings actually
            carrying an interfering signal (1.0 = worst case).
    """

    mzi_isolation_db: float = 35.0
    crossing_isolation_db: float = 50.0
    occupancy: float = 1.0

    def __post_init__(self) -> None:
        if self.mzi_isolation_db <= 0 or self.crossing_isolation_db <= 0:
            raise ValueError("isolation figures must be positive dB")
        if not 0.0 <= self.occupancy <= 1.0:
            raise ValueError("occupancy must be in [0, 1]")

    def accumulate(self, mzi_hops: int, crossings: int) -> CrosstalkReport:
        """Crosstalk of a circuit with the given hop counts.

        Raises:
            ValueError: on negative hop counts.
        """
        if mzi_hops < 0 or crossings < 0:
            raise ValueError("hop counts cannot be negative")
        mzi_leak = db_to_linear(-self.mzi_isolation_db)
        crossing_leak = db_to_linear(-self.crossing_isolation_db)
        total_leak = self.occupancy * (
            mzi_hops * mzi_leak + crossings * crossing_leak
        )
        leak_count = mzi_hops + crossings
        if total_leak <= 0.0:
            return CrosstalkReport(
                leak_count=leak_count,
                crosstalk_ratio_db=math.inf,
                power_penalty_db=0.0,
            )
        ratio_db = -linear_to_db(total_leak)
        # Standard incoherent crosstalk penalty: -5 log10(1 - 4 * eps)
        # diverges as eps -> 0.25; clamp the unusable regime.
        eps = total_leak
        if eps >= 0.25:
            penalty = math.inf
        else:
            penalty = -5.0 * math.log10(1.0 - 4.0 * eps)
        return CrosstalkReport(
            leak_count=leak_count,
            crosstalk_ratio_db=ratio_db,
            power_penalty_db=penalty,
        )

    def penalized_margin_db(
        self, base_margin_db: float, mzi_hops: int, crossings: int
    ) -> float:
        """Link margin after charging the crosstalk power penalty."""
        report = self.accumulate(mzi_hops, crossings)
        if math.isinf(report.power_penalty_db):
            return -math.inf
        return base_margin_db - report.power_penalty_db

    def max_mzi_hops(self, budget_penalty_db: float = 1.0) -> int:
        """Largest switch-hop count whose penalty stays within budget.

        Quantifies how deep a circuit can thread through the switch
        fabric before crosstalk (not loss) becomes the binding limit.

        Raises:
            ValueError: on a non-positive budget.
        """
        if budget_penalty_db <= 0:
            raise ValueError("penalty budget must be positive")
        hops = 0
        while True:
            report = self.accumulate(hops + 1, 0)
            if report.power_penalty_db > budget_penalty_db:
                return hops
            hops += 1
            if hops > 1_000_000:  # pragma: no cover - defensive bound
                return hops
