"""Device constants for the LIGHTPATH photonic interconnect.

Every scalar in this module is taken from, or derived from, the numbers
reported in Section 3 of the paper ("Server-scale optical interconnects").
They parameterise the physical-layer models in :mod:`repro.phy` and the
fabric model in :mod:`repro.core`, so the downstream analytical results see
exactly the hardware the paper measured.

Units follow the repository convention (DESIGN.md §5): seconds, bytes,
bytes/second, meters, watts, dB where noted.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Wafer geometry (Figure 1, Figure 2c)
# --------------------------------------------------------------------------

#: Number of tiles on one LIGHTPATH wafer; one accelerator stacks per tile.
TILES_PER_WAFER = 32

#: Default tile grid used for a full wafer (rows, cols). The paper shows a
#: 2x4 excerpt of the grid (Figure 2c); a full 32-tile wafer is 4x8.
WAFER_GRID = (4, 8)

#: Physical wafer edge length (the prototype socket is 200 mm x 200 mm).
WAFER_EDGE_M = 0.200

# --------------------------------------------------------------------------
# Optical sources and data rates (Section 3, "Light sources and waveguides")
# --------------------------------------------------------------------------

#: Wavelength-multiplexed lasers (and photodiodes) per tile.
LASERS_PER_TILE = 16

#: Peak data rate one wavelength can sustain, bits per second (224 Gbps).
WAVELENGTH_RATE_BPS = 224e9

#: Same rate expressed in bytes per second.
WAVELENGTH_RATE_BYTES = WAVELENGTH_RATE_BPS / 8.0

#: ITU-like grid spacing used by the WDM model (100 GHz).
WDM_GRID_SPACING_HZ = 100e9

#: Center frequency of the WDM comb (~193.1 THz, C-band).
WDM_CENTER_HZ = 193.1e12

# --------------------------------------------------------------------------
# Switching (Section 3, "Optical switches" / "Microsecond reconfiguration")
# --------------------------------------------------------------------------

#: Optical switches per tile.
SWITCHES_PER_TILE = 4

#: Degree of each per-tile optical switch (1 input x 3 outputs).
SWITCH_DEGREE = 3

#: Worst-case MZI reconfiguration latency, seconds (3.7 us, Figure 3a).
RECONFIG_LATENCY_S = 3.7e-6

#: Thermo-optic time constant used by the step-response model. A first-order
#: system settles to within 5 % of its final value after three time
#: constants; tau = 3.7 us / 3 reproduces the measured settling time.
MZI_TIME_CONSTANT_S = RECONFIG_LATENCY_S / 3.0

# --------------------------------------------------------------------------
# Waveguides and losses (Section 3, Figure 3b, Figure 4)
# --------------------------------------------------------------------------

#: Waveguide (and MZI) pitch on a tile, meters (3 um).
WAVEGUIDE_PITCH_M = 3e-6

#: Number of bus waveguides one tile can support ("over 10,000").
WAVEGUIDES_PER_TILE = 10_000

#: Mean loss of one reticle-stitch / waveguide crossing, dB (Figure 3b).
CROSSING_LOSS_DB = 0.25

#: Spread (standard deviation) of the stitch-loss distribution, dB. The
#: histogram in Figure 3b spans roughly 0.0-0.8 dB around the 0.25 dB mean.
CROSSING_LOSS_SIGMA_DB = 0.08

#: Propagation loss of an on-wafer waveguide, dB per meter. Wafer-scale
#: photonic interconnects require low-loss guides (~0.1 dB/cm) so that a
#: full wafer traversal (~0.5 m of guide, 10 reticle crossings) still
#: closes the link budget — the routing-feasibility point of Section 3.
WAVEGUIDE_LOSS_DB_PER_M = 10.0

#: Propagation loss of an off-wafer optical fiber, dB per meter.
FIBER_LOSS_DB_PER_M = 0.0002

#: Insertion loss of one MZI switch element, dB.
MZI_INSERTION_LOSS_DB = 0.5

#: Loss of the fiber attach (coupler) at a wafer edge, dB.
FIBER_COUPLER_LOSS_DB = 1.0

# --------------------------------------------------------------------------
# Transceiver electro-optics (Section 3, "Modulators and Photodetectors")
# --------------------------------------------------------------------------

#: Laser output power per wavelength, dBm.
LASER_POWER_DBM = 10.0

#: Micro-ring modulator insertion loss, dB.
MRR_INSERTION_LOSS_DB = 3.0

#: Micro-ring modulator extinction ratio, dB.
MRR_EXTINCTION_RATIO_DB = 6.0

#: Photodetector responsivity, amperes per watt.
PD_RESPONSIVITY_A_PER_W = 1.0

#: Receiver sensitivity for the target BER at the 224 Gbps line rate, dBm.
RX_SENSITIVITY_DBM = -11.0

#: Target bit error rate before forward error correction.
TARGET_BER = 1e-12

# --------------------------------------------------------------------------
# Electrical side (SerDes)
# --------------------------------------------------------------------------

#: SerDes lanes available on one stacked accelerator chip. This bounds how
#: many simultaneous wavelength connections a tile can terminate (Section 3:
#: "the number of connections ... is limited by the number of SerDes ports").
SERDES_LANES_PER_CHIP = 16

#: Line rate of one SerDes lane, bits per second (matched to one wavelength).
SERDES_LANE_RATE_BPS = WAVELENGTH_RATE_BPS

# --------------------------------------------------------------------------
# Fibers between wafers (Section 3, "Fiber connectivity")
# --------------------------------------------------------------------------

#: Fibers attached per edge tile for wafer-to-wafer connectivity ("10s of
#: fibers across servers", Section 4.2).
FIBERS_PER_EDGE_TILE = 16

# --------------------------------------------------------------------------
# Collective cost model defaults (Section 4.1)
# --------------------------------------------------------------------------

#: Default per-message software overhead alpha, seconds. The paper notes
#: beta is "several magnitudes of order higher than alpha" for large
#: buffers; 1 us is representative of an on-board transport.
DEFAULT_ALPHA_S = 1e-6

#: Total egress bandwidth of one accelerator chip, bytes per second. TPUv4
#: ICI is ~300 GB/s class per the paper's NVLink comparison; we expose all
#: 16 wavelengths: 16 x 28 GB/s = 448 GB/s.
CHIP_EGRESS_BYTES = LASERS_PER_TILE * WAVELENGTH_RATE_BYTES

# --------------------------------------------------------------------------
# TPUv4 substrate (Section 4, Figure 5a)
# --------------------------------------------------------------------------

#: Chips per TPUv4 cube/rack (4x4x4 torus).
RACK_SHAPE = (4, 4, 4)

#: Multi-accelerator servers per rack.
SERVERS_PER_RACK = 16

#: TPU chips per server board.
CHIPS_PER_SERVER = 4

#: Racks in the full TPUv4 cluster (4096 chips total).
RACKS_PER_CLUSTER = 64
