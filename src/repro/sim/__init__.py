"""Discrete-event fluid-flow simulator and workload generators.

Cross-checks the paper's closed-form alpha-beta-r costs by executing
collective schedules over capacity-limited links with max-min fair
sharing, so congestion manifests as measured slowdown.
"""

from .engine import Event, EventEngine, SimulationError
from .flows import Flow, max_min_rates
from .network import FlowNetwork, FlowRecord
from .runner import ScheduleResult, run_concurrent_schedules, run_schedule
from .telemetry import InstrumentedNetwork, LinkSample, LinkTelemetry
from .traffic import MoeGatingWorkload, MultiTenantWorkload, TrainingStepWorkload

__all__ = [
    "Event",
    "EventEngine",
    "SimulationError",
    "Flow",
    "max_min_rates",
    "FlowNetwork",
    "FlowRecord",
    "ScheduleResult",
    "InstrumentedNetwork",
    "LinkSample",
    "LinkTelemetry",
    "run_concurrent_schedules",
    "run_schedule",
    "MoeGatingWorkload",
    "MultiTenantWorkload",
    "TrainingStepWorkload",
]
