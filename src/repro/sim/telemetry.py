"""Link-utilization telemetry for fluid-flow simulations.

Production fabrics justify reconfiguration decisions with measured link
utilization; the benches and examples similarly want per-link timelines
("which links sat idle while the slice waited" is exactly Figure 5b's
story, told quantitatively). A :class:`LinkTelemetry` wraps a
:class:`~repro.sim.network.FlowNetwork`'s rate recomputation points and
integrates per-link carried bytes into utilization statistics.

One telemetry instance can observe several networks in sequence (the
schedule runner builds a fresh network per phase): pass it to each
:class:`InstrumentedNetwork` and the sample timelines accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..kernels import active_kernel
from ..obs.tracer import Tracer
from .engine import EventEngine
from .network import FlowNetwork

__all__ = ["LinkSample", "LinkTelemetry", "InstrumentedNetwork"]

#: Relative slack under which summed carried bytes count as "nothing".
#: Carried bytes are an integral of float rate x float interval; comparing
#: the sum against exact 0.0 would misclassify links that accumulated a
#: few ulps of drift, so idleness is judged against the busiest link.
IDLE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LinkSample:
    """One constant-rate interval on one link.

    Attributes:
        start_s: interval start.
        end_s: interval end.
        rate_bytes_per_s: aggregate rate carried during the interval.
    """

    start_s: float
    end_s: float
    rate_bytes_per_s: float

    @property
    def carried_bytes(self) -> float:
        """Bytes moved during the interval."""
        return (self.end_s - self.start_s) * self.rate_bytes_per_s


@dataclass
class LinkTelemetry:
    """Accumulates per-link carried bytes over a simulation.

    Attributes:
        capacities: link capacities used for utilization ratios. This is
            also the telemetry's link universe: recording a link absent
            from it is an error (see :meth:`record`).
    """

    capacities: dict[Hashable, float]
    _samples: dict[Hashable, list[LinkSample]] = field(
        default_factory=dict, repr=False
    )
    # Running per-link carried-bytes totals, maintained by record() so the
    # aggregate queries (carried_bytes / busiest_links / idle_links /
    # mean_utilization) cost O(1) per link instead of re-summing every
    # sample. The accumulation replays sum()'s exact float sequence —
    # including its int-0 start for never-used links — so results are
    # bit-identical to summing the timeline.
    _carried: dict[Hashable, float] = field(default_factory=dict, repr=False)

    def record(
        self,
        start_s: float,
        end_s: float,
        link_rates: dict[Hashable, float],
    ) -> None:
        """Record one constant-rate interval.

        Links must be known (present in ``capacities``): a silently
        dropped sample would later surface as a confusing ``KeyError``
        from :meth:`utilization` — or worse, as a link wrongly reported
        idle. Register the link (add it to ``capacities``) before
        recording traffic on it.

        Raises:
            ValueError: on a negative-length interval.
            KeyError: for a link without a registered capacity.
        """
        if end_s < start_s:
            raise ValueError("interval end precedes start")
        if end_s == start_s:
            return
        unknown = [link for link in link_rates if link not in self.capacities]
        if unknown:
            raise KeyError(
                f"cannot record links {unknown!r}: no registered capacity "
                "(add them to capacities first)"
            )
        for link, rate in link_rates.items():
            if rate <= 0:
                continue
            sample = LinkSample(
                start_s=start_s, end_s=end_s, rate_bytes_per_s=rate
            )
            self._samples.setdefault(link, []).append(sample)
            self._carried[link] = self._carried.get(link, 0) + sample.carried_bytes

    def samples(self, link: Hashable) -> tuple[LinkSample, ...]:
        """The recorded constant-rate timeline of ``link``."""
        return tuple(self._samples.get(link, ()))

    def carried_bytes(self, link: Hashable) -> float:
        """Total bytes carried on ``link``."""
        return self._carried.get(link, 0)

    def peak_rate(self, link: Hashable) -> float:
        """Highest aggregate rate observed on ``link`` (0.0 if never used)."""
        return max(
            (s.rate_bytes_per_s for s in self._samples.get(link, ())),
            default=0.0,
        )

    def utilization(self, link: Hashable, horizon_s: float) -> float:
        """Mean utilization of ``link`` over ``[0, horizon_s]``.

        Raises:
            KeyError: for a link without a known capacity.
            ValueError: on a non-positive horizon.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        capacity = self.capacities[link]
        return self.carried_bytes(link) / (capacity * horizon_s)

    def peak_utilization(self, link: Hashable) -> float:
        """Highest instantaneous utilization observed on ``link``.

        Raises:
            KeyError: for a link without a known capacity.
        """
        return self.peak_rate(link) / self.capacities[link]

    def busiest_links(self, top: int = 5) -> list[tuple[Hashable, float]]:
        """The ``top`` links by carried bytes, descending."""
        totals = [
            (link, self.carried_bytes(link)) for link in self._samples
        ]
        totals.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return totals[:top]

    def idle_links(self, tolerance: float = IDLE_TOLERANCE) -> list[Hashable]:
        """Links with capacity that carried ~nothing — stranded bandwidth.

        A link is idle when its carried bytes are at most ``tolerance``
        times the busiest link's — a relative comparison, because carried
        bytes are summed floats and exact equality with 0.0 would flip on
        integration drift.
        """
        threshold = tolerance * max(
            (self.carried_bytes(link) for link in self.capacities), default=0.0
        )
        return sorted(
            (
                link
                for link in self.capacities
                if self.carried_bytes(link) <= threshold
            ),
            key=str,
        )

    def mean_utilization(self, horizon_s: float) -> float:
        """Capacity-weighted mean utilization across all links."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        total_capacity = sum(self.capacities.values())
        if total_capacity == 0:
            return 0.0
        carried = sum(self.carried_bytes(link) for link in self.capacities)
        return carried / (total_capacity * horizon_s)


class InstrumentedNetwork(FlowNetwork):
    """A :class:`FlowNetwork` that feeds a :class:`LinkTelemetry`.

    Rates are piecewise-constant between flow arrivals/completions; this
    subclass snapshots the per-link aggregate rate at every change point
    and records the elapsed interval into the telemetry. It observes the
    base class without perturbing it, so measured completion times are
    bit-identical to an uninstrumented run.

    Args:
        telemetry: accumulate into an existing telemetry (its capacities
            must cover this network's links) instead of starting fresh —
            how the schedule runner stitches per-phase networks into one
            timeline.
    """

    def __init__(
        self,
        engine: EventEngine,
        capacities: dict[Hashable, float],
        telemetry: LinkTelemetry | None = None,
        tracer: Tracer | None = None,
    ):
        super().__init__(engine, capacities, tracer=tracer)
        self.telemetry = (
            telemetry
            if telemetry is not None
            else LinkTelemetry(capacities=dict(capacities))
        )
        self._interval_start = engine.now_s
        self._current_rates: dict[Hashable, float] = {}

    def _advance_progress(self) -> None:
        now = self.engine.now_s
        if now > self._interval_start and self._current_rates:
            self.telemetry.record(self._interval_start, now, self._current_rates)
        super()._advance_progress()
        self._interval_start = now

    def _reschedule(self) -> None:
        super()._reschedule()
        self._current_rates = self._aggregate_rates(self._active_records())
        self._interval_start = self.engine.now_s

    def _aggregate_rates(self, records) -> dict[Hashable, float]:
        """Per-link aggregate rate across the active flows.

        The vectorized path sums per-flow rates onto the dense link index
        space with ``np.bincount``, reusing the flow→index arrays the rate
        kernel already cached. ``bincount`` accumulates its weights in
        input order, which is exactly the reference dict-accumulation
        order, so every per-link total is bit-identical; only the dict's
        key order differs (index order vs. first-seen), and every
        downstream consumer sorts deterministically.
        """
        if active_kernel() == "vectorized" and self._link_space is not None:
            indices = self._flow_indices
            idx_arrays = []
            flow_rates = []
            lengths = []
            for record in records:
                idx = indices.get(record.flow.flow_id)
                if idx is None:
                    break  # not yet indexed; fall back to the dict loop
                idx_arrays.append(idx)
                flow_rates.append(record.flow.rate_bytes_per_s)
                lengths.append(idx.size)
            else:
                if not idx_arrays:
                    return {}
                space = self._link_space
                flat = np.concatenate(idx_arrays)
                weights = np.repeat(
                    np.asarray(flow_rates, dtype=np.float64), lengths
                )
                sums = np.bincount(
                    flat, weights=weights, minlength=len(space)
                ).tolist()
                touched = np.bincount(flat, minlength=len(space))
                links = space.links
                return {
                    links[i]: sums[i]
                    for i in np.flatnonzero(touched).tolist()
                }
        rates: dict[Hashable, float] = {}
        for record in records:
            for link in record.flow.links:
                rates[link] = rates.get(link, 0.0) + record.flow.rate_bytes_per_s
        return rates

    def _active_records(self):
        return list(self._active.values())
