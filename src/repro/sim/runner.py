"""Execute collective schedules on the fluid-flow simulator.

The closed-form costs of Tables 1 and 2 assume perfect bulk-synchronous
rings; this runner *measures* them instead: each schedule phase becomes a
set of fluid flows over the torus links (or over dedicated optical
circuits), phases run back-to-back, alpha and reconfiguration charges are
inserted as dead time, and the total is returned. When two slices' rings
share a link, the max-min rate model slows both — congestion shows up in
the measurement exactly as the paper argues it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.schedule import CollectiveSchedule
from ..phy.constants import DEFAULT_ALPHA_S, RECONFIG_LATENCY_S
from ..topology.torus import Link
from .engine import EventEngine
from .flows import Flow
from .network import FlowNetwork
from .telemetry import InstrumentedNetwork, LinkTelemetry

__all__ = ["ScheduleResult", "run_schedule", "run_concurrent_schedules"]


@dataclass(frozen=True)
class ScheduleResult:
    """Measured execution of one collective schedule.

    Attributes:
        name: schedule name.
        duration_s: total wall-clock time measured.
        transfer_s: time spent moving bytes.
        alpha_s: dead time charged to per-step software overhead.
        reconfig_s: dead time charged to optical reconfiguration.
        phase_durations_s: per-phase transfer durations.
    """

    name: str
    duration_s: float
    transfer_s: float
    alpha_s: float
    reconfig_s: float
    phase_durations_s: tuple[float, ...]


def _phase_flows(phase, phase_index: int, schedule_index: int) -> list[Flow]:
    flows = []
    for t_index, transfer in enumerate(phase.transfers):
        if transfer.n_bytes <= 0:
            continue
        flows.append(
            Flow(
                flow_id=(schedule_index, phase_index, t_index),
                links=transfer.links,
                remaining_bytes=transfer.n_bytes,
            )
        )
    return flows


def run_schedule(
    schedule: CollectiveSchedule,
    link_capacities: dict[Link, float],
    alpha_s: float = DEFAULT_ALPHA_S,
    reconfig_s: float = RECONFIG_LATENCY_S,
    telemetry: bool = False,
) -> ScheduleResult | tuple[ScheduleResult, LinkTelemetry]:
    """Execute ``schedule`` alone on a network with the given capacities.

    Args:
        telemetry: when True, observe per-link rates and return
            ``(result, LinkTelemetry)``. Observation does not perturb the
            rate model, so the result is identical either way. The
            telemetry timeline covers transfer time only (alpha and
            reconfiguration are charged arithmetically, outside engine
            time), one accumulated timeline across all phases.

    Raises:
        KeyError: if a transfer uses a link missing from ``link_capacities``.
    """
    engine = EventEngine()
    link_telemetry = (
        LinkTelemetry(capacities=dict(link_capacities)) if telemetry else None
    )
    total_alpha = 0.0
    total_reconfig = 0.0
    phase_durations: list[float] = []
    for phase_index, phase in enumerate(schedule.phases):
        total_reconfig += phase.reconfigurations * reconfig_s
        if phase.transfers:
            total_alpha += alpha_s
        flows = _phase_flows(phase, phase_index, 0)
        if not flows:
            phase_durations.append(0.0)
            continue
        if link_telemetry is not None:
            network = InstrumentedNetwork(
                engine, link_capacities, telemetry=link_telemetry
            )
        else:
            network = FlowNetwork(engine, link_capacities)
        start = engine.now_s
        for flow in flows:
            network.inject(flow)
        network.run_until_idle()
        phase_durations.append(engine.now_s - start)
    transfer_time = sum(phase_durations)
    result = ScheduleResult(
        name=schedule.name,
        duration_s=transfer_time + total_alpha + total_reconfig,
        transfer_s=transfer_time,
        alpha_s=total_alpha,
        reconfig_s=total_reconfig,
        phase_durations_s=tuple(phase_durations),
    )
    if link_telemetry is not None:
        return result, link_telemetry
    return result


def run_concurrent_schedules(
    schedules: list[CollectiveSchedule],
    link_capacities: dict[Link, float],
    alpha_s: float = DEFAULT_ALPHA_S,
    reconfig_s: float = RECONFIG_LATENCY_S,
    telemetry: bool = False,
) -> list[ScheduleResult] | tuple[list[ScheduleResult], LinkTelemetry]:
    """Execute several schedules sharing one network, phase-by-phase.

    Each schedule advances to its next phase as soon as its previous phase
    completes; phases of *different* schedules overlap freely on the
    shared links (multi-tenant execution, the Figure 5b situation). Alpha
    and reconfiguration are charged as per-schedule dead time between
    phases.

    Args:
        telemetry: when True, observe per-link rates and return
            ``(results, LinkTelemetry)``. Unlike :func:`run_schedule`,
            alpha and reconfiguration here are engine-time delays, so the
            telemetry horizon (the last schedule's finish time) includes
            them — idle time during reconfiguration is correctly counted
            as stranded bandwidth.
    """
    engine = EventEngine()
    if telemetry:
        network = InstrumentedNetwork(engine, link_capacities)
    else:
        network = FlowNetwork(engine, link_capacities)
    states = []
    results: dict[int, ScheduleResult] = {}

    class _State:
        def __init__(self, index: int, schedule: CollectiveSchedule):
            self.index = index
            self.schedule = schedule
            self.phase_index = -1
            self.alpha_total = 0.0
            self.reconfig_total = 0.0
            self.phase_durations: list[float] = []
            self.phase_start = 0.0
            self.outstanding = 0
            self.started_at = engine.now_s

        def start_next_phase(self) -> None:
            self.phase_index += 1
            if self.phase_index >= len(self.schedule.phases):
                transfer = sum(self.phase_durations)
                results[self.index] = ScheduleResult(
                    name=self.schedule.name,
                    duration_s=engine.now_s - self.started_at,
                    transfer_s=transfer,
                    alpha_s=self.alpha_total,
                    reconfig_s=self.reconfig_total,
                    phase_durations_s=tuple(self.phase_durations),
                )
                return
            phase = self.schedule.phases[self.phase_index]
            delay = phase.reconfigurations * reconfig_s
            self.reconfig_total += phase.reconfigurations * reconfig_s
            if phase.transfers:
                delay += alpha_s
                self.alpha_total += alpha_s
            engine.schedule_after(delay, self._inject_phase)

        def _inject_phase(self) -> None:
            phase = self.schedule.phases[self.phase_index]
            flows = _phase_flows(phase, self.phase_index, self.index)
            self.phase_start = engine.now_s
            if not flows:
                self.phase_durations.append(0.0)
                self.start_next_phase()
                return
            self.outstanding = len(flows)
            for flow in flows:
                network.inject(flow, on_complete=self._flow_done)

        def _flow_done(self, _record) -> None:
            self.outstanding -= 1
            if self.outstanding == 0:
                self.phase_durations.append(engine.now_s - self.phase_start)
                self.start_next_phase()

    for index, schedule in enumerate(schedules):
        state = _State(index, schedule)
        states.append(state)
        state.start_next_phase()
    guard = 0
    while len(results) < len(schedules):
        if not engine.step():
            raise RuntimeError("simulation stalled before schedules finished")
        guard += 1
        if guard > 5_000_000:
            raise RuntimeError("simulation did not converge")
    ordered = [results[i] for i in range(len(schedules))]
    if telemetry:
        return ordered, network.telemetry
    return ordered
