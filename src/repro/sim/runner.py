"""Execute collective schedules on the fluid-flow simulator.

The closed-form costs of Tables 1 and 2 assume perfect bulk-synchronous
rings; this runner *measures* them instead: each schedule phase becomes a
set of fluid flows over the torus links (or over dedicated optical
circuits), phases run back-to-back, alpha and reconfiguration charges are
inserted as dead time, and the total is returned. When two slices' rings
share a link, the max-min rate model slows both — congestion shows up in
the measurement exactly as the paper argues it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.schedule import CollectiveSchedule
from ..obs.tracer import NULL_TRACER, Tracer
from ..phy.constants import DEFAULT_ALPHA_S, RECONFIG_LATENCY_S
from ..topology.torus import Link
from .engine import EventEngine
from .flows import Flow
from .network import FlowNetwork
from .telemetry import InstrumentedNetwork, LinkTelemetry

__all__ = ["ScheduleResult", "run_schedule", "run_concurrent_schedules"]


@dataclass(frozen=True)
class ScheduleResult:
    """Measured execution of one collective schedule.

    Attributes:
        name: schedule name.
        duration_s: total wall-clock time measured.
        transfer_s: time spent moving bytes.
        alpha_s: dead time charged to per-step software overhead.
        reconfig_s: dead time charged to optical reconfiguration.
        phase_durations_s: per-phase transfer durations.
    """

    name: str
    duration_s: float
    transfer_s: float
    alpha_s: float
    reconfig_s: float
    phase_durations_s: tuple[float, ...]


def _phase_flows(phase, phase_index: int, schedule_index: int) -> list[Flow]:
    flows = []
    for t_index, transfer in enumerate(phase.transfers):
        if transfer.n_bytes <= 0:
            continue
        flows.append(
            Flow(
                flow_id=(schedule_index, phase_index, t_index),
                links=transfer.links,
                remaining_bytes=transfer.n_bytes,
            )
        )
    return flows


def run_schedule(
    schedule: CollectiveSchedule,
    link_capacities: dict[Link, float],
    alpha_s: float = DEFAULT_ALPHA_S,
    reconfig_s: float = RECONFIG_LATENCY_S,
    telemetry: bool = False,
    tracer: Tracer | None = None,
) -> ScheduleResult | tuple[ScheduleResult, LinkTelemetry]:
    """Execute ``schedule`` alone on a network with the given capacities.

    Args:
        telemetry: when True, observe per-link rates and return
            ``(result, LinkTelemetry)``. Observation does not perturb the
            rate model, so the result is identical either way. The
            telemetry timeline covers transfer time only (alpha and
            reconfiguration are charged arithmetically, outside engine
            time), one accumulated timeline across all phases.
        tracer: emit flow spans, rebalance instants and phase spans into
            this tracer. Like telemetry, tracing is observation-only —
            the returned result is identical with it on or off. Phase
            spans land on thread track 1; alpha/reconfiguration charges
            are arithmetic here (not engine time), so they appear in the
            phase span's args rather than as spans of their own.

    Raises:
        KeyError: if a transfer uses a link missing from ``link_capacities``.
    """
    engine = EventEngine()
    tr = tracer if tracer is not None else NULL_TRACER
    if tr.enabled:
        tr.thread_name(0, "network")
        tr.thread_name(1, schedule.name)
    link_telemetry = (
        LinkTelemetry(capacities=dict(link_capacities)) if telemetry else None
    )
    total_alpha = 0.0
    total_reconfig = 0.0
    phase_durations: list[float] = []
    for phase_index, phase in enumerate(schedule.phases):
        total_reconfig += phase.reconfigurations * reconfig_s
        if phase.transfers:
            total_alpha += alpha_s
        flows = _phase_flows(phase, phase_index, 0)
        if not flows:
            phase_durations.append(0.0)
            continue
        if link_telemetry is not None:
            network = InstrumentedNetwork(
                engine, link_capacities, telemetry=link_telemetry, tracer=tr
            )
        else:
            network = FlowNetwork(engine, link_capacities, tracer=tr)
        start = engine.now_s
        for flow in flows:
            network.inject(flow)
        network.run_until_idle()
        phase_durations.append(engine.now_s - start)
        if tr.enabled:
            tr.complete(
                phase.label or f"phase {phase_index}",
                cat="phase",
                start_s=start,
                end_s=engine.now_s,
                tid=1,
                args={
                    "transfers": len(flows),
                    "reconfigurations": phase.reconfigurations,
                    "alpha_s_charged": alpha_s,
                    "reconfig_s_charged": phase.reconfigurations * reconfig_s,
                },
            )
    transfer_time = sum(phase_durations)
    result = ScheduleResult(
        name=schedule.name,
        duration_s=transfer_time + total_alpha + total_reconfig,
        transfer_s=transfer_time,
        alpha_s=total_alpha,
        reconfig_s=total_reconfig,
        phase_durations_s=tuple(phase_durations),
    )
    if link_telemetry is not None:
        return result, link_telemetry
    return result


def run_concurrent_schedules(
    schedules: list[CollectiveSchedule],
    link_capacities: dict[Link, float],
    alpha_s: float = DEFAULT_ALPHA_S,
    reconfig_s: float = RECONFIG_LATENCY_S,
    telemetry: bool = False,
    tracer: Tracer | None = None,
) -> list[ScheduleResult] | tuple[list[ScheduleResult], LinkTelemetry]:
    """Execute several schedules sharing one network, phase-by-phase.

    Each schedule advances to its next phase as soon as its previous phase
    completes; phases of *different* schedules overlap freely on the
    shared links (multi-tenant execution, the Figure 5b situation). Alpha
    and reconfiguration are charged as per-schedule dead time between
    phases.

    Args:
        telemetry: when True, observe per-link rates and return
            ``(results, LinkTelemetry)``. Unlike :func:`run_schedule`,
            alpha and reconfiguration here are engine-time delays, so the
            telemetry horizon (the last schedule's finish time) includes
            them — idle time during reconfiguration is correctly counted
            as stranded bandwidth.
        tracer: emit the run's timeline into this tracer: per-schedule
            thread tracks (tid = index + 1, named after the schedule)
            carrying reconfiguration windows, alpha windows, phase spans
            and a whole-schedule span; flow spans and rebalance instants
            land on track 0 (the shared network); a final ``run-complete``
            instant reports the engine's processed-event count. Tracing
            is observation-only — results are identical with it on or
            off, which the test suite asserts structurally.
    """
    engine = EventEngine()
    tr = tracer if tracer is not None else NULL_TRACER
    if telemetry:
        network = InstrumentedNetwork(engine, link_capacities, tracer=tr)
    else:
        network = FlowNetwork(engine, link_capacities, tracer=tr)
    states = []
    results: dict[int, ScheduleResult] = {}
    if tr.enabled:
        tr.thread_name(0, "network")

    class _State:
        def __init__(self, index: int, schedule: CollectiveSchedule):
            self.index = index
            self.schedule = schedule
            self.tid = index + 1
            self.phase_index = -1
            self.alpha_total = 0.0
            self.reconfig_total = 0.0
            self.phase_durations: list[float] = []
            self.phase_start = 0.0
            self.phase_flow_count = 0
            self.outstanding = 0
            self.started_at = engine.now_s
            if tr.enabled:
                tr.thread_name(self.tid, schedule.name)

        def start_next_phase(self) -> None:
            self.phase_index += 1
            if self.phase_index >= len(self.schedule.phases):
                transfer = sum(self.phase_durations)
                results[self.index] = ScheduleResult(
                    name=self.schedule.name,
                    duration_s=engine.now_s - self.started_at,
                    transfer_s=transfer,
                    alpha_s=self.alpha_total,
                    reconfig_s=self.reconfig_total,
                    phase_durations_s=tuple(self.phase_durations),
                )
                if tr.enabled:
                    tr.complete(
                        self.schedule.name,
                        cat="schedule",
                        start_s=self.started_at,
                        end_s=engine.now_s,
                        tid=self.tid,
                        args={
                            "transfer_s": transfer,
                            "alpha_s": self.alpha_total,
                            "reconfig_s": self.reconfig_total,
                            "phases": len(self.phase_durations),
                        },
                    )
                return
            phase = self.schedule.phases[self.phase_index]
            reconfig_window = phase.reconfigurations * reconfig_s
            delay = reconfig_window
            self.reconfig_total += reconfig_window
            if phase.transfers:
                delay += alpha_s
                self.alpha_total += alpha_s
            if tr.enabled:
                now = engine.now_s
                if reconfig_window > 0:
                    tr.complete(
                        "reconfigure",
                        cat="reconfig",
                        start_s=now,
                        end_s=now + reconfig_window,
                        tid=self.tid,
                        args={
                            "count": phase.reconfigurations,
                            "per_switch_s": reconfig_s,
                        },
                    )
                if phase.transfers:
                    tr.complete(
                        "alpha",
                        cat="alpha",
                        start_s=now + reconfig_window,
                        end_s=now + delay,
                        tid=self.tid,
                    )
            engine.schedule_after(delay, self._inject_phase)

        def _inject_phase(self) -> None:
            phase = self.schedule.phases[self.phase_index]
            flows = _phase_flows(phase, self.phase_index, self.index)
            self.phase_start = engine.now_s
            if not flows:
                self.phase_durations.append(0.0)
                self.start_next_phase()
                return
            self.outstanding = len(flows)
            self.phase_flow_count = len(flows)
            for flow in flows:
                network.inject(flow, on_complete=self._flow_done)

        def _flow_done(self, _record) -> None:
            self.outstanding -= 1
            if self.outstanding == 0:
                self.phase_durations.append(engine.now_s - self.phase_start)
                if tr.enabled:
                    phase = self.schedule.phases[self.phase_index]
                    tr.complete(
                        phase.label or f"phase {self.phase_index}",
                        cat="phase",
                        start_s=self.phase_start,
                        end_s=engine.now_s,
                        tid=self.tid,
                        args={"transfers": self.phase_flow_count},
                    )
                self.start_next_phase()

    for index, schedule in enumerate(schedules):
        state = _State(index, schedule)
        states.append(state)
        state.start_next_phase()
    guard = 0
    while len(results) < len(schedules):
        if not engine.step():
            raise RuntimeError("simulation stalled before schedules finished")
        guard += 1
        if guard > 5_000_000:
            raise RuntimeError("simulation did not converge")
    ordered = [results[i] for i in range(len(schedules))]
    if tr.enabled:
        tr.instant(
            "run-complete",
            cat="engine",
            ts_s=engine.now_s,
            args={
                "events_processed": engine.processed,
                "schedules": len(schedules),
            },
        )
    if telemetry:
        return ordered, network.telemetry
    return ordered
