"""A minimal discrete-event simulation engine.

The benches cross-check the paper's closed-form alpha-beta-r costs against
an *executed* model: flows progressing over capacity-limited links, with
congestion emerging from link sharing rather than being asserted. This
engine provides the core primitives: a monotonic clock, a priority event
queue, and cancellable scheduled callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on clock violations or a runaway simulation."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time_s: absolute simulation time the event fires at.
        sequence: tie-breaker preserving scheduling order at equal times.
        action: the callback (ignored by the ordering).
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time_s: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class EventEngine:
    """A time-ordered event loop.

    Attributes:
        now_s: current simulation time, seconds.
    """

    def __init__(self, max_events: int = 10_000_000):
        self.now_s = 0.0
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._max_events = max_events
        self._processed = 0

    def schedule_at(self, time_s: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute time ``time_s``.

        Raises:
            SimulationError: if the time is in the past.
        """
        if time_s < self.now_s:
            raise SimulationError(
                f"cannot schedule at {time_s} before now ({self.now_s})"
            )
        event = Event(time_s=time_s, sequence=next(self._sequence), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay_s: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay_s`` seconds from now.

        Raises:
            SimulationError: on a negative delay.
        """
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        return self.schedule_at(self.now_s + delay_s, action)

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def next_event_time(self) -> float | None:
        """Fire time of the next live event, or None when none remain.

        Cancelled events at the head of the queue are discarded as a side
        effect, so a ``None`` answer means :meth:`step` would return False.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time_s if self._queue else None

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty.

        The runaway bound is checked *before* the event is popped, so
        hitting it never consumes (and silently drops) the offending
        event — the queue is left intact for inspection.

        Raises:
            SimulationError: when running the next event would exceed
                the engine's ``max_events`` bound.
        """
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            if self._processed >= self._max_events:
                raise SimulationError(
                    f"exceeded {self._max_events} events; runaway simulation?"
                )
            event = heapq.heappop(self._queue)
            self.now_s = event.time_s
            self._processed += 1
            event.action()
            return True
        return False

    def run(self, until_s: float | None = None) -> float:
        """Run events (optionally only those at or before ``until_s``).

        Returns:
            The simulation time after the run.
        """
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until_s is not None and next_event.time_s > until_s:
                self.now_s = until_s
                return self.now_s
            self.step()
        if until_s is not None:
            self.now_s = max(self.now_s, until_s)
        return self.now_s
