"""Fluid network simulation: flows over capacity-limited links.

Combines the event engine and the max-min rate model into a fluid-flow
simulator: flows are injected with a byte count and a link set, rates are
recomputed whenever the flow population changes, and completions fire in
event order. This is the execution substrate for running collective
schedules (``repro.sim.runner``) and failure-recovery traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from ..kernels import STATS, active_kernel
from ..kernels.incidence import FlowIncidence, LinkSpace
from ..kernels.waterfill import waterfill_rates
from ..obs.tracer import NULL_TRACER, Tracer
from .engine import EventEngine, SimulationError
from .flows import Flow, max_min_rates

__all__ = ["FlowNetwork", "FlowRecord"]


@dataclass
class FlowRecord:
    """Lifecycle record of one flow.

    Attributes:
        flow: the underlying flow object.
        start_s: injection time.
        finish_s: completion time (None while active).
        on_complete: callback fired (once) at completion time.
    """

    flow: Flow
    start_s: float
    finish_s: float | None = None
    on_complete: Callable[["FlowRecord"], None] | None = field(
        default=None, repr=False
    )

    @property
    def duration_s(self) -> float:
        """Completion time minus start (raises while active)."""
        if self.finish_s is None:
            raise SimulationError(f"flow {self.flow.flow_id!r} still active")
        return self.finish_s - self.start_s


class FlowNetwork:
    """Fluid flows over a static set of links.

    Attributes:
        engine: the event engine driving the simulation.
        capacities: link capacities, bytes per second.
        tracer: where flow spans and rebalance instants are emitted;
            defaults to the no-op :data:`~repro.obs.tracer.NULL_TRACER`,
            and every emission site is guarded by ``tracer.enabled`` so
            untraced runs pay nothing. Tracing observes the rate model
            without perturbing it — results are identical either way.
    """

    def __init__(
        self,
        engine: EventEngine,
        capacities: dict[Hashable, float],
        tracer: Tracer | None = None,
    ):
        self.engine = engine
        self.capacities = dict(capacities)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._active: dict[Hashable, FlowRecord] = {}
        self._records: list[FlowRecord] = []
        self._completion_events: dict[Hashable, object] = {}
        self._last_update_s = engine.now_s
        # Vectorized-kernel state: the link index space and the per-flow
        # link-index arrays, built lazily and only on the vectorized
        # path. A flow's links are converted to indices once at first
        # sight instead of hashing every link on every rebalance.
        self._link_space: LinkSpace | None = None
        self._flow_indices: dict[Hashable, np.ndarray] = {}

    # -- flow lifecycle -----------------------------------------------------------

    def inject(
        self,
        flow: Flow,
        on_complete: Callable[[FlowRecord], None] | None = None,
    ) -> FlowRecord:
        """Add ``flow`` to the network at the current time.

        Args:
            on_complete: called once, at the flow's completion time.

        Raises:
            SimulationError: on duplicate flow ids.
        """
        if flow.flow_id in self._active:
            raise SimulationError(f"flow id {flow.flow_id!r} already active")
        self._advance_progress()
        record = FlowRecord(
            flow=flow, start_s=self.engine.now_s, on_complete=on_complete
        )
        self._active[flow.flow_id] = record
        self._records.append(record)
        self._reschedule()
        return record

    def active_flow_count(self) -> int:
        """Flows currently in the network."""
        return len(self._active)

    @property
    def records(self) -> list[FlowRecord]:
        """All flow records, injection-ordered (copy)."""
        return list(self._records)

    # -- internals ------------------------------------------------------------------

    def _advance_progress(self) -> None:
        """Debit bytes transferred since the last rate change.

        On the vectorized path the debits are computed as one array
        expression; each element performs the reference's exact float
        sequence (``rate * elapsed``, ``remaining - sent``,
        ``max(0.0, ...)``), so the results are bit-identical.
        """
        elapsed = self.engine.now_s - self._last_update_s
        if elapsed > 0:
            if len(self._active) > 1 and active_kernel() == "vectorized":
                records = list(self._active.values())
                count = len(records)
                remaining = np.fromiter(
                    (r.flow.remaining_bytes for r in records),
                    dtype=np.float64,
                    count=count,
                )
                rates = np.fromiter(
                    (r.flow.rate_bytes_per_s for r in records),
                    dtype=np.float64,
                    count=count,
                )
                debited = np.maximum(0.0, remaining - rates * elapsed).tolist()
                for record, left in zip(records, debited):
                    record.flow.remaining_bytes = left
            else:
                for record in self._active.values():
                    sent = record.flow.rate_bytes_per_s * elapsed
                    record.flow.remaining_bytes = max(
                        0.0, record.flow.remaining_bytes - sent
                    )
        self._last_update_s = self.engine.now_s

    def _link_space_current(self) -> LinkSpace:
        """The capacity index space, rebuilt when the universe changes.

        Capacity *values* are re-read (and re-validated, matching the
        reference's per-call check) on every rate computation; only the
        link→index mapping is cached, invalidated when the set of links
        grows or shrinks.
        """
        space = self._link_space
        if space is None or len(space) != len(self.capacities):
            self._link_space = space = LinkSpace(self.capacities)
            self._flow_indices.clear()
        return space

    def _compute_rates(self, flows: list[Flow]) -> None:
        """Recompute ``flows``' rates via the active kernel backend.

        The vectorized path reuses cached per-flow link-index arrays and
        skips re-validating links it has already seen (a flow's link set
        is fixed after injection); validation messages and ordering for
        *new* flows match :func:`~repro.sim.flows.max_min_rates`.
        """
        if active_kernel() != "vectorized":
            max_min_rates(flows, self.capacities)
            return
        with STATS.timed("waterfill"):
            space = self._link_space_current()
            caps = np.fromiter(
                self.capacities.values(), dtype=np.float64, count=len(space)
            )
            if not (caps > 0.0).all():
                for link, cap in self.capacities.items():
                    if cap <= 0:
                        raise ValueError(
                            f"link {link!r} has non-positive capacity {cap}"
                        )
            indices = self._flow_indices
            flow_links = []
            demand_list = []
            for flow in flows:
                idx = indices.get(flow.flow_id)
                if idx is None:
                    try:
                        idx = space.indices(flow.links)
                    except KeyError as exc:
                        raise KeyError(
                            f"flow {flow.flow_id!r} uses unknown link "
                            f"{exc.args[0]!r}"
                        ) from None
                    indices[flow.flow_id] = idx
                flow_links.append(idx)
                demand = flow.demand_bytes_per_s
                if demand is not None and demand <= 0:
                    raise ValueError(
                        f"flow {flow.flow_id!r} has a non-positive demand cap "
                        f"({demand}) and can never make progress; the link "
                        "capacities are not at fault"
                    )
                demand_list.append(np.nan if demand is None else demand)
            demands = np.asarray(demand_list, dtype=np.float64)
            rates = waterfill_rates(
                caps, FlowIncidence(flow_links), demands
            ).tolist()
            for flow, rate in zip(flows, rates):
                flow.rate_bytes_per_s = rate

    def _reschedule(self) -> None:
        """Recompute rates and (re)schedule every completion event."""
        for event in self._completion_events.values():
            event.cancel()
        self._completion_events.clear()
        flows = [r.flow for r in self._active.values()]
        if not flows:
            return
        self._compute_rates(flows)
        if self.tracer.enabled:
            self.tracer.instant(
                "rebalance",
                cat="network",
                ts_s=self.engine.now_s,
                args={"active_flows": len(flows)},
            )
        for record in list(self._active.values()):
            flow = record.flow
            if flow.remaining_bytes <= 0:
                self._complete(flow.flow_id)
                continue
            if flow.rate_bytes_per_s <= 0:
                cause = (
                    f"its demand cap is {flow.demand_bytes_per_s}"
                    if flow.demand_bytes_per_s is not None
                    else "check link capacities"
                )
                raise SimulationError(
                    f"flow {flow.flow_id!r} starved (zero rate); {cause}"
                )
            eta = flow.remaining_bytes / flow.rate_bytes_per_s
            flow_id = flow.flow_id
            self._completion_events[flow_id] = self.engine.schedule_after(
                eta, lambda fid=flow_id: self._on_complete(fid)
            )

    def _on_complete(self, flow_id: Hashable) -> None:
        self._advance_progress()
        # Guard against float drift: the flow may have a sliver left.
        record = self._active.get(flow_id)
        if record is not None:
            record.flow.remaining_bytes = 0.0
            self._complete(flow_id)
        self._reschedule()

    def _complete(self, flow_id: Hashable) -> None:
        record = self._active.pop(flow_id)
        record.finish_s = self.engine.now_s
        if self.tracer.enabled:
            self.tracer.complete(
                f"flow {flow_id}",
                cat="flow",
                start_s=record.start_s,
                end_s=record.finish_s,
                args={"links": len(record.flow.links)},
            )
        event = self._completion_events.pop(flow_id, None)
        if event is not None:
            event.cancel()
        if record.on_complete is not None:
            # Defer to a zero-delay event so callbacks (which may inject
            # new flows) never re-enter a rate recomputation in progress.
            callback = record.on_complete
            self.engine.schedule_after(0.0, lambda: callback(record))

    # -- convenience ------------------------------------------------------------------

    def run_until_idle(self) -> float:
        """Run the engine until every flow completes; returns the time.

        Completion callbacks are delivered before returning: ``_complete``
        defers ``on_complete`` to a zero-delay event, so when the last
        flow finishes those events are still queued at the current time.
        They are drained here (and may inject follow-up flows, which are
        then run to completion too) rather than silently dropped.
        """
        while True:
            if self._active:
                if not self.engine.step():
                    raise SimulationError(
                        f"{len(self._active)} flows active but no events pending"
                    )
                continue
            next_time = self.engine.next_event_time()
            if next_time is not None and next_time <= self.engine.now_s:
                self.engine.step()
                continue
            return self.engine.now_s
