"""Max-min fair flow rate allocation.

When several transfers share an electrical link they contend; the standard
model (and the one transport protocols approximate) is max-min fairness
via progressive filling: repeatedly find the most-constrained link, give
each flow crossing it an equal share, freeze those flows, reduce the
remaining capacities, and continue. This is the rate model under which the
discrete-event runner executes collective schedules, letting the paper's
congestion (multiple transfers on one link) manifest as measured slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..kernels import STATS, active_kernel

__all__ = ["Flow", "max_min_rates", "max_min_rates_reference"]


@dataclass
class Flow:
    """A flow traversing a set of links.

    Attributes:
        flow_id: caller-chosen identity.
        links: the links (any hashable ids) the flow crosses.
        remaining_bytes: bytes left to deliver.
        demand_bytes_per_s: optional rate cap (e.g. a NIC limit).
    """

    flow_id: Hashable
    links: tuple[Hashable, ...]
    remaining_bytes: float
    demand_bytes_per_s: float | None = None
    rate_bytes_per_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a flow must cross at least one link")
        if self.remaining_bytes < 0:
            raise ValueError("remaining bytes cannot be negative")
        if self.demand_bytes_per_s is not None and self.demand_bytes_per_s <= 0:
            raise ValueError(
                f"flow {self.flow_id!r} has a non-positive demand cap "
                f"({self.demand_bytes_per_s}); a capped flow must still be "
                "able to make progress (omit the cap instead of zeroing it)"
            )


def max_min_rates(
    flows: list[Flow], capacity_bytes_per_s: dict[Hashable, float]
) -> dict[Hashable, float]:
    """Compute max-min fair rates for ``flows`` over shared links.

    Dispatches to the active kernel backend (see :mod:`repro.kernels`):
    the numpy incidence-matrix rewrite by default, or this module's
    :func:`max_min_rates_reference` under ``REPRO_KERNEL=reference``.
    The two are bit-identical on every input.

    Args:
        flows: active flows; each must only reference links present in
            ``capacity_bytes_per_s``.
        capacity_bytes_per_s: capacity of each link.

    Returns:
        Mapping from ``flow_id`` to allocated rate (bytes per second).
        Flow objects also get their ``rate_bytes_per_s`` updated.

    Raises:
        KeyError: when a flow references an unknown link.
        ValueError: on a non-positive link capacity, or a non-positive
            demand cap (which would starve the flow forever and — if
            negative — credit capacity back to the link, oversubscribing
            it for everyone else).
    """
    with STATS.timed("waterfill"):
        if active_kernel() == "vectorized":
            from ..kernels.waterfill import max_min_rates_vectorized

            return max_min_rates_vectorized(flows, capacity_bytes_per_s)
        return max_min_rates_reference(flows, capacity_bytes_per_s)


def max_min_rates_reference(
    flows: list[Flow], capacity_bytes_per_s: dict[Hashable, float]
) -> dict[Hashable, float]:
    """Pure-python progressive filling — the retained reference backend.

    Same contract as :func:`max_min_rates`; kept loop-for-loop as the
    executable specification the vectorized kernel is proven against.
    """
    for link, cap in capacity_bytes_per_s.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")
    active = list(flows)
    for flow in active:
        for link in flow.links:
            if link not in capacity_bytes_per_s:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {link!r}")
        # Flows are mutable (rates are written back), so a cap zeroed after
        # construction bypasses Flow's own validation. Catch it here with
        # an accurate diagnosis instead of letting progressive filling
        # freeze the flow at a zero rate and blame the link capacities.
        demand = flow.demand_bytes_per_s
        if demand is not None and demand <= 0:
            raise ValueError(
                f"flow {flow.flow_id!r} has a non-positive demand cap "
                f"({demand}) and can never make progress; the link "
                "capacities are not at fault"
            )
    remaining_cap = dict(capacity_bytes_per_s)
    # Insertion-ordered (dict keys, not a set) so the bottleneck tie-break
    # and freeze order are deterministic in flow-input order — the same
    # order the vectorized kernel reproduces bit-for-bit.
    unfrozen: dict[Hashable, None] = {f.flow_id: None for f in active}
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in active}
    by_id = {f.flow_id: f for f in active}

    # Freeze demand-capped flows whose cap is below their fair share as we
    # go; progressive filling terminates in at most len(flows) rounds.
    for _ in range(len(active) + len(remaining_cap) + 1):
        if not unfrozen:
            break
        # Share each link's remaining capacity among its unfrozen flows.
        link_users: dict[Hashable, int] = {}
        for fid in unfrozen:
            for link in by_id[fid].links:
                link_users[link] = link_users.get(link, 0) + 1
        bottleneck_share = None
        bottleneck_link = None
        for link, users in link_users.items():
            share = remaining_cap[link] / users
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_share is None:
            break
        # Demand caps below the bottleneck share freeze first.
        capped = [
            fid
            for fid in unfrozen
            if by_id[fid].demand_bytes_per_s is not None
            and by_id[fid].demand_bytes_per_s < bottleneck_share
        ]
        if capped:
            # Every capped demand is strictly below the bottleneck share,
            # which is itself at most remaining/users on every link the
            # flow crosses — so freezing them cannot oversubscribe any
            # link. The clamp below only absorbs float dust from the
            # subtractions; it must never hide a real deficit (positive
            # caps are enforced above, so it cannot).
            for fid in capped:
                flow = by_id[fid]
                rates[fid] = float(flow.demand_bytes_per_s)
                for link in flow.links:
                    remaining_cap[link] -= rates[fid]
                    remaining_cap[link] = max(remaining_cap[link], 0.0)
                del unfrozen[fid]
            continue
        # Freeze every unfrozen flow crossing the bottleneck at the share.
        frozen_now = [
            fid for fid in unfrozen if bottleneck_link in by_id[fid].links
        ]
        for fid in frozen_now:
            rates[fid] = bottleneck_share
            flow = by_id[fid]
            for link in flow.links:
                remaining_cap[link] -= bottleneck_share
                remaining_cap[link] = max(remaining_cap[link], 0.0)
            del unfrozen[fid]
    for flow in active:
        flow.rate_bytes_per_s = rates[flow.flow_id]
    return rates
