"""Workload traffic generators.

Produces the traffic the paper's motivation names: data-parallel training
steps dominated by ALLREDUCE (Section 2), multi-tenant racks running one
collective per slice (Figure 5b), and Mixture-of-Experts inference whose
"runtime gating function necessitat[es] dynamic programming of circuits"
(Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..collectives.bucket import bucket_all_reduce_schedule
from ..collectives.primitives import Interconnect, build_reduce_scatter_schedule
from ..collectives.schedule import CollectiveSchedule
from ..core.decentralized import CircuitRequest
from ..topology.slices import Slice
from ..topology.torus import Coordinate

__all__ = [
    "TrainingStepWorkload",
    "MultiTenantWorkload",
    "MoeGatingWorkload",
]


@dataclass
class TrainingStepWorkload:
    """One data-parallel training step: an ALLREDUCE over the gradients.

    Attributes:
        slc: the slice the job runs on.
        gradient_bytes: gradient buffer size per step.
        steps: number of training steps to generate.
    """

    slc: Slice
    gradient_bytes: float
    steps: int = 1

    def schedules(self, optical: bool = False) -> list[CollectiveSchedule]:
        """One ALLREDUCE schedule per training step."""
        if self.steps < 1:
            raise ValueError("need at least one step")
        return [
            bucket_all_reduce_schedule(
                self.slc,
                self.gradient_bytes,
                owner=f"{self.slc.name}/step{i}",
                optical=optical,
            )
            for i in range(self.steps)
        ]


@dataclass
class MultiTenantWorkload:
    """Concurrent collectives from every tenant of a rack (Figure 5b).

    Attributes:
        slices: the tenants' slices.
        buffer_bytes: per-tenant collective buffer size.
        interconnect: electrical baseline or steered optics.
    """

    slices: list[Slice]
    buffer_bytes: float
    interconnect: Interconnect = Interconnect.ELECTRICAL

    def schedules(self) -> list[CollectiveSchedule]:
        """One REDUCESCATTER schedule per tenant, to run concurrently."""
        if not self.slices:
            raise ValueError("need at least one tenant")
        return [
            build_reduce_scatter_schedule(
                slc, self.buffer_bytes, self.interconnect
            )
            for slc in self.slices
        ]


@dataclass
class MoeGatingWorkload:
    """Mixture-of-Experts dispatch: tokens routed to experts at runtime.

    Each batch, every chip hosts one expert; the gating function sends each
    chip's tokens to ``fanout`` randomly chosen experts, generating circuit
    requests that are only known at runtime (paper Section 5).

    Attributes:
        chips: participating chips, in tile order on the LIGHTPATH wafer.
        fanout: experts each source dispatches to per batch (top-k gating).
        seed: RNG seed for reproducible gating decisions.
    """

    chips: list[Coordinate]
    fanout: int = 2
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.chips) < 2:
            raise ValueError("MoE needs at least two chips")
        if not 1 <= self.fanout < len(self.chips):
            raise ValueError("fanout must be in [1, chips)")
        self._rng = np.random.default_rng(self.seed)

    def next_batch(self) -> list[CircuitRequest]:
        """Circuit requests for the next gating decision."""
        requests = []
        n = len(self.chips)
        for i, src in enumerate(self.chips):
            others = [j for j in range(n) if j != i]
            picks = self._rng.choice(others, size=self.fanout, replace=False)
            for j in picks:
                requests.append(CircuitRequest(src=src, dst=self.chips[int(j)]))
        return requests

    def batches(self, count: int) -> list[list[CircuitRequest]]:
        """``count`` consecutive gating decisions."""
        if count < 1:
            raise ValueError("need at least one batch")
        return [self.next_batch() for _ in range(count)]
