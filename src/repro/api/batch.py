"""Batch execution: evaluate many scenarios in parallel, cached on disk.

The paper's headline numbers come from sweeping scenario variants —
slice shapes, buffer sizes, failure placements — and a sweep is
embarrassingly parallel: every :class:`~repro.api.spec.ScenarioSpec` is
frozen, picklable and independent. :func:`run_many` deduplicates the
specs, fans the unique ones across a ``ProcessPoolExecutor`` (each
worker holds one long-lived :class:`~repro.api.session.FabricSession`
so topology artifacts amortize across its chunk), and merges everything
back into an ordered :class:`SweepResult` with per-spec timing.

Workers and serial runs alike can sit on a persistent
:class:`~repro.api.cache.DiskResultCache`, so a repeated sweep — or a CI
re-run on unchanged code — hits disk instead of recomputing. Atomic
entry writes make a shared cache directory safe under concurrency.

:class:`SweepPlan` is the declarative grid the CLI exposes: fabrics ×
slice shapes × buffer sizes, expanded in a deterministic order.

Usage::

    from repro.api import SweepPlan, run_many

    plan = SweepPlan(buffer_bytes=(1 << 20, 1 << 26, 1 << 30))
    sweep = run_many(plan.specs(), jobs=4, cache_dir="~/.cache/repro")
    for row in sweep.runs:
        print(row.spec.fabric, row.result.costs.slices[0].seconds)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..obs.metrics import MetricsRegistry
from .cache import (
    CacheStats,
    DiskResultCache,
    NullResultCache,
    ResultCache,
    spec_key,
)
from .result import RunResult
from .session import FabricSession
from .spec import ScenarioSpec, SliceSpec

__all__ = ["SweepPlan", "SpecRun", "SweepResult", "run_many"]


def _chip_count(shape: Sequence[int]) -> int:
    count = 1
    for extent in shape:
        count *= int(extent)
    return count


@dataclass(frozen=True)
class SweepPlan:
    """A declarative sweep grid: fabrics × slice shapes × buffer sizes.

    Expansion order is deterministic (fabric-major, then shape, then
    buffer), so two plans with equal axes produce identical spec lists —
    the property the CLI's byte-identical serial/parallel check rests on.

    Attributes:
        fabrics: backend names to evaluate each point on.
        slice_shapes: single-tenant slice shapes placed at the rack origin.
        buffer_bytes: per-tenant collective buffer sizes.
        rack_shape: the rack torus every point shares.
        outputs: result sections each spec requests.
        mode: ``"closed_form"`` or ``"sim"``.
    """

    fabrics: tuple[str, ...] = ("electrical", "photonic")
    slice_shapes: tuple[tuple[int, ...], ...] = (
        (4, 2, 1),
        (4, 4, 1),
        (4, 4, 2),
    )
    buffer_bytes: tuple[int, ...] = (1 << 26,)
    rack_shape: tuple[int, ...] = (4, 4, 4)
    outputs: tuple[str, ...] = ("costs",)
    mode: str = "closed_form"

    def __post_init__(self) -> None:
        object.__setattr__(self, "fabrics", tuple(self.fabrics))
        object.__setattr__(
            self,
            "slice_shapes",
            tuple(tuple(int(s) for s in shape) for shape in self.slice_shapes),
        )
        object.__setattr__(
            self, "buffer_bytes", tuple(int(b) for b in self.buffer_bytes)
        )
        object.__setattr__(
            self, "rack_shape", tuple(int(s) for s in self.rack_shape)
        )
        object.__setattr__(self, "outputs", tuple(self.outputs))
        if not self.fabrics or not self.slice_shapes or not self.buffer_bytes:
            raise ValueError("every sweep axis needs at least one value")
        single = [s for s in self.slice_shapes if _chip_count(s) < 2]
        if single:
            raise ValueError(
                f"slice shapes {single} have a single chip — no collective "
                "to sweep; see slice_shape_sweep for skip reporting"
            )

    @property
    def size(self) -> int:
        """Number of grid points."""
        return (
            len(self.fabrics) * len(self.slice_shapes) * len(self.buffer_bytes)
        )

    def specs(self) -> tuple[ScenarioSpec, ...]:
        """The grid expanded to specs, fabric-major."""
        origin = tuple(0 for _ in self.rack_shape)
        return tuple(
            ScenarioSpec(
                fabric=fabric,
                rack_shape=self.rack_shape,
                slices=(SliceSpec("sweep", shape, origin),),
                buffer_bytes=buffer,
                mode=self.mode,
                outputs=self.outputs,
            )
            for fabric in self.fabrics
            for shape in self.slice_shapes
            for buffer in self.buffer_bytes
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "fabrics": list(self.fabrics),
            "slice_shapes": [list(s) for s in self.slice_shapes],
            "buffer_bytes": list(self.buffer_bytes),
            "rack_shape": list(self.rack_shape),
            "outputs": list(self.outputs),
            "mode": self.mode,
        }


@dataclass(frozen=True)
class SpecRun:
    """One sweep row: a spec, its result, and how it was obtained.

    Attributes:
        spec: the evaluated spec.
        result: its run result.
        elapsed_s: wall-clock seconds this row took in its process
            (0.0 for duplicates folded by deduplication).
        from_cache: whether the result came from a cache instead of a
            fresh evaluation.
        worker: OS pid of the process that evaluated the row (the parent
            pid for serial runs and deduplicated rows).
    """

    spec: ScenarioSpec
    result: RunResult
    elapsed_s: float
    from_cache: bool
    worker: int = 0


@dataclass(frozen=True)
class SweepResult:
    """Ordered results of one :func:`run_many` call.

    Attributes:
        runs: one row per *input* spec, in input order (duplicates share
            their first occurrence's result).
        wall_clock_s: end-to-end sweep duration.
        jobs: worker processes used (1 = serial, in-process).
        unique_specs: specs actually dispatched after deduplication.
    """

    runs: tuple[SpecRun, ...]
    wall_clock_s: float
    jobs: int
    unique_specs: int

    @property
    def results(self) -> tuple[RunResult, ...]:
        """Just the results, in input order."""
        return tuple(row.result for row in self.runs)

    def timing_records(self) -> list[dict[str, Any]]:
        """One JSON-safe timing record per row, in input order.

        This is the machine-readable form of the sweep's progress
        reporting — the CLI emits one record per stderr line so scripts
        can parse per-spec timing without scraping prose. Fields are
        scalars only: spec position, fabric/mode, the content key
        (truncated to 12 hex chars, enough to join against cache
        entries), elapsed seconds, cache provenance and the worker pid.
        """
        return [
            {
                "spec_index": index,
                "fabric": row.spec.fabric,
                "mode": row.spec.mode,
                "spec_key": spec_key(row.spec)[:12],
                "elapsed_s": round(row.elapsed_s, 6),
                "from_cache": row.from_cache,
                "worker": row.worker,
            }
            for index, row in enumerate(self.runs)
        ]

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss view over the sweep's rows (duplicates count as hits)."""
        stats = CacheStats()
        for row in self.runs:
            if row.from_cache:
                stats.hits += 1
            else:
                stats.misses += 1
                stats.eval_seconds += row.elapsed_s
        return stats

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """JSON-safe form; ``include_timing=False`` drops every
        non-deterministic field so serial and parallel sweeps of the same
        specs serialize byte-identically."""
        rows = []
        for row in self.runs:
            entry: dict[str, Any] = {"result": row.result.to_dict()}
            if include_timing:
                entry["elapsed_s"] = row.elapsed_s
                entry["from_cache"] = row.from_cache
            rows.append(entry)
        data: dict[str, Any] = {
            "spec_count": len(self.runs),
            "unique_specs": self.unique_specs,
            "runs": rows,
        }
        if include_timing:
            data["wall_clock_s"] = self.wall_clock_s
            data["jobs"] = self.jobs
            data["cache"] = self.cache_stats.to_dict()
        return data


def _make_cache(
    cache_dir: str | Path | None, no_cache: bool
) -> ResultCache | None:
    if no_cache:
        return NullResultCache()
    if cache_dir is not None:
        return DiskResultCache(Path(cache_dir).expanduser())
    return None  # session default: per-process memory cache


# One long-lived session per worker process: topology artifacts (tori,
# allocators, congestion reports) amortize across every spec the worker
# evaluates, mirroring what a serial session gets for free.
_WORKER_SESSION: FabricSession | None = None


def _worker_init(cache_dir: str | None, no_cache: bool) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = FabricSession(
        result_cache=_make_cache(cache_dir, no_cache)
    )


def _worker_eval(spec: ScenarioSpec) -> tuple[RunResult, float, bool, int]:
    session = _WORKER_SESSION
    assert session is not None, "worker used without initialization"
    hits_before = session.cache_stats().hits
    started = time.perf_counter()
    result = session.run(spec)
    elapsed = time.perf_counter() - started
    return (
        result,
        elapsed,
        session.cache_stats().hits > hits_before,
        os.getpid(),
    )


def _evaluate_serial(
    specs: Sequence[ScenarioSpec],
    session: FabricSession,
) -> list[tuple[RunResult, float, bool, int]]:
    pid = os.getpid()
    rows = []
    for spec in specs:
        hits_before = session.cache_stats().hits
        started = time.perf_counter()
        result = session.run(spec)
        elapsed = time.perf_counter() - started
        rows.append(
            (result, elapsed, session.cache_stats().hits > hits_before, pid)
        )
    return rows


def run_many(
    specs: Iterable[ScenarioSpec],
    *,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    no_cache: bool = False,
    session: FabricSession | None = None,
    chunksize: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> SweepResult:
    """Evaluate many specs, deduplicated, optionally in parallel + cached.

    Args:
        jobs: worker processes; ``None`` or ``1`` evaluates serially in
            this process, ``0`` uses every available CPU.
        cache_dir: directory of a persistent
            :class:`~repro.api.cache.DiskResultCache` shared by all
            workers (and future sweeps). ``None`` keeps results
            process-local.
        no_cache: bypass persistent cache reads *and* writes (takes
            precedence over ``cache_dir``).
        session: evaluate on this session instead (serial only) — lets
            sweeps share artifacts with surrounding code. Mutually
            exclusive with ``jobs > 1``.
        chunksize: specs per worker dispatch; defaults to spreading the
            unique specs ~4 chunks per worker (small specs dominate, so
            chunking matters more than balance).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            the sweep reports into — spec/hit counters, per-stage
            timing gauges (``sweep.plan_seconds``,
            ``sweep.evaluate_seconds``, ``sweep.merge_seconds``) and a
            ``sweep.spec_elapsed_s`` histogram. Purely observational:
            ``None`` (the default) records nothing and changes nothing.

    Returns:
        A :class:`SweepResult` with one row per input spec, in input
        order. Results are byte-identical (as JSON) whether evaluated
        serially, in parallel, or from a warm cache.

    Raises:
        ValueError: for a parallel run with an explicit ``session``.
        Exception: the first evaluation error, re-raised from workers.
    """
    ordered = list(specs)
    started = time.perf_counter()
    unique = list(dict.fromkeys(ordered))
    jobs = 1 if jobs is None else int(jobs)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs cannot be negative, got {jobs}")
    jobs = max(1, min(jobs, len(unique) or 1))
    planned = time.perf_counter()

    if jobs == 1:
        if session is None:
            session = FabricSession(
                result_cache=_make_cache(cache_dir, no_cache)
            )
        evaluated = _evaluate_serial(unique, session)
    else:
        if session is not None:
            raise ValueError(
                "session sharing is per-process; drop the session argument "
                "or run with jobs=1"
            )
        if chunksize is None:
            chunksize = max(1, len(unique) // (jobs * 4))
        cache_arg = (
            str(Path(cache_dir).expanduser()) if cache_dir is not None else None
        )
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(cache_arg, no_cache),
        ) as pool:
            evaluated = list(
                pool.map(_worker_eval, unique, chunksize=chunksize)
            )
    evaluated_at = time.perf_counter()

    by_spec = dict(zip(unique, evaluated))
    parent = os.getpid()
    runs = []
    seen: set[ScenarioSpec] = set()
    for spec in ordered:
        result, elapsed, from_cache, worker = by_spec[spec]
        if spec in seen:
            # A duplicate folded by dedup: served from the first
            # occurrence, no additional work in any worker.
            runs.append(SpecRun(spec, result, 0.0, True, parent))
        else:
            seen.add(spec)
            runs.append(SpecRun(spec, result, elapsed, from_cache, worker))
    sweep = SweepResult(
        runs=tuple(runs),
        wall_clock_s=time.perf_counter() - started,
        jobs=jobs,
        unique_specs=len(unique),
    )
    if metrics is not None:
        _record_sweep_metrics(
            metrics,
            sweep,
            plan_s=planned - started,
            evaluate_s=evaluated_at - planned,
            merge_s=time.perf_counter() - evaluated_at,
        )
    return sweep


def _record_sweep_metrics(
    metrics: MetricsRegistry,
    sweep: SweepResult,
    *,
    plan_s: float,
    evaluate_s: float,
    merge_s: float,
) -> None:
    """Report one finished sweep into ``metrics``.

    Stage gauges decompose the wall clock: planning (dedup + job
    sizing), evaluation (serial loop or pool map — for parallel runs
    this includes worker startup and result-queue wait), and the merge
    back into input order. Evaluation time spent *inside* specs is the
    ``sweep.spec_elapsed_s`` histogram; the gap between the evaluate
    gauge and the histogram total is scheduling overhead.
    """
    metrics.counter("sweep.specs").inc(len(sweep.runs))
    metrics.counter("sweep.unique_specs").inc(sweep.unique_specs)
    stats = sweep.cache_stats
    metrics.counter("sweep.cache_hits").inc(stats.hits)
    metrics.counter("sweep.cache_misses").inc(stats.misses)
    metrics.gauge("sweep.jobs").set(sweep.jobs)
    metrics.gauge("sweep.workers_used").set(
        len({row.worker for row in sweep.runs})
    )
    metrics.gauge("sweep.plan_seconds").set(plan_s)
    metrics.gauge("sweep.evaluate_seconds").set(evaluate_s)
    metrics.gauge("sweep.merge_seconds").set(merge_s)
    metrics.gauge("sweep.wall_clock_s").set(sweep.wall_clock_s)
    metrics.gauge("sweep.scheduling_overhead_s").set(
        max(0.0, evaluate_s - sum(r.elapsed_s for r in sweep.runs))
    )
    spec_hist = metrics.histogram("sweep.spec_elapsed_s")
    for row in sweep.runs:
        spec_hist.observe(row.elapsed_s)
