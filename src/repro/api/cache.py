"""Result caches: content-addressed storage for evaluated scenarios.

A :class:`~repro.api.spec.ScenarioSpec` is frozen and JSON-serializable,
so its canonical JSON form yields a *stable, layout-independent content
key* (:func:`spec_key`): two structurally equal specs map to the same
key no matter how they were built, in which process, or under which
``PYTHONHASHSEED``. The session memoization and the persistent on-disk
cache both store results under this key, which is what lets a sweep
started in one process be finished from another's cache.

Backends implement the tiny :class:`ResultCache` protocol:

* :class:`MemoryResultCache` — a per-process dict; the default session
  backend (PR 1's memoization, now keyed consistently).
* :class:`DiskResultCache` — a persistent content-addressed store under
  ``~/.cache/repro`` (or any directory), namespaced by a code/version
  fingerprint so stale entries are never served across releases. Writes
  are atomic (temp file + ``os.replace``), so concurrent sweep workers
  sharing a cache directory cannot corrupt entries; corrupt or truncated
  files read as misses and are rewritten. Optional ``max_entries`` /
  ``max_bytes`` caps prune oldest entries first on write, so a
  long-lived server's cache stays bounded.
* :class:`NullResultCache` — bypasses both reads and writes
  (``--no-cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

from ..obs.log import INFO as _INFO, NULL_LOG, EventLog
from .result import RunResult
from .spec import ScenarioSpec

__all__ = [
    "spec_key",
    "code_fingerprint",
    "default_cache_dir",
    "CacheStats",
    "ResultCache",
    "MemoryResultCache",
    "DiskResultCache",
    "NullResultCache",
    "tier_cache_stats",
]


@lru_cache(maxsize=65536)
def _spec_key_cached(spec: ScenarioSpec) -> str:
    canonical = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_key(spec: ScenarioSpec) -> str:
    """Stable content hash of a spec (hex sha256 of its canonical JSON).

    The key depends only on the spec's *contents*, not on object identity,
    dict ordering, or the process that computes it — the property the
    on-disk cache and cross-process sweep workers rely on. Memoized on the
    (frozen, hashable) spec: two structurally equal spec objects share one
    cache slot, and repeated session lookups skip re-serialization.
    """
    return _spec_key_cached(spec)


def code_fingerprint() -> str:
    """Fingerprint of the code that produced a cached result.

    Cached results are only valid for the code that computed them; the
    fingerprint namespaces the disk cache so a version bump invalidates
    every old entry without touching the filesystem. Reads the package
    version lazily so tests (and editable installs) see updates.

    The active kernel backend (:func:`repro.kernels.active_kernel`) is
    part of the fingerprint: the backends are proven byte-identical, but
    a result's provenance should still say which code path computed it,
    and namespacing keeps a regression in one backend from silently
    serving its results to the other.
    """
    import repro

    from ..kernels import active_kernel

    raw = f"repro-{repro.__version__}-{active_kernel()}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def default_cache_dir() -> Path:
    """The persistent cache location: ``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss counters and evaluation time of one session or sweep.

    Attributes:
        hits: results served from the cache.
        misses: results that had to be evaluated.
        eval_seconds: wall-clock seconds spent evaluating misses.
        per_backend: hit/miss counters broken out by fabric name
            (``{"photonic": {"hits": 3, "misses": 1}, ...}``) — empty
            when the producer doesn't track fabrics (e.g. sweep rows).
    """

    hits: int = 0
    misses: int = 0
    eval_seconds: float = 0.0
    per_backend: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-safe form (per-backend keys sorted for determinism)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "eval_seconds": self.eval_seconds,
            "hit_rate": self.hit_rate,
            "per_backend": {
                fabric: dict(counts)
                for fabric, counts in sorted(self.per_backend.items())
            },
        }


@runtime_checkable
class ResultCache(Protocol):
    """Where a session stores evaluated results, keyed by :func:`spec_key`."""

    def get(self, key: str) -> RunResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key``."""
        ...


class MemoryResultCache:
    """Per-process dict cache; preserves result object identity on hits."""

    def __init__(self) -> None:
        self._results: dict[str, RunResult] = {}

    def get(self, key: str) -> RunResult | None:
        return self._results.get(key)

    def put(self, key: str, result: RunResult) -> None:
        self._results[key] = result

    def __len__(self) -> int:
        return len(self._results)


class NullResultCache:
    """A cache that never stores anything (``--no-cache``)."""

    def get(self, key: str) -> RunResult | None:
        return None

    def put(self, key: str, result: RunResult) -> None:
        pass


class DiskResultCache:
    """Persistent content-addressed result store.

    Entries live at ``root/<fingerprint>/<key[:2]>/<key>.json`` where the
    fingerprint is :func:`code_fingerprint` — results computed by one
    package version are invisible to another. The payload is the
    ``RunResult`` JSON that already round-trips losslessly, so a disk hit
    reproduces the evaluated result byte-for-byte when re-serialized.

    A long-lived server writes into this cache forever, so it can be
    capped: ``max_entries`` / ``max_bytes`` bound the store (across *all*
    fingerprints — entries stranded by old code versions are the first
    to go) with oldest-first pruning. ``None`` (the default) keeps the
    original unbounded behavior.

    Pruning is *amortized*: the instance keeps approximate entry/byte
    counters (seeded by one directory scan on the first capped ``put``,
    advanced by each write) and only re-scans the directory when the
    counters trip a cap. When a scan finds the store over a cap, it
    evicts oldest-first down to a low watermark ``cap - max(1, cap//8)``
    rather than exactly to the cap, so the next scan is ~cap/8 puts away
    — put latency stays O(1) in the entry count instead of one full
    directory scan per write (``benchmarks/test_perf_cache.py`` holds
    this flat). The caps themselves are still never exceeded by this
    instance's own writes. Concurrent writers sharing a directory each
    bound their own contribution; their counters re-synchronize with
    reality on every scan.

    Attributes:
        root: the cache directory.
        max_entries: entry-count cap (``None`` = unbounded).
        max_bytes: payload-byte cap (``None`` = unbounded).
        evictions: entries pruned by this instance since construction.
        prune_scans: full directory scans this instance has paid for.
        log: structured event log ``cache.evict`` records go to
            (:data:`~repro.obs.log.NULL_LOG` default drops them).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        log: EventLog | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.log = log if log is not None else NULL_LOG
        self.evictions = 0
        self.prune_scans = 0
        # Approximate occupancy since the last scan; None = never scanned.
        self._approx_entries: int | None = None
        self._approx_bytes: int = 0

    def _path(self, key: str) -> Path:
        return self.root / code_fingerprint() / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
            return RunResult.from_json(text)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or truncated entry (interrupted writer, disk fault):
            # treat as a miss and drop it so the next put rewrites it.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-to-temp + atomic rename: concurrent workers computing the
        # same spec each produce a complete file; the last rename wins and
        # readers never observe a partial entry.
        payload = result.to_json()
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None or self.max_bytes is not None:
            self._note_put(len(payload.encode("utf-8")))

    def _note_put(self, size: int) -> None:
        """Advance the approximate counters; scan only when a cap trips."""
        if self._approx_entries is None:
            self._prune()  # first capped put: one scan seeds the counters
            return
        self._approx_entries += 1
        self._approx_bytes += size
        over_entries = (
            self.max_entries is not None
            and self._approx_entries > self.max_entries
        )
        over_bytes = (
            self.max_bytes is not None and self._approx_bytes > self.max_bytes
        )
        if over_entries or over_bytes:
            self._prune()

    def _entries(self) -> list[tuple[float, str, int, Path]]:
        """Every entry as ``(mtime, path-str, bytes, path)``, oldest first.

        Spans all fingerprint namespaces so stale-version entries are
        evicted before live ones of the same age (their mtimes are
        older). Files vanishing mid-scan (a concurrent eviction or
        corrupt-entry drop) are simply skipped.
        """
        entries = []
        for path in self.root.glob("*/*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, str(path), stat.st_size, path))
        entries.sort()
        return entries

    def _prune(self) -> None:
        """Scan the store; if over a cap, evict oldest down to a watermark.

        The watermark (``cap - max(1, cap // 8)``, floored so at least
        the newest entry survives) leaves headroom, so after a trip the
        approximate counters take ~cap/8 more puts to trip again — the
        scan cost amortizes instead of recurring every write. The
        just-written entry (the newest) is the last candidate and
        survives any entry cap. Concurrent pruners may race to unlink
        the same file; the loser's unlink is a no-op and is not counted
        as an eviction.
        """
        entries = self._entries()
        self.prune_scans += 1
        count = len(entries)
        total = sum(size for _, _, size, _ in entries)
        evicted_before = self.evictions
        over = (
            self.max_entries is not None and count > self.max_entries
        ) or (self.max_bytes is not None and total > self.max_bytes)
        if over:
            target_entries = (
                None
                if self.max_entries is None
                else max(1, self.max_entries - max(1, self.max_entries // 8))
            )
            target_bytes = (
                None
                if self.max_bytes is None
                else max(0, self.max_bytes - max(1, self.max_bytes // 8))
            )
            for _, _, size, path in entries:
                over_entries = (
                    target_entries is not None and count > target_entries
                )
                over_bytes = target_bytes is not None and total > target_bytes
                if not over_entries and not over_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                self.evictions += 1
                count -= 1
                total -= size
        self._approx_entries = count
        self._approx_bytes = total
        evicted = self.evictions - evicted_before
        if evicted and self.log.enabled_for(_INFO):
            self.log.info(
                "cache.evict", evicted=evicted, entries=count, bytes=total
            )

    def cache_stats(self) -> dict:
        """Occupancy and eviction counters of the on-disk store.

        Unlike :meth:`FabricSession.cache_stats`, which counts lookups,
        this reports what is *on disk* right now — across every code
        fingerprint — plus how many entries this instance evicted.
        """
        entries = self._entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, _, size, _ in entries),
            "evictions": self.evictions,
            "prune_scans": self.prune_scans,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def __len__(self) -> int:
        fingerprint_dir = self.root / code_fingerprint()
        if not fingerprint_dir.is_dir():
            return 0
        return sum(1 for _ in fingerprint_dir.glob("*/*.json"))


def tier_cache_stats(roots: Sequence[str | Path | None]) -> dict:
    """Summed on-disk occupancy across a sharded tier's worker caches.

    The shard router gives every worker slot its own cache namespace
    (``<root>/worker-<slot>``); this rolls the per-namespace occupancy
    up into one shared-tier view for the router's ``/metrics``. ``None``
    entries (cacheless workers) are skipped but still counted.

    Returns:
        ``{"workers", "entries", "bytes", "per_worker": [...]}`` with
        ``per_worker`` ordered like ``roots``.
    """
    per_worker = []
    total_entries = 0
    total_bytes = 0
    for root in roots:
        if root is None:
            per_worker.append({"root": None, "entries": 0, "bytes": 0})
            continue
        stats = DiskResultCache(root).cache_stats()
        per_worker.append(
            {
                "root": str(root),
                "entries": stats["entries"],
                "bytes": stats["bytes"],
            }
        )
        total_entries += stats["entries"]
        total_bytes += stats["bytes"]
    return {
        "workers": len(per_worker),
        "entries": total_entries,
        "bytes": total_bytes,
        "per_worker": per_worker,
    }
