"""Typed run results — the output side of the experiment API.

A :class:`RunResult` packages everything one :class:`~repro.api.spec.
ScenarioSpec` evaluation produced: symbolic collective costs grounded in
seconds, congestion analysis, simulator telemetry, repair plans, fleet
blast-radius comparisons, bandwidth-utilization rows, and device-level
physical reports. Every section is an optional typed dataclass, and the
whole result round-trips through JSON via ``to_dict``/``from_dict`` so
runs can be archived and compared across backends and code versions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any

from ..collectives.cost_model import CollectiveCost
from ..obs.tracer import TraceEvent, Tracer
from .spec import ScenarioSpec

__all__ = [
    "SliceCost",
    "CostReport",
    "UtilizationRow",
    "SharedLinkLine",
    "CongestionSummary",
    "TelemetryLine",
    "TelemetryReport",
    "LinkLoadLine",
    "LinkUtilizationReport",
    "CircuitLine",
    "AttemptLine",
    "RepairReport",
    "PolicyLine",
    "BlastRadiusSummary",
    "FleetSeriesPoint",
    "FleetPolicyReport",
    "FleetReport",
    "TenancySeriesPoint",
    "TenancyPolicyReport",
    "TenancyReport",
    "DeviceReport",
    "TraceReport",
    "MetricLine",
    "MetricsReport",
    "RunResult",
]


def _cost_to_dict(cost: CollectiveCost) -> dict[str, Any]:
    return {
        "alpha_count": cost.alpha_count,
        "beta_factor": cost.beta_factor,
        "reconfig_count": cost.reconfig_count,
    }


def _cost_from_dict(data: dict[str, Any]) -> CollectiveCost:
    return CollectiveCost(
        alpha_count=data["alpha_count"],
        beta_factor=data["beta_factor"],
        reconfig_count=data.get("reconfig_count", 0),
    )


@dataclass(frozen=True)
class SliceCost:
    """Collective cost of one tenant under the spec's backend.

    Attributes:
        slice_name: tenant label.
        shape: slice shape.
        chips: chip count.
        cost: total symbolic alpha-beta-r cost.
        stages: per-stage costs (one entry for single-ring strategies,
            one per bucket dimension otherwise) — the rows of Table 2.
        seconds: total cost grounded at the spec's ``buffer_bytes``.
    """

    slice_name: str
    shape: tuple[int, ...]
    chips: int
    cost: CollectiveCost
    stages: tuple[CollectiveCost, ...]
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "slice_name": self.slice_name,
            "shape": list(self.shape),
            "chips": self.chips,
            "cost": _cost_to_dict(self.cost),
            "stages": [_cost_to_dict(s) for s in self.stages],
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SliceCost":
        return cls(
            slice_name=data["slice_name"],
            shape=tuple(data["shape"]),
            chips=data["chips"],
            cost=_cost_from_dict(data["cost"]),
            stages=tuple(_cost_from_dict(s) for s in data["stages"]),
            seconds=data["seconds"],
        )


@dataclass(frozen=True)
class CostReport:
    """Per-slice collective costs for one backend."""

    interconnect: str
    buffer_bytes: int
    slices: tuple[SliceCost, ...]

    def by_name(self, slice_name: str) -> SliceCost:
        """The cost line of ``slice_name``.

        Raises:
            KeyError: when the slice is not in the report.
        """
        for line in self.slices:
            if line.slice_name == slice_name:
                return line
        raise KeyError(slice_name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "interconnect": self.interconnect,
            "buffer_bytes": self.buffer_bytes,
            "slices": [s.to_dict() for s in self.slices],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CostReport":
        return cls(
            interconnect=data["interconnect"],
            buffer_bytes=data["buffer_bytes"],
            slices=tuple(SliceCost.from_dict(s) for s in data["slices"]),
        )


@dataclass(frozen=True)
class UtilizationRow:
    """Usable per-chip bandwidth of one slice (Figure 5c series)."""

    name: str
    shape: tuple[int, ...]
    chips: int
    electrical_fraction: float
    optical_fraction: float
    electrical_bandwidth_bytes: float
    optical_bandwidth_bytes: float

    @property
    def bandwidth_loss_percent(self) -> float:
        """Percent of chip bandwidth the electrical slice strands."""
        return (1.0 - self.electrical_fraction) * 100.0

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["shape"] = list(self.shape)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UtilizationRow":
        return cls(
            name=data["name"],
            shape=tuple(data["shape"]),
            chips=data["chips"],
            electrical_fraction=data["electrical_fraction"],
            optical_fraction=data["optical_fraction"],
            electrical_bandwidth_bytes=data["electrical_bandwidth_bytes"],
            optical_bandwidth_bytes=data["optical_bandwidth_bytes"],
        )


@dataclass(frozen=True)
class SharedLinkLine:
    """One physical link shared by multiple tenants' rings."""

    src: tuple[int, ...]
    dst: tuple[int, ...]
    users: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"src": list(self.src), "dst": list(self.dst),
                "users": list(self.users)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SharedLinkLine":
        return cls(
            src=tuple(data["src"]),
            dst=tuple(data["dst"]),
            users=tuple(data["users"]),
        )


@dataclass(frozen=True)
class CongestionSummary:
    """Link-sharing (or switch-contention) analysis of the scenario.

    Attributes:
        congestion_free: whether no physical resource is shared.
        shared_links: links carrying multiple tenants (torus fabrics).
        worst_multiplicity: most users on one link (1 = none).
        per_slice_congested_dims: dimensions whose rings are congested.
        contention_loss_fraction: throughput lost to host contention
            (switched fabrics; ``None`` for torus fabrics).
    """

    congestion_free: bool
    shared_links: tuple[SharedLinkLine, ...] = ()
    worst_multiplicity: int = 1
    per_slice_congested_dims: dict[str, tuple[int, ...]] | None = None
    contention_loss_fraction: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "congestion_free": self.congestion_free,
            "shared_links": [s.to_dict() for s in self.shared_links],
            "worst_multiplicity": self.worst_multiplicity,
            "per_slice_congested_dims": (
                {k: list(v) for k, v in self.per_slice_congested_dims.items()}
                if self.per_slice_congested_dims is not None
                else None
            ),
            "contention_loss_fraction": self.contention_loss_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CongestionSummary":
        dims = data.get("per_slice_congested_dims")
        return cls(
            congestion_free=data["congestion_free"],
            shared_links=tuple(
                SharedLinkLine.from_dict(s) for s in data.get("shared_links", ())
            ),
            worst_multiplicity=data.get("worst_multiplicity", 1),
            per_slice_congested_dims=(
                {k: tuple(v) for k, v in dims.items()} if dims is not None else None
            ),
            contention_loss_fraction=data.get("contention_loss_fraction"),
        )


@dataclass(frozen=True)
class TelemetryLine:
    """Measured execution of one tenant's collective on the simulator."""

    name: str
    duration_s: float
    transfer_s: float
    alpha_s: float
    reconfig_s: float
    phase_durations_s: tuple[float, ...]

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["phase_durations_s"] = list(self.phase_durations_s)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryLine":
        return cls(
            name=data["name"],
            duration_s=data["duration_s"],
            transfer_s=data["transfer_s"],
            alpha_s=data["alpha_s"],
            reconfig_s=data["reconfig_s"],
            phase_durations_s=tuple(data["phase_durations_s"]),
        )


@dataclass(frozen=True)
class TelemetryReport:
    """Simulator measurements for the whole scenario.

    Attributes:
        schedules: per-tenant measured runs (torus fabrics).
        aggregate_throughput_bytes: achieved switch throughput under the
            all-to-all pattern (switched fabrics; ``None`` otherwise).
        ideal_throughput_bytes: contention-free switch throughput.
    """

    schedules: tuple[TelemetryLine, ...] = ()
    aggregate_throughput_bytes: float | None = None
    ideal_throughput_bytes: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedules": [s.to_dict() for s in self.schedules],
            "aggregate_throughput_bytes": self.aggregate_throughput_bytes,
            "ideal_throughput_bytes": self.ideal_throughput_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryReport":
        return cls(
            schedules=tuple(
                TelemetryLine.from_dict(s) for s in data.get("schedules", ())
            ),
            aggregate_throughput_bytes=data.get("aggregate_throughput_bytes"),
            ideal_throughput_bytes=data.get("ideal_throughput_bytes"),
        )


@dataclass(frozen=True)
class LinkLoadLine:
    """Measured load on one torus link over the run horizon.

    Attributes:
        src: link source chip.
        dst: link destination chip.
        dimension: torus dimension the link runs along.
        carried_bytes: bytes the link actually moved.
        mean_utilization: carried bytes over capacity x horizon.
        peak_utilization: highest instantaneous rate over capacity.
    """

    src: tuple[int, ...]
    dst: tuple[int, ...]
    dimension: int
    carried_bytes: float
    mean_utilization: float
    peak_utilization: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "src": list(self.src),
            "dst": list(self.dst),
            "dimension": self.dimension,
            "carried_bytes": self.carried_bytes,
            "mean_utilization": self.mean_utilization,
            "peak_utilization": self.peak_utilization,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LinkLoadLine":
        return cls(
            src=tuple(data["src"]),
            dst=tuple(data["dst"]),
            dimension=data["dimension"],
            carried_bytes=data["carried_bytes"],
            mean_utilization=data["mean_utilization"],
            peak_utilization=data["peak_utilization"],
        )


#: Relative carried-bytes slack under which a link counts as idle; mirrors
#: ``repro.sim.telemetry.IDLE_TOLERANCE`` (summed float integrals are never
#: compared against exact zero).
_IDLE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LinkUtilizationReport:
    """Measured per-link load for the whole scenario — the stranded-
    bandwidth story (Figure 5c) told from the simulator rather than
    closed form.

    Attributes:
        horizon_s: time span the utilizations are normalized over (the
            last tenant's finish time).
        link_capacity_bytes_per_s: the uniform per-link capacity the
            fabric charges.
        mean_utilization: capacity-weighted mean over every rack link.
        links: per-link load lines, deterministically ordered by
            (src, dst).
    """

    horizon_s: float
    link_capacity_bytes_per_s: float
    mean_utilization: float
    links: tuple[LinkLoadLine, ...]

    def idle_links(
        self, tolerance: float = _IDLE_TOLERANCE
    ) -> tuple[LinkLoadLine, ...]:
        """Links that carried ~nothing — the stranded bandwidth.

        A link is idle when its carried bytes are at most ``tolerance``
        times the busiest link's.
        """
        threshold = tolerance * max(
            (line.carried_bytes for line in self.links), default=0.0
        )
        return tuple(
            line for line in self.links if line.carried_bytes <= threshold
        )

    @property
    def stranded_fraction(self) -> float:
        """Fraction of rack links (uniform capacity) that sat idle."""
        if not self.links:
            return 0.0
        return len(self.idle_links()) / len(self.links)

    def busiest(self, top: int = 5) -> tuple[LinkLoadLine, ...]:
        """The ``top`` links by carried bytes, descending."""
        ranked = sorted(
            self.links,
            key=lambda line: (-line.carried_bytes, line.src, line.dst),
        )
        return tuple(ranked[:top])

    def mean_utilization_by_dimension(self) -> dict[int, float]:
        """Mean link utilization grouped by torus dimension."""
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        for line in self.links:
            sums[line.dimension] = sums.get(line.dimension, 0.0) + (
                line.mean_utilization
            )
            counts[line.dimension] = counts.get(line.dimension, 0) + 1
        return {d: sums[d] / counts[d] for d in sorted(sums)}

    def idle_fraction_by_dimension(
        self, tolerance: float = _IDLE_TOLERANCE
    ) -> dict[int, float]:
        """Fraction of each dimension's links that sat idle."""
        idle = set()
        for line in self.idle_links(tolerance):
            idle.add((line.src, line.dst))
        totals: dict[int, int] = {}
        idles: dict[int, int] = {}
        for line in self.links:
            totals[line.dimension] = totals.get(line.dimension, 0) + 1
            if (line.src, line.dst) in idle:
                idles[line.dimension] = idles.get(line.dimension, 0) + 1
        return {
            d: idles.get(d, 0) / totals[d] for d in sorted(totals)
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        Derived views (idle links, stranded fraction, busiest-5) are
        included for human consumption but recomputed — not read back —
        by ``from_dict``, so the round-trip stays exact.
        """
        return {
            "horizon_s": self.horizon_s,
            "link_capacity_bytes_per_s": self.link_capacity_bytes_per_s,
            "mean_utilization": self.mean_utilization,
            "links": [line.to_dict() for line in self.links],
            "idle_links": [
                {"src": list(line.src), "dst": list(line.dst)}
                for line in self.idle_links()
            ],
            "stranded_fraction": self.stranded_fraction,
            "busiest": [line.to_dict() for line in self.busiest()],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LinkUtilizationReport":
        return cls(
            horizon_s=data["horizon_s"],
            link_capacity_bytes_per_s=data["link_capacity_bytes_per_s"],
            mean_utilization=data["mean_utilization"],
            links=tuple(LinkLoadLine.from_dict(li) for li in data["links"]),
        )


@dataclass(frozen=True)
class CircuitLine:
    """One established repair circuit (optical repair, Figure 7)."""

    src: tuple[int, ...]
    dst: tuple[int, ...]
    server_path: tuple[tuple[int, ...], ...]
    fiber_hops: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "src": list(self.src),
            "dst": list(self.dst),
            "server_path": [list(s) for s in self.server_path],
            "fiber_hops": self.fiber_hops,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CircuitLine":
        return cls(
            src=tuple(data["src"]),
            dst=tuple(data["dst"]),
            server_path=tuple(tuple(s) for s in data["server_path"]),
            fiber_hops=data["fiber_hops"],
        )


@dataclass(frozen=True)
class AttemptLine:
    """One candidate free chip evaluated as an electrical replacement."""

    free_chip: tuple[int, ...]
    feasible: bool
    congested_links: int

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["free_chip"] = list(self.free_chip)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttemptLine":
        return cls(
            free_chip=tuple(data["free_chip"]),
            feasible=data["feasible"],
            congested_links=data["congested_links"],
        )


@dataclass(frozen=True)
class RepairReport:
    """Outcome of repairing the spec's failed chip on this fabric.

    Attributes:
        kind: ``"optical"`` (circuit splice, Figure 7) or
            ``"electrical"`` (replacement-path analysis, Figure 6a).
        failed: the failed chip.
        feasible: whether a congestion-free repair exists.
        replacement: the spare spliced in (optical; best effort for
            electrical reports it stays ``None``).
        circuits: established circuits (optical).
        setup_latency_s: time to bring the repair up (optical).
        fibers_used: fibers consumed (optical).
        blast_radius_chips: chips lost after repair (optical).
        attempts: per-free-chip evaluations (electrical).
    """

    kind: str
    failed: tuple[int, ...]
    feasible: bool
    replacement: tuple[int, ...] | None = None
    circuits: tuple[CircuitLine, ...] = ()
    setup_latency_s: float = 0.0
    fibers_used: int = 0
    blast_radius_chips: int = 0
    attempts: tuple[AttemptLine, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "failed": list(self.failed),
            "feasible": self.feasible,
            "replacement": (
                list(self.replacement) if self.replacement is not None else None
            ),
            "circuits": [c.to_dict() for c in self.circuits],
            "setup_latency_s": self.setup_latency_s,
            "fibers_used": self.fibers_used,
            "blast_radius_chips": self.blast_radius_chips,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RepairReport":
        return cls(
            kind=data["kind"],
            failed=tuple(data["failed"]),
            feasible=data["feasible"],
            replacement=(
                tuple(data["replacement"])
                if data.get("replacement") is not None
                else None
            ),
            circuits=tuple(
                CircuitLine.from_dict(c) for c in data.get("circuits", ())
            ),
            setup_latency_s=data.get("setup_latency_s", 0.0),
            fibers_used=data.get("fibers_used", 0),
            blast_radius_chips=data.get("blast_radius_chips", 0),
            attempts=tuple(
                AttemptLine.from_dict(a) for a in data.get("attempts", ())
            ),
        )


@dataclass(frozen=True)
class PolicyLine:
    """Blast-radius metrics of one recovery policy over a failure trace."""

    policy: str
    failures: int
    blast_radius_chips: int
    total_chip_impact: int
    total_downtime_s: float
    lost_chip_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PolicyLine":
        return cls(**data)


@dataclass(frozen=True)
class BlastRadiusSummary:
    """Rack-migration vs optical-repair comparison (Section 4.2)."""

    days: float
    rack_policy: PolicyLine
    optical_policy: PolicyLine
    improvement_factor: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "days": self.days,
            "rack_policy": self.rack_policy.to_dict(),
            "optical_policy": self.optical_policy.to_dict(),
            "improvement_factor": self.improvement_factor,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BlastRadiusSummary":
        return cls(
            days=data["days"],
            rack_policy=PolicyLine.from_dict(data["rack_policy"]),
            optical_policy=PolicyLine.from_dict(data["optical_policy"]),
            improvement_factor=data["improvement_factor"],
        )


@dataclass(frozen=True)
class FleetSeriesPoint:
    """One bucket of the fleet availability time series.

    Attributes:
        start_s: bucket start (simulation seconds).
        end_s: bucket end.
        mean_available_chips: time-weighted mean capacity in the bucket.
    """

    start_s: float
    end_s: float
    mean_available_chips: float

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetSeriesPoint":
        return cls(**data)


@dataclass(frozen=True)
class FleetPolicyReport:
    """One fabric's measured year (or span) of fleet life.

    Attributes:
        fabric: ``"electrical"`` or ``"photonic"``.
        failures: chip failures over the span.
        repairs: failures repaired within the span.
        unrepaired: chips still failed at the end.
        events_processed: simulator events executed (determinism anchor).
        mean_availability: time-averaged fraction of chips in service.
        min_available_chips: lowest instantaneous capacity.
        peak_failed_chips: most chips simultaneously failed.
        lost_chip_seconds: total unavailable chip-seconds.
        collateral_chip_seconds: the blast-radius share — healthy chips
            taken out by rack migrations or server stalls (goodput lost
            to blast radius).
        ttr_p50_s / ttr_p90_s / ttr_p99_s / ttr_max_s: time-to-repair
            percentiles, failure to capacity restored.
        series: availability time series.
    """

    fabric: str
    failures: int
    repairs: int
    unrepaired: int
    events_processed: int
    mean_availability: float
    min_available_chips: int
    peak_failed_chips: int
    lost_chip_seconds: float
    collateral_chip_seconds: float
    ttr_p50_s: float
    ttr_p90_s: float
    ttr_p99_s: float
    ttr_max_s: float
    series: tuple[FleetSeriesPoint, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_availability <= 1.0:
            raise ValueError(
                f"mean_availability {self.mean_availability} outside [0, 1]"
            )
        if self.min_available_chips < 0:
            raise ValueError("min_available_chips cannot be negative")

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["series"] = [p.to_dict() for p in self.series]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetPolicyReport":
        return cls(
            fabric=data["fabric"],
            failures=data["failures"],
            repairs=data["repairs"],
            unrepaired=data["unrepaired"],
            events_processed=data["events_processed"],
            mean_availability=data["mean_availability"],
            min_available_chips=data["min_available_chips"],
            peak_failed_chips=data["peak_failed_chips"],
            lost_chip_seconds=data["lost_chip_seconds"],
            collateral_chip_seconds=data["collateral_chip_seconds"],
            ttr_p50_s=data["ttr_p50_s"],
            ttr_p90_s=data["ttr_p90_s"],
            ttr_p99_s=data["ttr_p99_s"],
            ttr_max_s=data["ttr_max_s"],
            series=tuple(
                FleetSeriesPoint.from_dict(p) for p in data["series"]
            ),
        )


@dataclass(frozen=True)
class FleetReport:
    """Electrical vs photonic fleet reliability (the ``"fleet"`` output).

    Both fabrics simulate the same seeded failure renewal process under
    the same dispatch policy; the gap between their availabilities is the
    year-scale version of the paper's Section 4.2 blast-radius argument.

    Attributes:
        days: simulated span.
        chips: fleet size.
        seed: renewal-process seed.
        policy: dispatch policy both runs used.
        electrical: the rack-migration fabric's measured span.
        photonic: the LIGHTPATH fabric's measured span.
    """

    days: float
    chips: int
    seed: int
    policy: str
    electrical: FleetPolicyReport
    photonic: FleetPolicyReport

    @property
    def availability_gap(self) -> float:
        """Photonic minus electrical mean availability."""
        return (
            self.photonic.mean_availability
            - self.electrical.mean_availability
        )

    @property
    def downtime_reduction_factor(self) -> float:
        """Electrical over photonic lost chip-seconds (inf when 0)."""
        if self.photonic.lost_chip_seconds == 0:
            return float("inf")
        return (
            self.electrical.lost_chip_seconds
            / self.photonic.lost_chip_seconds
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        The derived gap figures are included for human consumption but
        recomputed — not read back — so the round-trip stays exact
        (``inf`` would not survive JSON anyway).
        """
        return {
            "days": self.days,
            "chips": self.chips,
            "seed": self.seed,
            "policy": self.policy,
            "electrical": self.electrical.to_dict(),
            "photonic": self.photonic.to_dict(),
            "availability_gap": self.availability_gap,
            "downtime_reduction_factor": (
                None
                if self.downtime_reduction_factor == float("inf")
                else self.downtime_reduction_factor
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetReport":
        return cls(
            days=data["days"],
            chips=data["chips"],
            seed=data["seed"],
            policy=data["policy"],
            electrical=FleetPolicyReport.from_dict(data["electrical"]),
            photonic=FleetPolicyReport.from_dict(data["photonic"]),
        )


@dataclass(frozen=True)
class TenancySeriesPoint:
    """One bucket of the tenancy occupancy/fragmentation time series.

    Attributes:
        start_s: bucket start (simulation seconds).
        end_s: bucket end.
        mean_occupied_chips: time-weighted mean allocated capacity.
        largest_allocatable_chips: chips of the largest catalog shape
            still placeable contiguously at the bucket's end (the
            electrical view of free capacity).
        free_chips: total free chips at the bucket's end (what a
            steering fabric can still use).
    """

    start_s: float
    end_s: float
    mean_occupied_chips: float
    largest_allocatable_chips: int
    free_chips: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenancySeriesPoint":
        return cls(**data)


@dataclass(frozen=True)
class TenancyPolicyReport:
    """One fabric's measured span of multi-tenant churn.

    Attributes:
        fabric: ``"electrical"`` or ``"photonic"``.
        steering: whether wavelength steering was available.
        arrivals: jobs submitted.
        placed: jobs that got a slice.
        steered_placements: placements assembled from scattered chips.
        rejected: jobs that timed out in the queue.
        completed: jobs that finished inside the horizon.
        running_at_horizon / queued_at_horizon: jobs still in flight.
        defrag_moves: survivor relocations the policy performed.
        events_processed: simulator events executed (determinism anchor).
        mean_occupancy: time-averaged fraction of chips allocated.
        queue_delay_mean_s: mean placement delay over placed jobs.
        queue_delay_p50_s / p90 / p99 / max_s: delay percentiles.
        rejection_rate: rejected / arrivals.
        stranded_chip_seconds: chip-seconds of bandwidth the fabric
            could not deliver to the tenants holding the chips.
        stranded_fraction: stranded share of occupied chip-seconds.
        circuits_peak: most wavelength circuits simultaneously lit.
        series: occupancy/fragmentation time series.
    """

    fabric: str
    steering: bool
    arrivals: int
    placed: int
    steered_placements: int
    rejected: int
    completed: int
    running_at_horizon: int
    queued_at_horizon: int
    defrag_moves: int
    events_processed: int
    mean_occupancy: float
    queue_delay_mean_s: float
    queue_delay_p50_s: float
    queue_delay_p90_s: float
    queue_delay_p99_s: float
    queue_delay_max_s: float
    rejection_rate: float
    stranded_chip_seconds: float
    stranded_fraction: float
    circuits_peak: int
    series: tuple[TenancySeriesPoint, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_occupancy <= 1.0:
            raise ValueError(
                f"mean_occupancy {self.mean_occupancy} outside [0, 1]"
            )
        if not 0.0 <= self.rejection_rate <= 1.0:
            raise ValueError(
                f"rejection_rate {self.rejection_rate} outside [0, 1]"
            )
        if self.stranded_chip_seconds < 0:
            raise ValueError("stranded_chip_seconds cannot be negative")

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["series"] = [p.to_dict() for p in self.series]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenancyPolicyReport":
        return cls(
            fabric=data["fabric"],
            steering=data["steering"],
            arrivals=data["arrivals"],
            placed=data["placed"],
            steered_placements=data["steered_placements"],
            rejected=data["rejected"],
            completed=data["completed"],
            running_at_horizon=data["running_at_horizon"],
            queued_at_horizon=data["queued_at_horizon"],
            defrag_moves=data["defrag_moves"],
            events_processed=data["events_processed"],
            mean_occupancy=data["mean_occupancy"],
            queue_delay_mean_s=data["queue_delay_mean_s"],
            queue_delay_p50_s=data["queue_delay_p50_s"],
            queue_delay_p90_s=data["queue_delay_p90_s"],
            queue_delay_p99_s=data["queue_delay_p99_s"],
            queue_delay_max_s=data["queue_delay_max_s"],
            rejection_rate=data["rejection_rate"],
            stranded_chip_seconds=data["stranded_chip_seconds"],
            stranded_fraction=data["stranded_fraction"],
            circuits_peak=data["circuits_peak"],
            series=tuple(
                TenancySeriesPoint.from_dict(p) for p in data["series"]
            ),
        )


@dataclass(frozen=True)
class TenancyReport:
    """Electrical vs photonic scheduling quality (``"tenancy"`` output).

    Both fabrics place the same seeded job stream under the same base
    policy; only the photonic run may steer wavelengths. The gaps are
    the dynamic version of the paper's Section 4.1 provisioning
    argument: flexibility converts fragmentation into placements.

    Attributes:
        days: simulated span.
        chips: cluster size.
        seed: workload seed.
        policy: base placement policy both runs used.
        profile: arrival profile.
        electrical: the static fabric's measured span.
        photonic: the steerable fabric's measured span.
    """

    days: float
    chips: int
    seed: int
    policy: str
    profile: str
    electrical: TenancyPolicyReport
    photonic: TenancyPolicyReport

    @property
    def queue_delay_gap_s(self) -> float:
        """Electrical minus photonic mean queueing delay."""
        return (
            self.electrical.queue_delay_mean_s
            - self.photonic.queue_delay_mean_s
        )

    @property
    def rejection_gap(self) -> float:
        """Electrical minus photonic rejection rate."""
        return self.electrical.rejection_rate - self.photonic.rejection_rate

    @property
    def stranded_reduction_factor(self) -> float:
        """Electrical over photonic stranded chip-seconds (inf when 0)."""
        if self.photonic.stranded_chip_seconds == 0:
            return float("inf")
        return (
            self.electrical.stranded_chip_seconds
            / self.photonic.stranded_chip_seconds
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        The derived gap figures are included for human consumption but
        recomputed — not read back — so the round-trip stays exact
        (``inf`` would not survive JSON anyway).
        """
        return {
            "days": self.days,
            "chips": self.chips,
            "seed": self.seed,
            "policy": self.policy,
            "profile": self.profile,
            "electrical": self.electrical.to_dict(),
            "photonic": self.photonic.to_dict(),
            "queue_delay_gap_s": self.queue_delay_gap_s,
            "rejection_gap": self.rejection_gap,
            "stranded_reduction_factor": (
                None
                if self.stranded_reduction_factor == float("inf")
                else self.stranded_reduction_factor
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenancyReport":
        return cls(
            days=data["days"],
            chips=data["chips"],
            seed=data["seed"],
            policy=data["policy"],
            profile=data["profile"],
            electrical=TenancyPolicyReport.from_dict(data["electrical"]),
            photonic=TenancyPolicyReport.from_dict(data["photonic"]),
        )


@dataclass(frozen=True)
class DeviceReport:
    """Physical-layer device characterization (Figures 3a/3b)."""

    mzi_tau_s: float
    mzi_settling_s: float
    stitch_bin_edges_db: tuple[float, ...]
    stitch_counts: tuple[int, ...]
    stitch_mean_db: float
    stitch_p95_db: float

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["stitch_bin_edges_db"] = list(self.stitch_bin_edges_db)
        data["stitch_counts"] = list(self.stitch_counts)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeviceReport":
        return cls(
            mzi_tau_s=data["mzi_tau_s"],
            mzi_settling_s=data["mzi_settling_s"],
            stitch_bin_edges_db=tuple(data["stitch_bin_edges_db"]),
            stitch_counts=tuple(data["stitch_counts"]),
            stitch_mean_db=data["stitch_mean_db"],
            stitch_p95_db=data["stitch_p95_db"],
        )


@dataclass(frozen=True)
class TraceReport:
    """The scenario's event timeline (the ``"trace"`` output).

    Events come from a :class:`~repro.obs.tracer.Tracer` the backend
    threads through the simulator run, plus the failure-recovery
    timeline when the spec injects failures. Timestamps are simulation
    microseconds, so the report is fully deterministic and
    golden-testable.

    Attributes:
        events: every recorded event, in emission order.
        time_unit: timestamp unit (always ``"us"``).
    """

    events: tuple[TraceEvent, ...]
    time_unit: str = "us"

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceReport":
        return cls(events=tracer.events)

    def spans(self, cat: str | None = None) -> tuple[TraceEvent, ...]:
        """Complete spans, optionally filtered by category."""
        return tuple(
            e for e in self.events
            if e.ph == "X" and (cat is None or e.cat == cat)
        )

    def instants(self, cat: str | None = None) -> tuple[TraceEvent, ...]:
        """Instant events, optionally filtered by category."""
        return tuple(
            e for e in self.events
            if e.ph == "i" and (cat is None or e.cat == cat)
        )

    def categories(self) -> tuple[str, ...]:
        """Event categories present, sorted (metadata excluded)."""
        return tuple(
            sorted({e.cat for e in self.events if e.ph != "M"})
        )

    def filtered(self, categories: set[str] | frozenset[str]) -> "TraceReport":
        """The report restricted to ``categories`` (metadata kept)."""
        return TraceReport(
            events=tuple(
                e for e in self.events
                if e.ph == "M" or e.cat in categories
            ),
            time_unit=self.time_unit,
        )

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome/Perfetto ``trace_event`` JSON object.

        Events are ordered metadata-first, then by timestamp (stable on
        ties), matching :meth:`repro.obs.tracer.Tracer.to_chrome`.
        """
        ordered = sorted(
            self.events, key=lambda e: (0 if e.ph == "M" else 1, e.ts_us)
        )
        return {
            "displayTimeUnit": "ns",
            "traceEvents": [e.to_dict() for e in ordered],
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_unit": self.time_unit,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceReport":
        return cls(
            events=tuple(TraceEvent.from_dict(e) for e in data["events"]),
            time_unit=data.get("time_unit", "us"),
        )


@dataclass(frozen=True)
class MetricLine:
    """One named metric value (the rows of a :class:`MetricsReport`).

    Attributes:
        name: dotted metric name (``"sim.flows_completed"``).
        kind: ``"counter"``, ``"gauge"`` or ``"histogram"``.
        value: the counter total / gauge value / histogram mean.
        count: observation count (histograms; 0 otherwise).
    """

    name: str
    kind: str
    value: float
    count: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricLine":
        return cls(
            name=data["name"],
            kind=data["kind"],
            value=data["value"],
            count=data.get("count", 0),
        )


@dataclass(frozen=True)
class MetricsReport:
    """Deterministic simulator counters (the ``"metrics"`` output).

    Entries are sorted by name, and every value derives from simulation
    state (event counts, sim-time durations) — never wall clock — so the
    report is byte-stable across runs and machines.
    """

    entries: tuple[MetricLine, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "entries",
            tuple(sorted(self.entries, key=lambda line: line.name)),
        )

    def value(self, name: str) -> float:
        """The value of metric ``name``.

        Raises:
            KeyError: for an unknown metric name.
        """
        for line in self.entries:
            if line.name == name:
                return line.value
        raise KeyError(name)

    def names(self) -> tuple[str, ...]:
        """Metric names, sorted."""
        return tuple(line.name for line in self.entries)

    @classmethod
    def from_registry(cls, registry: Any) -> "MetricsReport":
        """Build from a :class:`~repro.obs.metrics.MetricsRegistry`.

        Histograms keep their mean as the value and their observation
        count; counters and gauges carry their value directly.
        """
        entries = []
        for name, snap in registry.snapshot().items():
            if snap["kind"] == "histogram":
                entries.append(
                    MetricLine(
                        name=name,
                        kind="histogram",
                        value=snap["mean"],
                        count=snap["count"],
                    )
                )
            else:
                entries.append(
                    MetricLine(name=name, kind=snap["kind"], value=snap["value"])
                )
        return cls(entries=tuple(entries))

    def to_dict(self) -> dict[str, Any]:
        return {"entries": [line.to_dict() for line in self.entries]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsReport":
        return cls(
            entries=tuple(MetricLine.from_dict(e) for e in data["entries"])
        )


@dataclass(frozen=True)
class RunResult:
    """Everything one spec evaluation produced; sections not requested
    by ``spec.outputs`` are ``None``.
    """

    spec: ScenarioSpec
    fabric: str
    capabilities: tuple[tuple[str, str], ...] | None = None
    costs: CostReport | None = None
    utilization: tuple[UtilizationRow, ...] | None = None
    congestion: CongestionSummary | None = None
    telemetry: TelemetryReport | None = None
    link_utilization: LinkUtilizationReport | None = None
    repair: RepairReport | None = None
    blast_radius: BlastRadiusSummary | None = None
    device: DeviceReport | None = None
    trace: TraceReport | None = None
    metrics: MetricsReport | None = None
    fleet: FleetReport | None = None
    tenancy: TenancyReport | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        The newer sections (``trace``, ``metrics``, ``fleet``) are
        emitted only when present: results that never requested them
        serialize to the exact bytes they did before those sections
        existed, which keeps the golden files (and every archived
        result) stable.
        """
        data = {
            "spec": self.spec.to_dict(),
            "fabric": self.fabric,
            "capabilities": (
                [list(r) for r in self.capabilities]
                if self.capabilities is not None
                else None
            ),
            "costs": self.costs.to_dict() if self.costs else None,
            "utilization": (
                [u.to_dict() for u in self.utilization]
                if self.utilization is not None
                else None
            ),
            "congestion": self.congestion.to_dict() if self.congestion else None,
            "telemetry": self.telemetry.to_dict() if self.telemetry else None,
            "link_utilization": (
                self.link_utilization.to_dict()
                if self.link_utilization
                else None
            ),
            "repair": self.repair.to_dict() if self.repair else None,
            "blast_radius": (
                self.blast_radius.to_dict() if self.blast_radius else None
            ),
            "device": self.device.to_dict() if self.device else None,
        }
        if self.trace is not None:
            data["trace"] = self.trace.to_dict()
        if self.metrics is not None:
            data["metrics"] = self.metrics.to_dict()
        if self.fleet is not None:
            data["fleet"] = self.fleet.to_dict()
        if self.tenancy is not None:
            data["tenancy"] = self.tenancy.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            fabric=data["fabric"],
            capabilities=(
                tuple(tuple(r) for r in data["capabilities"])
                if data.get("capabilities") is not None
                else None
            ),
            costs=(
                CostReport.from_dict(data["costs"]) if data.get("costs") else None
            ),
            utilization=(
                tuple(UtilizationRow.from_dict(u) for u in data["utilization"])
                if data.get("utilization") is not None
                else None
            ),
            congestion=(
                CongestionSummary.from_dict(data["congestion"])
                if data.get("congestion")
                else None
            ),
            telemetry=(
                TelemetryReport.from_dict(data["telemetry"])
                if data.get("telemetry")
                else None
            ),
            link_utilization=(
                LinkUtilizationReport.from_dict(data["link_utilization"])
                if data.get("link_utilization")
                else None
            ),
            repair=(
                RepairReport.from_dict(data["repair"])
                if data.get("repair")
                else None
            ),
            blast_radius=(
                BlastRadiusSummary.from_dict(data["blast_radius"])
                if data.get("blast_radius")
                else None
            ),
            device=(
                DeviceReport.from_dict(data["device"])
                if data.get("device")
                else None
            ),
            trace=(
                TraceReport.from_dict(data["trace"])
                if data.get("trace")
                else None
            ),
            metrics=(
                MetricsReport.from_dict(data["metrics"])
                if data.get("metrics")
                else None
            ),
            fleet=(
                FleetReport.from_dict(data["fleet"])
                if data.get("fleet")
                else None
            ),
            tenancy=(
                TenancyReport.from_dict(data["tenancy"])
                if data.get("tenancy")
                else None
            ),
        )

    def to_json(self, **kwargs: Any) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
