"""Fabric backends: one interface over the repo's interconnect models.

A :class:`FabricBackend` turns a :class:`~repro.api.spec.ScenarioSpec`
into the typed result sections of :class:`~repro.api.result.RunResult`.
Three implementations wrap the existing models:

* :class:`ElectricalBackend` — the static direct-connect torus baseline
  (:mod:`repro.topology.electrical`, :mod:`repro.failures.recovery`).
* :class:`PhotonicBackend` — the LIGHTPATH fabric with wavelength steering
  and circuit repair (:mod:`repro.core.fabric`, :mod:`repro.core.steering`,
  :mod:`repro.core.repair`).
* :class:`SwitchedBackend` — the NVSwitch-style big-switch server with
  host-side contention (:mod:`repro.topology.switched`).

New fabrics register by name via :func:`register_backend` and are selected
with ``ScenarioSpec.fabric`` — no caller changes needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from ..collectives.cost_model import CostParameters, ring_reduce_scatter
from ..collectives.primitives import (
    Interconnect,
    reduce_scatter_cost,
    reduce_scatter_stage_costs,
)
from ..core.fabric import LightpathRackFabric
from ..core.repair import RepairError, plan_optical_repair
from ..core.wafer import LightpathWafer
from ..failures.blast_radius import compare_policies, improvement_factor
from ..failures.inject import FleetFailureModel
from ..failures.recovery import ElectricalRecoveryAnalysis, RackMigrationPolicy
from ..fleet.simulator import YEAR_S, FleetConfig, FleetStats, simulate_fleet
from ..tenancy.simulator import TenancyConfig, TenancyStats, simulate_tenancy
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..phy.constants import CHIP_EGRESS_BYTES
from ..phy.mzi import MziSwitchDynamics
from ..phy.stitch_loss import StitchLossModel
from ..sim.runner import ScheduleResult, run_concurrent_schedules
from ..sim.traffic import MultiTenantWorkload
from ..topology.switched import SwitchedServer
from ..topology.tpu import TpuCluster, TpuRack
from .result import (
    AttemptLine,
    BlastRadiusSummary,
    CircuitLine,
    CongestionSummary,
    CostReport,
    DeviceReport,
    FleetPolicyReport,
    FleetReport,
    FleetSeriesPoint,
    LinkLoadLine,
    LinkUtilizationReport,
    MetricsReport,
    PolicyLine,
    RepairReport,
    SharedLinkLine,
    SliceCost,
    TelemetryLine,
    TelemetryReport,
    TenancyPolicyReport,
    TenancyReport,
    TenancySeriesPoint,
    TraceReport,
)
from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import FabricSession

__all__ = [
    "UnsupportedOutput",
    "FabricBackend",
    "ElectricalBackend",
    "PhotonicBackend",
    "SwitchedBackend",
    "register_backend",
    "unregister_backend",
    "create_backend",
    "available_backends",
]


class UnsupportedOutput(RuntimeError):
    """A backend cannot produce a requested result section."""


@runtime_checkable
class FabricBackend(Protocol):
    """What a fabric must provide to serve the experiment API.

    Each method computes one ``RunResult`` section for a spec, reading
    memoized topology artifacts from the session. Methods may raise
    :class:`UnsupportedOutput` for sections that make no sense on the
    fabric (e.g. optical repair on a switched server).
    """

    name: str

    def capability_rows(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> tuple[tuple[str, str], ...]:
        """(name, value) rows describing the fabric hardware."""
        ...

    def cost_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CostReport:
        """Closed-form per-slice collective costs (Tables 1/2)."""
        ...

    def congestion(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CongestionSummary:
        """Resource-sharing analysis of the scenario's tenants."""
        ...

    def telemetry(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TelemetryReport:
        """Measured execution on the fabric's performance model."""
        ...

    def link_utilization(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> LinkUtilizationReport:
        """Measured per-link load — the stranded-bandwidth evidence."""
        ...

    def repair(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> RepairReport:
        """Repair the spec's failed chip (Figures 6a/7)."""
        ...

    def device_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> DeviceReport:
        """Physical-layer device characterization (Figures 3a/3b)."""
        ...

    def blast_radius(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> BlastRadiusSummary:
        """Fleet-scale recovery-policy comparison (Section 4.2)."""
        ...

    def fleet_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> FleetReport:
        """Year-scale fleet reliability simulation (both fabrics)."""
        ...

    def tenancy_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TenancyReport:
        """Multi-tenant churn simulation (both fabrics)."""
        ...

    def trace(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TraceReport:
        """Event timeline of the scenario's execution (and recovery)."""
        ...

    def metrics(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> MetricsReport:
        """Deterministic simulator counters for the scenario."""
        ...


class _TorusBackendBase:
    """Shared logic for backends that run collectives on the rack torus."""

    name: str = ""
    interconnect: Interconnect

    # -- costs -------------------------------------------------------------------

    def cost_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CostReport:
        params = CostParameters()
        lines = []
        for slc in session.slices(spec):
            cost = reduce_scatter_cost(slc, self.interconnect)
            stages = reduce_scatter_stage_costs(slc, self.interconnect)
            lines.append(
                SliceCost(
                    slice_name=slc.name,
                    shape=slc.shape,
                    chips=slc.chip_count,
                    cost=cost,
                    stages=tuple(stages),
                    seconds=cost.seconds(spec.buffer_bytes, params),
                )
            )
        return CostReport(
            interconnect=self.interconnect.value,
            buffer_bytes=spec.buffer_bytes,
            slices=tuple(lines),
        )

    # -- telemetry ----------------------------------------------------------------

    def link_capacity_bytes(self, spec: ScenarioSpec) -> float:
        """Per-link capacity the simulator charges for this fabric."""
        raise NotImplementedError

    def telemetry(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TelemetryReport:
        torus = session.torus(spec.rack_shape)
        capacity = self.link_capacity_bytes(spec)
        capacities = {link: capacity for link in torus.links()}
        workload = MultiTenantWorkload(
            slices=session.slices(spec),
            buffer_bytes=spec.buffer_bytes,
            interconnect=self.interconnect,
        )
        params = CostParameters()
        results = run_concurrent_schedules(
            workload.schedules(), capacities, params.alpha_s, params.reconfig_s
        )
        return TelemetryReport(
            schedules=tuple(
                TelemetryLine(
                    name=r.name,
                    duration_s=r.duration_s,
                    transfer_s=r.transfer_s,
                    alpha_s=r.alpha_s,
                    reconfig_s=r.reconfig_s,
                    phase_durations_s=r.phase_durations_s,
                )
                for r in results
            )
        )

    def link_utilization(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> LinkUtilizationReport:
        """Run the scenario instrumented and report per-link load.

        The horizon is the last tenant's finish time — utilizations are
        fractions of what every link *could* have carried while anyone
        was still running, so links of an unused dimension show up as
        stranded capacity rather than being excluded.
        """
        torus = session.torus(spec.rack_shape)
        capacity = self.link_capacity_bytes(spec)
        capacities = {link: capacity for link in torus.links()}
        workload = MultiTenantWorkload(
            slices=session.slices(spec),
            buffer_bytes=spec.buffer_bytes,
            interconnect=self.interconnect,
        )
        params = CostParameters()
        results, telemetry = run_concurrent_schedules(
            workload.schedules(),
            capacities,
            params.alpha_s,
            params.reconfig_s,
            telemetry=True,
        )
        horizon = max((r.duration_s for r in results), default=0.0)
        lines = []
        for link in sorted(capacities, key=lambda li: (li.src, li.dst)):
            carried = telemetry.carried_bytes(link)
            lines.append(
                LinkLoadLine(
                    src=link.src,
                    dst=link.dst,
                    dimension=link.dimension(spec.rack_shape),
                    carried_bytes=carried,
                    mean_utilization=(
                        telemetry.utilization(link, horizon)
                        if horizon > 0
                        else 0.0
                    ),
                    peak_utilization=telemetry.peak_utilization(link),
                )
            )
        return LinkUtilizationReport(
            horizon_s=horizon,
            link_capacity_bytes_per_s=capacity,
            mean_utilization=(
                telemetry.mean_utilization(horizon) if horizon > 0 else 0.0
            ),
            links=tuple(lines),
        )

    # -- tracing and metrics ------------------------------------------------------

    def _traced_run(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> tuple[list[ScheduleResult], Tracer]:
        """Run the spec's workload with a tracer attached.

        The run is identical to the one ``telemetry`` measures — tracing
        observes without perturbing — so a trace and a telemetry report
        of the same spec describe the same execution.
        """
        torus = session.torus(spec.rack_shape)
        capacity = self.link_capacity_bytes(spec)
        capacities = {link: capacity for link in torus.links()}
        workload = MultiTenantWorkload(
            slices=session.slices(spec),
            buffer_bytes=spec.buffer_bytes,
            interconnect=self.interconnect,
        )
        params = CostParameters()
        tracer = Tracer()
        results = run_concurrent_schedules(
            workload.schedules(),
            capacities,
            params.alpha_s,
            params.reconfig_s,
            tracer=tracer,
        )
        return results, tracer

    def _trace_failure(
        self,
        session: "FabricSession",
        spec: ScenarioSpec,
        tracer: Tracer,
        t0_s: float,
    ) -> None:
        """Append this fabric's failure-recovery timeline at ``t0_s``."""
        raise NotImplementedError

    def trace(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TraceReport:
        """The scenario's full event timeline.

        The workload runs traced from t = 0; when the spec injects
        failures, the fabric's recovery story (Figures 6a/6b vs 7) is
        appended at the workload's horizon — a chip fails the moment the
        collectives finish, and the trace shows what recovery costs:
        microsecond MZI reconfigurations on the photonic fabric, a rack
        migration on the electrical one.
        """
        results, tracer = self._traced_run(session, spec)
        if spec.failures.failed_chips:
            horizon = max((r.duration_s for r in results), default=0.0)
            self._trace_failure(session, spec, tracer, horizon)
        return TraceReport.from_tracer(tracer)

    def metrics(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> MetricsReport:
        """Deterministic counters derived from a traced run.

        Every value is simulation-derived (event counts, sim-time
        durations) — no wall clock — so the report golden-tests cleanly.
        """
        results, tracer = self._traced_run(session, spec)
        registry = MetricsRegistry()
        events = tracer.events
        registry.counter("sim.flows_completed").inc(
            sum(1 for e in events if e.ph == "X" and e.cat == "flow")
        )
        registry.counter("sim.rate_rebalances").inc(
            sum(1 for e in events if e.ph == "i" and e.cat == "network")
        )
        registry.counter("sim.phases").inc(
            sum(1 for e in events if e.ph == "X" and e.cat == "phase")
        )
        registry.counter("sim.reconfig_windows").inc(
            sum(1 for e in events if e.ph == "X" and e.cat == "reconfig")
        )
        registry.counter("sim.schedules").inc(len(results))
        run_complete = [
            e for e in events if e.ph == "i" and e.cat == "engine"
        ]
        if run_complete:
            registry.counter("sim.engine_events").inc(
                dict(run_complete[-1].args)["events_processed"]
            )
        registry.gauge("sim.horizon_s").set(
            max((r.duration_s for r in results), default=0.0)
        )
        registry.gauge("sim.reconfig_s_total").set(
            sum(r.reconfig_s for r in results)
        )
        durations = registry.histogram("sim.schedule_duration_s")
        transfers = registry.histogram("sim.schedule_transfer_s")
        for result in results:
            durations.observe(result.duration_s)
            transfers.observe(result.transfer_s)
        return MetricsReport.from_registry(registry)

    # -- fleet blast radius -------------------------------------------------------

    def blast_radius(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> BlastRadiusSummary:
        plan = spec.failures
        if plan.fleet_days <= 0:
            raise UnsupportedOutput(
                "blast_radius needs failures.fleet_days > 0"
            )
        events = FleetFailureModel(TpuCluster(), seed=plan.seed).sample_failures(
            plan.fleet_days * 24 * 3600.0
        )
        rack_report, optical_report = compare_policies(events)

        def line(report) -> PolicyLine:
            return PolicyLine(
                policy=report.policy,
                failures=report.failures,
                blast_radius_chips=report.blast_radius_chips,
                total_chip_impact=report.total_chip_impact,
                total_downtime_s=report.total_downtime_s,
                lost_chip_seconds=report.lost_chip_seconds,
            )

        return BlastRadiusSummary(
            days=plan.fleet_days,
            rack_policy=line(rack_report),
            optical_policy=line(optical_report),
            improvement_factor=improvement_factor(rack_report, optical_report),
        )

    # -- fleet reliability simulation ---------------------------------------------

    def fleet_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> FleetReport:
        """Simulate ``fleet.days`` of fleet life on both fabrics.

        Both runs share the seeded renewal process and dispatch policy,
        so the availability gap isolates the repair mechanism: rack
        migration with a concurrency budget versus spare splicing with a
        per-rack inventory.
        """
        plan = spec.fleet
        if plan.days <= 0:
            raise UnsupportedOutput('the "fleet" output needs fleet.days > 0')
        config = FleetConfig(
            racks=plan.racks,
            horizon_s=plan.days * 24 * 3600.0,
            mtbf_s=plan.mtbf_years * YEAR_S,
            seed=plan.seed,
            max_concurrent_migrations=plan.max_concurrent_migrations,
            spare_inventory=plan.spare_inventory,
            spare_replenish_s=plan.spare_replenish_s,
            series_points=plan.series_points,
        )

        def run(fabric: str) -> FleetPolicyReport:
            stats: FleetStats = simulate_fleet(
                config,
                fabric,
                policy=plan.policy,
                lazy_threshold=plan.lazy_threshold,
                batch_interval_s=plan.batch_interval_s,
            )
            return FleetPolicyReport(
                fabric=stats.fabric,
                failures=stats.failures,
                repairs=stats.repairs,
                unrepaired=stats.unrepaired,
                events_processed=stats.events_processed,
                mean_availability=stats.mean_availability,
                min_available_chips=stats.min_available_chips,
                peak_failed_chips=stats.peak_failed_chips,
                lost_chip_seconds=stats.lost_chip_seconds,
                collateral_chip_seconds=stats.collateral_chip_seconds,
                ttr_p50_s=stats.ttr_p50_s,
                ttr_p90_s=stats.ttr_p90_s,
                ttr_p99_s=stats.ttr_p99_s,
                ttr_max_s=stats.ttr_max_s,
                series=tuple(
                    FleetSeriesPoint(
                        start_s=start,
                        end_s=end,
                        mean_available_chips=mean,
                    )
                    for start, end, mean in stats.series
                ),
            )

        return FleetReport(
            days=plan.days,
            chips=config.chips,
            seed=plan.seed,
            policy=plan.policy,
            electrical=run("electrical"),
            photonic=run("photonic"),
        )

    # -- multi-tenant churn simulation ---------------------------------------------

    def tenancy_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TenancyReport:
        """Simulate ``tenancy.days`` of tenant churn on both fabrics.

        Both runs place the same seeded job stream with the same base
        policy over a cluster of the spec's ``rack_shape`` tori; only
        the photonic run may steer wavelengths (when the plan allows),
        so the gaps isolate what reconfigurable reach is worth under
        fragmentation.
        """
        plan = spec.tenancy
        if plan.days <= 0:
            raise UnsupportedOutput('the "tenancy" output needs tenancy.days > 0')
        config = TenancyConfig(
            rack_shape=spec.rack_shape,
            racks=plan.racks,
            horizon_s=plan.days * 24 * 3600.0,
            arrivals_per_day=plan.arrivals_per_day,
            profile=plan.profile,
            seed=plan.seed,
            mean_duration_s=plan.mean_duration_s,
            max_queue_wait_s=plan.max_queue_wait_s,
            steer_circuits=plan.steer_circuits,
            series_points=plan.series_points,
        )

        def run(fabric: str) -> TenancyPolicyReport:
            stats: TenancyStats = simulate_tenancy(
                config,
                fabric,
                policy=plan.policy,
                steering=plan.steering and fabric == "photonic",
            )
            return TenancyPolicyReport(
                fabric=stats.fabric,
                steering=stats.steering,
                arrivals=stats.arrivals,
                placed=stats.placed,
                steered_placements=stats.steered_placements,
                rejected=stats.rejected,
                completed=stats.completed,
                running_at_horizon=stats.running_at_horizon,
                queued_at_horizon=stats.queued_at_horizon,
                defrag_moves=stats.defrag_moves,
                events_processed=stats.events_processed,
                mean_occupancy=stats.mean_occupancy,
                queue_delay_mean_s=stats.queue_delay_mean_s,
                queue_delay_p50_s=stats.queue_delay_p50_s,
                queue_delay_p90_s=stats.queue_delay_p90_s,
                queue_delay_p99_s=stats.queue_delay_p99_s,
                queue_delay_max_s=stats.queue_delay_max_s,
                rejection_rate=stats.rejection_rate,
                stranded_chip_seconds=stats.stranded_chip_seconds,
                stranded_fraction=stats.stranded_fraction,
                circuits_peak=stats.circuits_peak,
                series=tuple(
                    TenancySeriesPoint(
                        start_s=start,
                        end_s=end,
                        mean_occupied_chips=mean,
                        largest_allocatable_chips=largest,
                        free_chips=free,
                    )
                    for start, end, mean, largest, free in stats.series
                ),
            )

        return TenancyReport(
            days=plan.days,
            chips=config.total_chips,
            seed=plan.seed,
            policy=plan.policy,
            profile=plan.profile,
            electrical=run("electrical"),
            photonic=run("photonic"),
        )

    # -- unsupported defaults ------------------------------------------------------

    def device_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> DeviceReport:
        raise UnsupportedOutput(
            f"the {self.name} fabric has no photonic device models"
        )


def _first_failure(spec: ScenarioSpec) -> tuple[int, ...]:
    if not spec.failures.failed_chips:
        raise UnsupportedOutput('the "repair" output needs failures.failed_chips')
    return spec.failures.failed_chips[0]


class ElectricalBackend(_TorusBackendBase):
    """Static direct-connect electrical torus (the paper's baseline)."""

    name = "electrical"
    interconnect = Interconnect.ELECTRICAL

    def capability_rows(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> tuple[tuple[str, str], ...]:
        electrical = session.electrical(spec.rack_shape)
        return (
            ("chip egress", f"{electrical.chip_egress_bytes / 1e9:.0f} GB/s"),
            ("wired dimensions", str(electrical.wired_dimensions)),
            (
                "per-link bandwidth",
                f"{electrical.link_bandwidth_bytes() / 1e9:.0f} GB/s",
            ),
            ("switching", "none (hop-by-hop forwarding)"),
        )

    def link_capacity_bytes(self, spec: ScenarioSpec) -> float:
        dims = sum(1 for s in spec.rack_shape if s > 1)
        return CHIP_EGRESS_BYTES / max(dims, 1)

    def congestion(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CongestionSummary:
        report = session.rack_congestion(spec)
        return CongestionSummary(
            congestion_free=report.is_congestion_free,
            shared_links=tuple(
                SharedLinkLine(
                    src=s.link.src, dst=s.link.dst, users=s.users
                )
                for s in report.shared_links
            ),
            worst_multiplicity=report.worst_multiplicity,
            per_slice_congested_dims=dict(report.per_slice_congested_dims),
        )

    def repair(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> RepairReport:
        failed = _first_failure(spec)
        torus = session.torus(spec.rack_shape)
        allocator = session.allocator(spec)
        slc = session.slice_of_chip(spec, failed)
        analysis = ElectricalRecoveryAnalysis(
            torus, allocator, max_hops=spec.failures.max_hops
        )
        attempts = analysis.evaluate_all_free_chips(slc, failed)
        return RepairReport(
            kind="electrical",
            failed=failed,
            feasible=any(a.feasible for a in attempts),
            attempts=tuple(
                AttemptLine(
                    free_chip=a.free_chip,
                    feasible=a.feasible,
                    congested_links=a.total_congested_links,
                )
                for a in attempts
            ),
        )

    def _trace_failure(
        self,
        session: "FabricSession",
        spec: ScenarioSpec,
        tracer: Tracer,
        t0_s: float,
    ) -> None:
        """The Figure 6a/6b story as a timeline.

        A chip fails at ``t0_s``; every free chip is evaluated as a
        replacement (each an instant event carrying its congested-link
        count); since none is congestion-free, the rack-migration
        fallback runs — a span whose ~600 s duration dwarfs everything
        else on the timeline.
        """
        failed = _first_failure(spec)
        torus = session.torus(spec.rack_shape)
        allocator = session.allocator(spec)
        slc = session.slice_of_chip(spec, failed)
        tracer.instant(
            "chip-failure",
            cat="failure",
            ts_s=t0_s,
            args={"chip": list(failed), "slice": slc.name},
        )
        analysis = ElectricalRecoveryAnalysis(
            torus, allocator, max_hops=spec.failures.max_hops
        )
        attempts = analysis.evaluate_all_free_chips(slc, failed)
        for attempt in attempts:
            tracer.instant(
                f"replacement-candidate {attempt.free_chip}",
                cat="recovery",
                ts_s=t0_s,
                args={
                    "free_chip": list(attempt.free_chip),
                    "feasible": attempt.feasible,
                    "congested_links": attempt.total_congested_links,
                },
            )
        if any(a.feasible for a in attempts):
            tracer.instant(
                "congestion-free-replacement", cat="recovery", ts_s=t0_s
            )
            return
        policy = RackMigrationPolicy()
        latency = policy.recovery_latency_s()
        tracer.complete(
            "rack-migration",
            cat="recovery",
            start_s=t0_s,
            end_s=t0_s + latency,
            args={
                "checkpoint_restore_s": policy.checkpoint_restore_s,
                "ocs_reconfigure_s": policy.ocs_reconfigure_s,
                "blast_radius_chips": policy.rack_chips,
            },
        )
        tracer.instant(
            "slice-recovered", cat="recovery", ts_s=t0_s + latency
        )


class PhotonicBackend(_TorusBackendBase):
    """The LIGHTPATH server-scale photonic fabric."""

    name = "photonic"
    interconnect = Interconnect.OPTICAL

    def capability_rows(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> tuple[tuple[str, str], ...]:
        return tuple(LightpathWafer().capabilities().rows())

    def link_capacity_bytes(self, spec: ScenarioSpec) -> float:
        # Steering concentrates the full chip egress onto the active rings.
        return CHIP_EGRESS_BYTES

    def congestion(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CongestionSummary:
        # Circuits own their wavelength, waveguide tracks and fibers, so
        # the fabric is congestion-free by construction (Section 3).
        return CongestionSummary(congestion_free=True)

    def repair(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> RepairReport:
        failed = _first_failure(spec)
        allocator = session.allocator(spec)
        slc = session.slice_of_chip(spec, failed)
        # The fabric and rack are built fresh: repair fails the chip and
        # allocates circuits, so a memoized instance would leak state
        # between runs.
        rack = TpuRack(0, shape=spec.rack_shape)
        fabric = LightpathRackFabric(rack)
        try:
            plan = plan_optical_repair(
                fabric, allocator, slc, failed,
                replacement=spec.failures.replacement,
            )
        except RepairError:
            return RepairReport(kind="optical", failed=failed, feasible=False)
        return RepairReport(
            kind="optical",
            failed=failed,
            feasible=True,
            replacement=plan.replacement,
            circuits=tuple(
                CircuitLine(
                    src=c.src,
                    dst=c.dst,
                    server_path=c.server_path,
                    fiber_hops=c.fiber_hops,
                )
                for c in plan.circuits
            ),
            setup_latency_s=plan.setup_latency_s,
            fibers_used=plan.fibers_used,
            blast_radius_chips=plan.blast_radius_chips,
        )

    def _trace_failure(
        self,
        session: "FabricSession",
        spec: ScenarioSpec,
        tracer: Tracer,
        t0_s: float,
    ) -> None:
        """The Figure 7 story as a timeline.

        A chip fails at ``t0_s``; the repair planner splices in a spare
        over dedicated circuits, each an MZI reconfiguration span of the
        paper's 3.7 us (all switched in parallel), and the slice is back
        microseconds later — the counterpoint to the electrical rack
        migration.
        """
        failed = _first_failure(spec)
        allocator = session.allocator(spec)
        slc = session.slice_of_chip(spec, failed)
        tracer.instant(
            "chip-failure",
            cat="failure",
            ts_s=t0_s,
            args={"chip": list(failed), "slice": slc.name},
        )
        rack = TpuRack(0, shape=spec.rack_shape)
        fabric = LightpathRackFabric(rack)
        try:
            plan = plan_optical_repair(
                fabric, allocator, slc, failed,
                replacement=spec.failures.replacement,
            )
        except RepairError as exc:
            tracer.instant(
                "repair-failed",
                cat="recovery",
                ts_s=t0_s,
                args={"reason": str(exc)},
            )
            return
        for circuit in plan.circuits:
            tracer.complete(
                f"mzi-reconfigure {circuit.src}->{circuit.dst}",
                cat="reconfig",
                start_s=t0_s,
                end_s=t0_s + circuit.setup_latency_s,
                args={"fiber_hops": circuit.fiber_hops},
            )
        tracer.complete(
            "optical-repair",
            cat="recovery",
            start_s=t0_s,
            end_s=t0_s + plan.setup_latency_s,
            args={
                "replacement": list(plan.replacement),
                "circuits": len(plan.circuits),
                "fibers_used": plan.fibers_used,
                "blast_radius_chips": plan.blast_radius_chips,
            },
        )
        tracer.instant(
            "slice-recovered",
            cat="recovery",
            ts_s=t0_s + plan.setup_latency_s,
        )

    def device_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> DeviceReport:
        device = spec.device
        dynamics = MziSwitchDynamics(rng=np.random.default_rng(spec.seed))
        trace = dynamics.measure_step(
            duration_s=device.mzi_duration_s, samples=device.mzi_samples
        )
        fit = dynamics.fit_exponential(trace)
        model = StitchLossModel(rng=np.random.default_rng(spec.seed))
        hist = model.histogram(
            samples=device.stitch_samples, bins=device.stitch_bins
        )
        return DeviceReport(
            mzi_tau_s=fit.tau_s,
            mzi_settling_s=fit.settling_time(0.05),
            stitch_bin_edges_db=tuple(hist.bin_edges_db),
            stitch_counts=tuple(int(c) for c in hist.counts),
            stitch_mean_db=hist.mean_db,
            stitch_p95_db=hist.p95_db,
        )


class SwitchedBackend:
    """NVSwitch-style big-switch server with host-side contention."""

    name = "switched"

    def __init__(self, host_contention_per_flow: float = 0.1, fanin: int = 4):
        self.host_contention_per_flow = host_contention_per_flow
        self.fanin = fanin

    def capability_rows(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> tuple[tuple[str, str], ...]:
        return (
            ("port bandwidth", f"{CHIP_EGRESS_BYTES / 1e9:.0f} GB/s"),
            ("switching", "central crossbar (big-switch abstraction)"),
            (
                "host contention",
                f"{self.host_contention_per_flow:.0%} per extra inbound flow",
            ),
        )

    def _server(self, spec: ScenarioSpec) -> SwitchedServer:
        chips = 1
        for extent in spec.rack_shape:
            chips *= extent
        return SwitchedServer(
            accelerators=chips,
            host_contention_per_flow=self.host_contention_per_flow,
        )

    def _shuffle(self, spec: ScenarioSpec) -> SwitchedServer:
        """A ``fanin``-way shuffle: each port receives from ``fanin`` peers.

        This is the moderate-fan-in regime where the cited host-side
        contention bites without saturating the contention model.
        """
        server = self._server(spec)
        ports = server.accelerators
        k = min(self.fanin, ports - 1)
        demand = server.port_bandwidth_bytes / k
        for src in range(ports):
            for step in range(1, k + 1):
                server.add_flow(src, (src + step) % ports, demand)
        return server

    def cost_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CostReport:
        # The big switch promises full-bandwidth rings regardless of slice
        # geometry; the broken promise shows up in congestion/telemetry.
        params = CostParameters()
        lines = []
        for slc in session.slices(spec):
            cost = ring_reduce_scatter(slc.chip_count, 1.0)
            lines.append(
                SliceCost(
                    slice_name=slc.name,
                    shape=slc.shape,
                    chips=slc.chip_count,
                    cost=cost,
                    stages=(cost,),
                    seconds=cost.seconds(spec.buffer_bytes, params),
                )
            )
        return CostReport(
            interconnect="switched",
            buffer_bytes=spec.buffer_bytes,
            slices=tuple(lines),
        )

    def congestion(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> CongestionSummary:
        server = self._shuffle(spec)
        loss = server.contention_loss_fraction()
        return CongestionSummary(
            congestion_free=loss == 0.0,
            contention_loss_fraction=loss,
        )

    def telemetry(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TelemetryReport:
        server = self._shuffle(spec)
        return TelemetryReport(
            aggregate_throughput_bytes=server.aggregate_throughput_bytes(),
            ideal_throughput_bytes=server.ideal_throughput_bytes(),
        )

    def link_utilization(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> LinkUtilizationReport:
        raise UnsupportedOutput(
            "the switched fabric has no per-link torus topology; its "
            'contention story lives in the "telemetry" output'
        )

    def repair(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> RepairReport:
        raise UnsupportedOutput(
            "the switched fabric models a single server; chip repair is a "
            "host maintenance event, not a fabric operation"
        )

    def device_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> DeviceReport:
        raise UnsupportedOutput(
            "the switched fabric has no photonic device models"
        )

    def blast_radius(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> BlastRadiusSummary:
        raise UnsupportedOutput(
            "blast-radius policies compare torus recovery strategies"
        )

    def fleet_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> FleetReport:
        raise UnsupportedOutput(
            "the fleet simulation compares torus repair mechanisms; the "
            "switched fabric models a single server"
        )

    def tenancy_report(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TenancyReport:
        raise UnsupportedOutput(
            "the tenancy simulation places slices on torus racks; the "
            "switched fabric models a single server"
        )

    def trace(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> TraceReport:
        raise UnsupportedOutput(
            "the switched fabric's contention model is closed-form — there "
            'is no event timeline to trace; use the "metrics" output'
        )

    def metrics(
        self, session: "FabricSession", spec: ScenarioSpec
    ) -> MetricsReport:
        """Contention counters from the closed-form switch model."""
        server = self._shuffle(spec)
        registry = MetricsRegistry()
        registry.counter("switched.flows").inc(len(server.flows))
        registry.gauge("switched.ports").set(server.accelerators)
        registry.gauge("switched.aggregate_throughput_bytes").set(
            server.aggregate_throughput_bytes()
        )
        registry.gauge("switched.ideal_throughput_bytes").set(
            server.ideal_throughput_bytes()
        )
        registry.gauge("switched.contention_loss_fraction").set(
            server.contention_loss_fraction()
        )
        return MetricsReport.from_registry(registry)


# -- registry --------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], FabricBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], FabricBackend], replace: bool = False
) -> None:
    """Register a fabric backend under ``name``.

    Args:
        name: the name specs select the backend by.
        factory: zero-argument callable producing a backend instance.
        replace: allow overwriting an existing registration.

    Raises:
        ValueError: when the name is taken and ``replace`` is false.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True "
            "to overwrite it"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for tests).

    Raises:
        KeyError: for an unknown name.
    """
    del _REGISTRY[name]


def create_backend(name: str) -> FabricBackend:
    """Instantiate the backend registered under ``name``.

    Raises:
        KeyError: for an unknown name, listing what is available.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no fabric backend named {name!r}; available: "
            f"{available_backends()}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


register_backend("electrical", ElectricalBackend)
register_backend("photonic", PhotonicBackend)
register_backend("switched", SwitchedBackend)
# The paper (and the cost model) call the LIGHTPATH side "optical".
register_backend("optical", PhotonicBackend)
