"""The experiment API: ScenarioSpec -> FabricSession -> RunResult.

One surface over the whole stack: describe an experiment as a frozen
:class:`ScenarioSpec`, evaluate it with :func:`run` (or an explicit
:class:`FabricSession` for artifact reuse across sweeps), and get a typed,
JSON-round-trippable :class:`RunResult`. Fabrics are pluggable: the
built-in ``electrical``, ``photonic`` and ``switched`` backends wrap the
existing models, and third parties add their own with
:func:`register_backend` — selected by ``ScenarioSpec.fabric`` with no
caller changes.

Sweeps scale out through the batch layer: :func:`run_many` fans a list
of specs (or a :class:`SweepPlan` grid) across worker processes and a
persistent content-addressed :class:`DiskResultCache`, so repeated
sweeps hit disk instead of recomputing.

Observability is opt-in: request the ``"trace"`` output on a sim-mode
spec for a Chrome-traceable event timeline (:class:`TraceReport`), the
``"metrics"`` output for deterministic simulator counters
(:class:`MetricsReport`), and pass a
:class:`~repro.obs.metrics.MetricsRegistry` to :class:`FabricSession` or
:func:`run_many` for cache/timing instrumentation. Leaving all three off
changes nothing — results and their JSON stay byte-identical.
"""

from .backends import (
    ElectricalBackend,
    FabricBackend,
    PhotonicBackend,
    SwitchedBackend,
    UnsupportedOutput,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from .batch import SpecRun, SweepPlan, SweepResult, run_many
from .cache import (
    CacheStats,
    DiskResultCache,
    MemoryResultCache,
    NullResultCache,
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    spec_key,
    tier_cache_stats,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TraceEvent, Tracer
from .result import (
    AttemptLine,
    BlastRadiusSummary,
    CircuitLine,
    CongestionSummary,
    CostReport,
    DeviceReport,
    FleetPolicyReport,
    FleetReport,
    FleetSeriesPoint,
    LinkLoadLine,
    LinkUtilizationReport,
    MetricLine,
    MetricsReport,
    PolicyLine,
    RepairReport,
    RunResult,
    SharedLinkLine,
    SliceCost,
    TelemetryLine,
    TelemetryReport,
    TenancyPolicyReport,
    TenancyReport,
    TenancySeriesPoint,
    TraceReport,
    UtilizationRow,
)
from .session import FabricSession, compare, default_session, run
from .spec import (
    KNOWN_OUTPUTS,
    DeviceSpec,
    FailurePlan,
    FleetPlan,
    ScenarioSpec,
    TenancyPlan,
    SliceSpec,
    figure5b_slices,
    figure6_slices,
    table1_slices,
    table2_slices,
)

__all__ = [
    # spec
    "ScenarioSpec",
    "SliceSpec",
    "FailurePlan",
    "FleetPlan",
    "TenancyPlan",
    "DeviceSpec",
    "KNOWN_OUTPUTS",
    "figure5b_slices",
    "figure6_slices",
    "table1_slices",
    "table2_slices",
    # session
    "FabricSession",
    "run",
    "compare",
    "default_session",
    # batch execution
    "SweepPlan",
    "SpecRun",
    "SweepResult",
    "run_many",
    # caching
    "CacheStats",
    "ResultCache",
    "MemoryResultCache",
    "DiskResultCache",
    "NullResultCache",
    "spec_key",
    "code_fingerprint",
    "default_cache_dir",
    "tier_cache_stats",
    # backends
    "FabricBackend",
    "ElectricalBackend",
    "PhotonicBackend",
    "SwitchedBackend",
    "UnsupportedOutput",
    "register_backend",
    "unregister_backend",
    "create_backend",
    "available_backends",
    # results
    "RunResult",
    "CostReport",
    "SliceCost",
    "UtilizationRow",
    "CongestionSummary",
    "SharedLinkLine",
    "TelemetryReport",
    "TelemetryLine",
    "LinkUtilizationReport",
    "LinkLoadLine",
    "RepairReport",
    "CircuitLine",
    "AttemptLine",
    "BlastRadiusSummary",
    "PolicyLine",
    "FleetReport",
    "FleetPolicyReport",
    "FleetSeriesPoint",
    "TenancyReport",
    "TenancyPolicyReport",
    "TenancySeriesPoint",
    "DeviceReport",
    # observability
    "TraceReport",
    "TraceEvent",
    "Tracer",
    "MetricsReport",
    "MetricLine",
    "MetricsRegistry",
]
