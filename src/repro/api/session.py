"""FabricSession: memoized artifact construction and spec execution.

The session is the single place topology artifacts are built: tori,
slice allocators, electrical interconnects, and full run results are
memoized per spec (specs are frozen and hashable), so sweeps that share a
geometry pay construction once. Mutable artifacts that a run would dirty
(the LIGHTPATH rack fabric during a repair) are deliberately *not*
memoized — backends build those fresh per run.

Usage::

    from repro.api import ScenarioSpec, run, figure5b_slices

    spec = ScenarioSpec(
        fabric="photonic", slices=figure5b_slices(),
        outputs=("costs", "utilization"),
    )
    result = run(spec)
    print(result.costs.by_name("Slice-1").seconds)
"""

from __future__ import annotations

import time
from contextlib import nullcontext as _null_context
from typing import Iterable

from ..analysis.congestion_report import (
    RackCongestionReport,
    analyze_rack_congestion,
)
from ..analysis.utilization import slice_utilization
from ..kernels import KERNELS, STATS as _KERNEL_STATS, use_kernel
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import NULL_RUNTIME_TRACER, RuntimeTracer
from ..topology.electrical import ElectricalInterconnect
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Torus
from .backends import FabricBackend, UnsupportedOutput, create_backend
from .cache import CacheStats, MemoryResultCache, ResultCache, spec_key
from .result import RunResult, UtilizationRow
from .spec import ScenarioSpec

__all__ = ["FabricSession", "run", "compare", "default_session"]


class FabricSession:
    """Builds and caches the artifacts one or many specs need.

    Evaluated results are stored in a pluggable :class:`ResultCache`
    under the layout-independent content key of the spec
    (:func:`~repro.api.cache.spec_key`), so the in-memory default and a
    persistent :class:`~repro.api.cache.DiskResultCache` agree on what a
    "repeat" is — including across processes and runs.

    Attributes:
        result_cache: where evaluated results are stored; defaults to a
            per-process :class:`~repro.api.cache.MemoryResultCache`.
        runs_executed: specs actually evaluated (cache misses) — lets
            callers verify memoization in sweeps.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            the session reports into (``session.<fabric>.cache_hits``,
            ``.cache_misses`` counters and an ``.eval_seconds``
            histogram per fabric, plus ``kernel.<backend>.<op>.calls`` /
            ``.seconds`` counters for kernel hot-path time). ``None``
            reports nothing.
        kernel: evaluation kernel backend this session's runs use
            (``"vectorized"`` or ``"reference"``); ``None`` (default)
            follows the process-wide selection
            (:func:`repro.kernels.active_kernel`). Results are
            byte-identical either way — this only pins which code path
            computes them.
        runtime: optional wall-clock
            :class:`~repro.obs.runtime.RuntimeTracer` the session emits
            cache-probe and evaluation spans into (the serving tier
            passes its per-process tracer; defaults to the zero-overhead
            :data:`~repro.obs.runtime.NULL_RUNTIME_TRACER`).
    """

    def __init__(
        self,
        result_cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        kernel: str | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        if kernel is not None and kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        self.kernel = kernel
        self.runtime = runtime if runtime is not None else NULL_RUNTIME_TRACER
        self._backends: dict[str, FabricBackend] = {}
        self._tori: dict[tuple[int, ...], Torus] = {}
        self._allocators: dict[tuple, SliceAllocator] = {}
        self._electrical: dict[tuple[int, ...], ElectricalInterconnect] = {}
        self._congestion: dict[tuple, RackCongestionReport] = {}
        self.result_cache: ResultCache = (
            result_cache if result_cache is not None else MemoryResultCache()
        )
        self.metrics = metrics
        # Hit/miss/eval-time bookkeeping is kept per fabric so a
        # multi-backend sweep can tell which backend's memoization is
        # actually doing the work; cache_stats() sums for the totals.
        self._per_fabric: dict[str, dict[str, float]] = {}
        self._eval_seconds = 0.0
        self.runs_executed = 0

    def _fabric_stats(self, fabric: str) -> dict[str, float]:
        stats = self._per_fabric.get(fabric)
        if stats is None:
            stats = {"hits": 0, "misses": 0, "eval_seconds": 0.0}
            self._per_fabric[fabric] = stats
        return stats

    # -- memoized artifacts --------------------------------------------------------

    def backend(self, name: str) -> FabricBackend:
        """The backend registered under ``name`` (one instance per session)."""
        if name not in self._backends:
            self._backends[name] = create_backend(name)
        return self._backends[name]

    def torus(self, rack_shape: tuple[int, ...]) -> Torus:
        """The rack torus for ``rack_shape``."""
        if rack_shape not in self._tori:
            self._tori[rack_shape] = Torus(rack_shape)
        return self._tori[rack_shape]

    def electrical(self, rack_shape: tuple[int, ...]) -> ElectricalInterconnect:
        """The electrical interconnect model over the rack torus."""
        if rack_shape not in self._electrical:
            self._electrical[rack_shape] = ElectricalInterconnect(
                self.torus(rack_shape)
            )
        return self._electrical[rack_shape]

    @staticmethod
    def _layout_key(spec: ScenarioSpec) -> tuple:
        return (spec.rack_shape, spec.slices)

    def allocator(self, spec: ScenarioSpec) -> SliceAllocator:
        """The slice allocator with the spec's tenants allocated.

        Memoized per (rack shape, slices); backends must treat it as
        read-only.

        Raises:
            ValueError: when the spec has no slices (nothing to allocate).
        """
        if not spec.slices:
            raise ValueError(f"spec for {spec.fabric!r} declares no slices")
        key = self._layout_key(spec)
        if key not in self._allocators:
            allocator = SliceAllocator(self.torus(spec.rack_shape))
            for entry in spec.slices:
                allocator.allocate(entry.name, entry.shape, entry.offset)
            self._allocators[key] = allocator
        return self._allocators[key]

    def slices(self, spec: ScenarioSpec) -> list[Slice]:
        """The spec's slices in allocation order."""
        allocator = self.allocator(spec)
        by_name = {slc.name: slc for slc in allocator.slices}
        return [by_name[entry.name] for entry in spec.slices]

    def slice_of_chip(self, spec: ScenarioSpec, chip: tuple[int, ...]) -> Slice:
        """The tenant slice containing ``chip``.

        Raises:
            ValueError: when no slice contains the chip.
        """
        for slc in self.allocator(spec).slices:
            if slc.contains(chip):
                return slc
        raise ValueError(f"no slice of the spec contains chip {chip}")

    def rack_congestion(self, spec: ScenarioSpec) -> RackCongestionReport:
        """Cross-tenant ring congestion for the spec's layout (memoized)."""
        key = self._layout_key(spec)
        if key not in self._congestion:
            self._congestion[key] = analyze_rack_congestion(self.allocator(spec))
        return self._congestion[key]

    # -- execution ---------------------------------------------------------------

    def run(self, spec: ScenarioSpec) -> RunResult:
        """Evaluate ``spec``, returning the cached result on a repeat.

        Raises:
            KeyError: for an unregistered fabric name.
            UnsupportedOutput: when the backend cannot produce a section.
        """
        key = spec_key(spec)
        runtime = self.runtime
        probe_start = runtime.now() if runtime.enabled else 0.0
        cached = self.result_cache.get(key)
        if runtime.enabled:
            runtime.complete(
                "session.cache_probe",
                "session",
                probe_start,
                runtime.now(),
                args={
                    "fabric": spec.fabric,
                    "outcome": "hit" if cached is not None else "miss",
                },
            )
        if cached is not None:
            self._fabric_stats(spec.fabric)["hits"] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"session.{spec.fabric}.cache_hits"
                ).inc()
            return cached
        backend = self.backend(spec.fabric)
        methods = {
            "capabilities": "capability_rows",
            "costs": "cost_report",
            "congestion": "congestion",
            "telemetry": "telemetry",
            "link_utilization": "link_utilization",
            "repair": "repair",
            "blast_radius": "blast_radius",
            "device": "device_report",
            "trace": "trace",
            "metrics": "metrics",
            "fleet": "fleet_report",
            "tenancy": "tenancy_report",
        }
        started = time.perf_counter()
        eval_start = runtime.now() if runtime.enabled else 0.0
        kernel_before = (
            _KERNEL_STATS.snapshot()
            if self.metrics is not None or runtime.enabled
            else None
        )
        sections: dict[str, object] = {}
        with use_kernel(self.kernel) if self.kernel is not None else (
            _null_context()
        ):
            for output in spec.outputs:
                if output == "utilization":
                    sections["utilization"] = self._utilization(spec)
                    continue
                method = getattr(backend, methods[output], None)
                if method is None:
                    raise UnsupportedOutput(
                        f"backend {spec.fabric!r} does not implement the"
                        f" {output!r} output"
                    )
                sections[output] = method(self, spec)
        result = RunResult(spec=spec, fabric=backend.name, **sections)
        elapsed = time.perf_counter() - started
        if runtime.enabled and kernel_before is not None:
            runtime.complete(
                "session.evaluate",
                "session",
                eval_start,
                runtime.now(),
                args={
                    "fabric": spec.fabric,
                    "outputs": len(spec.outputs),
                    **self._kernel_deltas(kernel_before),
                },
            )
        if self.metrics is not None and kernel_before is not None:
            self._report_kernel_stats(kernel_before)
        self._eval_seconds += elapsed
        stats = self._fabric_stats(spec.fabric)
        stats["misses"] += 1
        stats["eval_seconds"] += elapsed
        if self.metrics is not None:
            self.metrics.counter(f"session.{spec.fabric}.cache_misses").inc()
            self.metrics.histogram(
                f"session.{spec.fabric}.eval_seconds"
            ).observe(elapsed)
        self.runs_executed += 1
        self.result_cache.put(key, result)
        return result

    @staticmethod
    def _kernel_deltas(
        before: dict[str, dict[str, float]]
    ) -> dict[str, float]:
        """Per-op kernel time spent since ``before``, as flat span args
        (``kernel.<backend>.<op>.calls`` / ``.seconds``)."""
        deltas: dict[str, float] = {}
        for key, after in _KERNEL_STATS.snapshot().items():
            prior = before.get(key, {"calls": 0, "seconds": 0.0})
            calls = after["calls"] - prior["calls"]
            if calls <= 0:
                continue
            deltas[f"kernel.{key}.calls"] = calls
            deltas[f"kernel.{key}.seconds"] = round(
                max(0.0, after["seconds"] - prior["seconds"]), 9
            )
        return deltas

    def _report_kernel_stats(
        self, before: dict[str, dict[str, float]]
    ) -> None:
        """Report kernel hot-path time spent since ``before`` into metrics.

        The process-wide :data:`repro.kernels.STATS` accumulator is
        snapshotted around each evaluation; only the *delta* is credited,
        so concurrent sessions sharing the accumulator each report their
        own work.
        """
        for key, after in _KERNEL_STATS.snapshot().items():
            prior = before.get(key, {"calls": 0, "seconds": 0.0})
            calls = after["calls"] - prior["calls"]
            seconds = after["seconds"] - prior["seconds"]
            if calls <= 0:
                continue
            self.metrics.counter(f"kernel.{key}.calls").inc(calls)
            self.metrics.counter(f"kernel.{key}.seconds").inc(
                max(0.0, seconds)
            )

    def cache_stats(self) -> CacheStats:
        """Result-cache counters and evaluation seconds so far.

        Totals sum over every fabric the session evaluated;
        ``per_backend`` breaks hits/misses out by fabric name, so a
        multi-backend sweep can see whose memoization is working rather
        than one conflated counter.
        """
        return CacheStats(
            hits=int(sum(s["hits"] for s in self._per_fabric.values())),
            misses=int(sum(s["misses"] for s in self._per_fabric.values())),
            eval_seconds=self._eval_seconds,
            per_backend={
                fabric: {
                    "hits": int(stats["hits"]),
                    "misses": int(stats["misses"]),
                }
                for fabric, stats in sorted(self._per_fabric.items())
            },
        )

    def _utilization(self, spec: ScenarioSpec) -> tuple[UtilizationRow, ...]:
        """Figure 5c rows: both interconnects side by side, sorted by name."""
        rows = []
        for slc in sorted(self.allocator(spec).slices, key=lambda s: s.name):
            u = slice_utilization(slc)
            rows.append(
                UtilizationRow(
                    name=u.name,
                    shape=u.shape,
                    chips=u.chips,
                    electrical_fraction=u.electrical_fraction,
                    optical_fraction=u.optical_fraction,
                    electrical_bandwidth_bytes=u.electrical_bandwidth_bytes,
                    optical_bandwidth_bytes=u.optical_bandwidth_bytes,
                )
            )
        return tuple(rows)

    def compare(
        self,
        spec: ScenarioSpec,
        fabrics: Iterable[str] = ("electrical", "photonic"),
    ) -> dict[str, RunResult]:
        """Evaluate the same scenario on several backends.

        Topology artifacts are shared through the session caches, so a
        comparison costs one topology build plus one evaluation per
        fabric.
        """
        return {fabric: self.run(spec.with_fabric(fabric)) for fabric in fabrics}


_DEFAULT_SESSION = FabricSession()


def default_session() -> FabricSession:
    """The process-wide session behind :func:`run` and :func:`compare`."""
    return _DEFAULT_SESSION


def run(spec: ScenarioSpec, session: FabricSession | None = None) -> RunResult:
    """Evaluate ``spec`` on the default (or a provided) session."""
    return (session or _DEFAULT_SESSION).run(spec)


def compare(
    spec: ScenarioSpec,
    fabrics: Iterable[str] = ("electrical", "photonic"),
    session: FabricSession | None = None,
) -> dict[str, RunResult]:
    """Evaluate the same scenario on several backends (default session)."""
    return (session or _DEFAULT_SESSION).compare(spec, fabrics)
