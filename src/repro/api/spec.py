"""Frozen experiment specifications — the input side of the experiment API.

A :class:`ScenarioSpec` is a complete, hashable description of one
experiment: which fabric backend evaluates it, the rack geometry, the
tenant slices, the collective and buffer size, whether costs are derived
closed-form or measured on the discrete-event simulator, and an optional
failure plan. Because the spec is frozen and built from tuples it can key
the :class:`~repro.api.session.FabricSession` memoization caches, and its
``to_dict``/``from_dict`` pair round-trips through JSON so specs can be
stored, diffed, and replayed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "SliceSpec",
    "FailurePlan",
    "DeviceSpec",
    "ScenarioSpec",
    "KNOWN_OUTPUTS",
    "figure5b_slices",
    "figure6_slices",
    "table1_slices",
    "table2_slices",
]

#: Result sections a spec may request; see ``RunResult`` for their shapes.
KNOWN_OUTPUTS = (
    "capabilities",
    "costs",
    "utilization",
    "congestion",
    "telemetry",
    "link_utilization",
    "repair",
    "blast_radius",
    "device",
    "trace",
    "metrics",
)

_MODES = ("closed_form", "sim")


def _int_tuple(values: Any) -> tuple[int, ...]:
    return tuple(int(v) for v in values)


@dataclass(frozen=True)
class SliceSpec:
    """One tenant slice of the rack torus.

    Attributes:
        name: tenant label (e.g. ``"Slice-1"``).
        shape: slice extent per torus dimension.
        offset: slice origin within the rack.
    """

    name: str
    shape: tuple[int, ...]
    offset: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", _int_tuple(self.shape))
        object.__setattr__(self, "offset", _int_tuple(self.offset))
        if len(self.shape) != len(self.offset):
            raise ValueError(
                f"slice {self.name}: shape {self.shape} and offset "
                f"{self.offset} disagree on dimensionality"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SliceSpec":
        return cls(
            name=data["name"],
            shape=_int_tuple(data["shape"]),
            offset=_int_tuple(data["offset"]),
        )


@dataclass(frozen=True)
class FailurePlan:
    """What fails and how the recovery is evaluated.

    Attributes:
        failed_chips: chip coordinates that fail (today the repair path
            evaluates the first entry; the tuple keeps the spec extensible
            to correlated failures).
        max_hops: path-length bound for the exhaustive electrical
            replacement search (Figure 6a).
        replacement: override the spare chip chosen by the optical repair.
        fleet_days: when positive, sample a fleet-scale failure trace over
            this horizon and compare blast-radius policies (Section 4.2).
        seed: RNG seed for the fleet failure trace.
    """

    failed_chips: tuple[tuple[int, ...], ...] = ()
    max_hops: int = 5
    replacement: tuple[int, ...] | None = None
    fleet_days: float = 0.0
    seed: int = 2024

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "failed_chips", tuple(_int_tuple(c) for c in self.failed_chips)
        )
        if self.replacement is not None:
            object.__setattr__(self, "replacement", _int_tuple(self.replacement))
        if self.fleet_days < 0:
            raise ValueError("fleet_days cannot be negative")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailurePlan":
        return cls(
            failed_chips=tuple(tuple(c) for c in data.get("failed_chips", ())),
            max_hops=data.get("max_hops", 5),
            replacement=(
                tuple(data["replacement"])
                if data.get("replacement") is not None
                else None
            ),
            fleet_days=data.get("fleet_days", 0.0),
            seed=data.get("seed", 2024),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Sampling parameters for the physical-layer device reports.

    Defaults reproduce the paper's Figure 3a (MZI step response) and
    Figure 3b (reticle stitch loss) measurements.
    """

    mzi_duration_s: float = 12e-6
    mzi_samples: int = 4000
    stitch_samples: int = 20000
    stitch_bins: int = 24

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeviceSpec":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, frozen description of one fabric experiment.

    Attributes:
        fabric: registered backend name (``"electrical"``, ``"photonic"``,
            ``"switched"``, or any third-party registration).
        rack_shape: extent of the rack torus.
        slices: tenant slices, in allocation order.
        collective: collective the tenants run (``"reduce_scatter"``).
        buffer_bytes: per-tenant collective buffer size ``N``.
        mode: ``"closed_form"`` for symbolic alpha-beta-r costs,
            ``"sim"`` to measure on the discrete-event simulator
            (required for the ``"telemetry"`` and ``"link_utilization"``
            outputs).
        outputs: result sections to compute (subset of
            :data:`KNOWN_OUTPUTS`).
        failures: the failure plan, when repair/blast-radius is requested.
        device: device-model sampling parameters for ``"device"``.
        seed: RNG seed for seeded device models.
    """

    fabric: str = "photonic"
    rack_shape: tuple[int, ...] = (4, 4, 4)
    slices: tuple[SliceSpec, ...] = ()
    collective: str = "reduce_scatter"
    buffer_bytes: int = 1 << 26
    mode: str = "closed_form"
    outputs: tuple[str, ...] = ("costs",)
    failures: FailurePlan = field(default_factory=FailurePlan)
    device: DeviceSpec = field(default_factory=DeviceSpec)
    seed: int = 42

    def __post_init__(self) -> None:
        object.__setattr__(self, "rack_shape", _int_tuple(self.rack_shape))
        object.__setattr__(self, "slices", tuple(self.slices))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        unknown = [o for o in self.outputs if o not in KNOWN_OUTPUTS]
        if unknown:
            raise ValueError(
                f"unknown outputs {unknown}; known outputs: {list(KNOWN_OUTPUTS)}"
            )
        if "telemetry" in self.outputs and self.mode != "sim":
            raise ValueError('the "telemetry" output requires mode="sim"')
        if "link_utilization" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "link_utilization" output requires mode="sim" '
                "(per-link load is measured, not derived)"
            )
        if "trace" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "trace" output requires mode="sim" '
                "(event timelines come from the discrete-event simulator)"
            )
        if "metrics" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "metrics" output requires mode="sim" '
                "(simulator counters are measured, not derived)"
            )
        if self.buffer_bytes < 0:
            raise ValueError("buffer_bytes cannot be negative")
        for chip in self.failures.failed_chips:
            if len(chip) != len(self.rack_shape) or any(
                not 0 <= c < d for c, d in zip(chip, self.rack_shape)
            ):
                raise ValueError(
                    f"failed chip {chip} is outside the rack {self.rack_shape}"
                )

    # -- derived ----------------------------------------------------------------

    def with_fabric(self, fabric: str) -> "ScenarioSpec":
        """The same scenario evaluated by a different backend."""
        return replace(self, fabric=fabric)

    def with_outputs(self, *outputs: str) -> "ScenarioSpec":
        """The same scenario computing different result sections."""
        return replace(self, outputs=tuple(outputs))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        Built by hand rather than through :func:`dataclasses.asdict`:
        the deep-copying generic walk dominated sweep profiles (every
        cache lookup serializes the spec to compute its content key).
        """
        failures = self.failures
        device = self.device
        return {
            "fabric": self.fabric,
            "rack_shape": list(self.rack_shape),
            "slices": [
                {
                    "name": s.name,
                    "shape": list(s.shape),
                    "offset": list(s.offset),
                }
                for s in self.slices
            ],
            "collective": self.collective,
            "buffer_bytes": self.buffer_bytes,
            "mode": self.mode,
            "outputs": list(self.outputs),
            "failures": {
                "failed_chips": [list(c) for c in failures.failed_chips],
                "max_hops": failures.max_hops,
                "replacement": (
                    list(failures.replacement)
                    if failures.replacement is not None
                    else None
                ),
                "fleet_days": failures.fleet_days,
                "seed": failures.seed,
            },
            "device": {
                "mzi_duration_s": device.mzi_duration_s,
                "mzi_samples": device.mzi_samples,
                "stitch_samples": device.stitch_samples,
                "stitch_bins": device.stitch_bins,
            },
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        return cls(
            fabric=data.get("fabric", "photonic"),
            rack_shape=_int_tuple(data.get("rack_shape", (4, 4, 4))),
            slices=tuple(SliceSpec.from_dict(s) for s in data.get("slices", ())),
            collective=data.get("collective", "reduce_scatter"),
            buffer_bytes=data.get("buffer_bytes", 1 << 26),
            mode=data.get("mode", "closed_form"),
            outputs=tuple(data.get("outputs", ("costs",))),
            failures=FailurePlan.from_dict(data.get("failures", {})),
            device=DeviceSpec.from_dict(data.get("device", {})),
            seed=data.get("seed", 42),
        )

    def to_json(self, **kwargs: Any) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


# -- canonical paper scenarios ---------------------------------------------------


def figure5b_slices() -> tuple[SliceSpec, ...]:
    """The four tenants of the paper's Figure 5b rack layout."""
    return (
        SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
        SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
        SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),
        SliceSpec("Slice-2", (4, 2, 1), (0, 2, 3)),
    )


def figure6_slices() -> tuple[SliceSpec, ...]:
    """The Figure 6a/7 rack: three tenants, eight free chips."""
    return (
        SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
        SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
        SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),
    )


def table1_slices() -> tuple[SliceSpec, ...]:
    """Table 1's Slice-1 alone on a fresh rack."""
    return (SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),)


def table2_slices() -> tuple[SliceSpec, ...]:
    """Table 2's Slice-3 alone on a fresh rack."""
    return (SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),)
