"""Frozen experiment specifications — the input side of the experiment API.

A :class:`ScenarioSpec` is a complete, hashable description of one
experiment: which fabric backend evaluates it, the rack geometry, the
tenant slices, the collective and buffer size, whether costs are derived
closed-form or measured on the discrete-event simulator, and an optional
failure plan. Because the spec is frozen and built from tuples it can key
the :class:`~repro.api.session.FabricSession` memoization caches, and its
``to_dict``/``from_dict`` pair round-trips through JSON so specs can be
stored, diffed, and replayed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "SliceSpec",
    "FailurePlan",
    "FleetPlan",
    "TenancyPlan",
    "DeviceSpec",
    "ScenarioSpec",
    "KNOWN_OUTPUTS",
    "figure5b_slices",
    "figure6_slices",
    "table1_slices",
    "table2_slices",
]

#: Result sections a spec may request; see ``RunResult`` for their shapes.
KNOWN_OUTPUTS = (
    "capabilities",
    "costs",
    "utilization",
    "congestion",
    "telemetry",
    "link_utilization",
    "repair",
    "blast_radius",
    "device",
    "trace",
    "metrics",
    "fleet",
    "tenancy",
)

_MODES = ("closed_form", "sim")


def _int_tuple(values: Any) -> tuple[int, ...]:
    return tuple(int(v) for v in values)


@dataclass(frozen=True)
class SliceSpec:
    """One tenant slice of the rack torus.

    Attributes:
        name: tenant label (e.g. ``"Slice-1"``).
        shape: slice extent per torus dimension.
        offset: slice origin within the rack.
    """

    name: str
    shape: tuple[int, ...]
    offset: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", _int_tuple(self.shape))
        object.__setattr__(self, "offset", _int_tuple(self.offset))
        if len(self.shape) != len(self.offset):
            raise ValueError(
                f"slice {self.name}: shape {self.shape} and offset "
                f"{self.offset} disagree on dimensionality"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SliceSpec":
        return cls(
            name=data["name"],
            shape=_int_tuple(data["shape"]),
            offset=_int_tuple(data["offset"]),
        )


@dataclass(frozen=True)
class FailurePlan:
    """What fails and how the recovery is evaluated.

    Attributes:
        failed_chips: chip coordinates that fail (today the repair path
            evaluates the first entry; the tuple keeps the spec extensible
            to correlated failures).
        max_hops: path-length bound for the exhaustive electrical
            replacement search (Figure 6a).
        replacement: override the spare chip chosen by the optical repair.
        fleet_days: when positive, sample a fleet-scale failure trace over
            this horizon and compare blast-radius policies (Section 4.2).
        seed: RNG seed for the fleet failure trace.
    """

    failed_chips: tuple[tuple[int, ...], ...] = ()
    max_hops: int = 5
    replacement: tuple[int, ...] | None = None
    fleet_days: float = 0.0
    seed: int = 2024

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "failed_chips", tuple(_int_tuple(c) for c in self.failed_chips)
        )
        if self.replacement is not None:
            object.__setattr__(self, "replacement", _int_tuple(self.replacement))
        if self.fleet_days < 0:
            raise ValueError("fleet_days cannot be negative")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailurePlan":
        return cls(
            failed_chips=tuple(tuple(c) for c in data.get("failed_chips", ())),
            max_hops=data.get("max_hops", 5),
            replacement=(
                tuple(data["replacement"])
                if data.get("replacement") is not None
                else None
            ),
            fleet_days=data.get("fleet_days", 0.0),
            seed=data.get("seed", 2024),
        )


@dataclass(frozen=True)
class FleetPlan:
    """Year-scale fleet reliability simulation (the ``"fleet"`` output).

    Parameterizes :mod:`repro.fleet`: a renewal failure process over the
    full cluster with budgeted repairs, run once per fabric so the
    report can compare electrical and photonic availability.

    Attributes:
        days: simulated span; the ``"fleet"`` output requires it
            positive (the backend refuses a zero-length simulation).
        seed: base RNG seed of the renewal process.
        policy: repair-dispatch policy (``"immediate"``, ``"lazy"``,
            ``"batched"``).
        lazy_threshold: pending failures that trigger a lazy dispatch.
        batch_interval_s: cadence of the batched policy.
        max_concurrent_migrations: electrical repair-bandwidth budget.
        spare_inventory: spare chips stocked per rack (photonic budget).
        spare_replenish_s: time to restock one consumed spare.
        mtbf_years: per-chip mean time between failures.
        racks: racks in the simulated cluster.
        series_points: buckets in the availability time series.
    """

    days: float = 0.0
    seed: int = 0
    policy: str = "immediate"
    lazy_threshold: int = 4
    batch_interval_s: float = 21600.0
    max_concurrent_migrations: int = 4
    spare_inventory: int = 8
    spare_replenish_s: float = 86400.0
    mtbf_years: float = 5.0
    racks: int = 64
    series_points: int = 48

    def __post_init__(self) -> None:
        if self.days < 0:
            raise ValueError("days cannot be negative")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")
        if self.policy not in ("immediate", "lazy", "batched"):
            raise ValueError(
                f"unknown fleet policy {self.policy!r}; "
                'choose "immediate", "lazy" or "batched"'
            )
        if self.lazy_threshold < 1:
            raise ValueError("lazy_threshold must be at least 1")
        if self.batch_interval_s <= 0:
            raise ValueError("batch_interval_s must be positive")
        if self.max_concurrent_migrations < 1:
            raise ValueError("max_concurrent_migrations must be at least 1")
        if self.spare_inventory < 0:
            raise ValueError("spare_inventory cannot be negative")
        if self.spare_replenish_s <= 0:
            raise ValueError("spare_replenish_s must be positive")
        if self.mtbf_years <= 0:
            raise ValueError("mtbf_years must be positive")
        if self.racks < 1:
            raise ValueError("racks must be at least 1")
        if self.series_points < 1:
            raise ValueError("series_points must be at least 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "days": self.days,
            "seed": self.seed,
            "policy": self.policy,
            "lazy_threshold": self.lazy_threshold,
            "batch_interval_s": self.batch_interval_s,
            "max_concurrent_migrations": self.max_concurrent_migrations,
            "spare_inventory": self.spare_inventory,
            "spare_replenish_s": self.spare_replenish_s,
            "mtbf_years": self.mtbf_years,
            "racks": self.racks,
            "series_points": self.series_points,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetPlan":
        return cls(
            days=data.get("days", 0.0),
            seed=data.get("seed", 0),
            policy=data.get("policy", "immediate"),
            lazy_threshold=data.get("lazy_threshold", 4),
            batch_interval_s=data.get("batch_interval_s", 21600.0),
            max_concurrent_migrations=data.get("max_concurrent_migrations", 4),
            spare_inventory=data.get("spare_inventory", 8),
            spare_replenish_s=data.get("spare_replenish_s", 86400.0),
            mtbf_years=data.get("mtbf_years", 5.0),
            racks=data.get("racks", 64),
            series_points=data.get("series_points", 48),
        )


@dataclass(frozen=True)
class TenancyPlan:
    """Multi-tenant churn simulation (the ``"tenancy"`` output).

    Parameterizes :mod:`repro.tenancy`: a seeded stream of tenant jobs
    placed by a pluggable policy over a multi-rack cluster of the spec's
    ``rack_shape`` tori, run once per fabric so the report can compare
    electrical and photonic scheduling quality (queueing delay,
    rejections, fragmentation, stranded bandwidth).

    Attributes:
        days: simulated span; the ``"tenancy"`` output requires it
            positive (the backend refuses a zero-length simulation).
        seed: base RNG seed of the workload generator.
        arrivals_per_day: mean job arrival rate.
        profile: arrival profile (``"poisson"``, ``"burst"``,
            ``"trace"``).
        policy: placement policy both fabrics run (``"first-fit"``,
            ``"best-fit"``, ``"defrag"``); wavelength steering is the
            *photonic upgrade*, controlled separately.
        steering: let the photonic run steer wavelengths (ring closure
            plus scattered-chip placements). The electrical run never
            steers.
        mean_duration_s: mean job run time.
        max_queue_wait_s: queueing patience before rejection.
        racks: racks in the simulated cluster.
        steer_circuits: wavelength circuits per rack.
        series_points: buckets in the occupancy/fragmentation series.
    """

    days: float = 0.0
    seed: int = 0
    arrivals_per_day: float = 1500.0
    profile: str = "poisson"
    policy: str = "first-fit"
    steering: bool = True
    mean_duration_s: float = 1200.0
    max_queue_wait_s: float = 3600.0
    racks: int = 4
    steer_circuits: int = 64
    series_points: int = 24

    def __post_init__(self) -> None:
        if self.days < 0:
            raise ValueError("days cannot be negative")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")
        if self.arrivals_per_day <= 0:
            raise ValueError("arrivals_per_day must be positive")
        if self.profile not in ("poisson", "burst", "trace"):
            raise ValueError(
                f"unknown arrival profile {self.profile!r}; "
                'choose "poisson", "burst" or "trace"'
            )
        if self.policy not in ("first-fit", "best-fit", "defrag"):
            raise ValueError(
                f"unknown tenancy policy {self.policy!r}; "
                'choose "first-fit", "best-fit" or "defrag"'
            )
        if self.mean_duration_s <= 0:
            raise ValueError("mean_duration_s must be positive")
        if self.max_queue_wait_s <= 0:
            raise ValueError("max_queue_wait_s must be positive")
        if self.racks < 1:
            raise ValueError("racks must be at least 1")
        if self.steer_circuits < 0:
            raise ValueError("steer_circuits cannot be negative")
        if self.series_points < 1:
            raise ValueError("series_points must be at least 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "days": self.days,
            "seed": self.seed,
            "arrivals_per_day": self.arrivals_per_day,
            "profile": self.profile,
            "policy": self.policy,
            "steering": self.steering,
            "mean_duration_s": self.mean_duration_s,
            "max_queue_wait_s": self.max_queue_wait_s,
            "racks": self.racks,
            "steer_circuits": self.steer_circuits,
            "series_points": self.series_points,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenancyPlan":
        return cls(
            days=data.get("days", 0.0),
            seed=data.get("seed", 0),
            arrivals_per_day=data.get("arrivals_per_day", 1500.0),
            profile=data.get("profile", "poisson"),
            policy=data.get("policy", "first-fit"),
            steering=data.get("steering", True),
            mean_duration_s=data.get("mean_duration_s", 1200.0),
            max_queue_wait_s=data.get("max_queue_wait_s", 3600.0),
            racks=data.get("racks", 4),
            steer_circuits=data.get("steer_circuits", 64),
            series_points=data.get("series_points", 24),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Sampling parameters for the physical-layer device reports.

    Defaults reproduce the paper's Figure 3a (MZI step response) and
    Figure 3b (reticle stitch loss) measurements.
    """

    mzi_duration_s: float = 12e-6
    mzi_samples: int = 4000
    stitch_samples: int = 20000
    stitch_bins: int = 24

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeviceSpec":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, frozen description of one fabric experiment.

    Attributes:
        fabric: registered backend name (``"electrical"``, ``"photonic"``,
            ``"switched"``, or any third-party registration).
        rack_shape: extent of the rack torus.
        slices: tenant slices, in allocation order.
        collective: collective the tenants run (``"reduce_scatter"``).
        buffer_bytes: per-tenant collective buffer size ``N``.
        mode: ``"closed_form"`` for symbolic alpha-beta-r costs,
            ``"sim"`` to measure on the discrete-event simulator
            (required for the ``"telemetry"`` and ``"link_utilization"``
            outputs).
        outputs: result sections to compute (subset of
            :data:`KNOWN_OUTPUTS`).
        failures: the failure plan, when repair/blast-radius is requested.
        fleet: the fleet-simulation plan, when ``"fleet"`` is requested.
        tenancy: the tenant-churn plan, when ``"tenancy"`` is requested.
        device: device-model sampling parameters for ``"device"``.
        seed: RNG seed for seeded device models.
    """

    fabric: str = "photonic"
    rack_shape: tuple[int, ...] = (4, 4, 4)
    slices: tuple[SliceSpec, ...] = ()
    collective: str = "reduce_scatter"
    buffer_bytes: int = 1 << 26
    mode: str = "closed_form"
    outputs: tuple[str, ...] = ("costs",)
    failures: FailurePlan = field(default_factory=FailurePlan)
    fleet: FleetPlan = field(default_factory=FleetPlan)
    tenancy: TenancyPlan = field(default_factory=TenancyPlan)
    device: DeviceSpec = field(default_factory=DeviceSpec)
    seed: int = 42

    def __post_init__(self) -> None:
        object.__setattr__(self, "rack_shape", _int_tuple(self.rack_shape))
        object.__setattr__(self, "slices", tuple(self.slices))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        unknown = [o for o in self.outputs if o not in KNOWN_OUTPUTS]
        if unknown:
            raise ValueError(
                f"unknown outputs {unknown}; known outputs: {list(KNOWN_OUTPUTS)}"
            )
        if "telemetry" in self.outputs and self.mode != "sim":
            raise ValueError('the "telemetry" output requires mode="sim"')
        if "link_utilization" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "link_utilization" output requires mode="sim" '
                "(per-link load is measured, not derived)"
            )
        if "trace" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "trace" output requires mode="sim" '
                "(event timelines come from the discrete-event simulator)"
            )
        if "metrics" in self.outputs and self.mode != "sim":
            raise ValueError(
                'the "metrics" output requires mode="sim" '
                "(simulator counters are measured, not derived)"
            )
        if self.buffer_bytes < 0:
            raise ValueError("buffer_bytes cannot be negative")
        for chip in self.failures.failed_chips:
            if len(chip) != len(self.rack_shape) or any(
                not 0 <= c < d for c, d in zip(chip, self.rack_shape)
            ):
                raise ValueError(
                    f"failed chip {chip} is outside the rack {self.rack_shape}"
                )

    # -- derived ----------------------------------------------------------------

    def with_fabric(self, fabric: str) -> "ScenarioSpec":
        """The same scenario evaluated by a different backend."""
        return replace(self, fabric=fabric)

    def with_outputs(self, *outputs: str) -> "ScenarioSpec":
        """The same scenario computing different result sections."""
        return replace(self, outputs=tuple(outputs))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        Built by hand rather than through :func:`dataclasses.asdict`:
        the deep-copying generic walk dominated sweep profiles (every
        cache lookup serializes the spec to compute its content key).
        """
        failures = self.failures
        device = self.device
        data = {
            "fabric": self.fabric,
            "rack_shape": list(self.rack_shape),
            "slices": [
                {
                    "name": s.name,
                    "shape": list(s.shape),
                    "offset": list(s.offset),
                }
                for s in self.slices
            ],
            "collective": self.collective,
            "buffer_bytes": self.buffer_bytes,
            "mode": self.mode,
            "outputs": list(self.outputs),
            "failures": {
                "failed_chips": [list(c) for c in failures.failed_chips],
                "max_hops": failures.max_hops,
                "replacement": (
                    list(failures.replacement)
                    if failures.replacement is not None
                    else None
                ),
                "fleet_days": failures.fleet_days,
                "seed": failures.seed,
            },
            "device": {
                "mzi_duration_s": device.mzi_duration_s,
                "mzi_samples": device.mzi_samples,
                "stitch_samples": device.stitch_samples,
                "stitch_bins": device.stitch_bins,
            },
            "seed": self.seed,
        }
        # Emitted only when configured: default-fleet specs keep the
        # exact serialization bytes (and spec keys, and golden files)
        # they had before the fleet section existed.
        if self.fleet != FleetPlan():
            data["fleet"] = self.fleet.to_dict()
        if self.tenancy != TenancyPlan():
            data["tenancy"] = self.tenancy.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        return cls(
            fabric=data.get("fabric", "photonic"),
            rack_shape=_int_tuple(data.get("rack_shape", (4, 4, 4))),
            slices=tuple(SliceSpec.from_dict(s) for s in data.get("slices", ())),
            collective=data.get("collective", "reduce_scatter"),
            buffer_bytes=data.get("buffer_bytes", 1 << 26),
            mode=data.get("mode", "closed_form"),
            outputs=tuple(data.get("outputs", ("costs",))),
            failures=FailurePlan.from_dict(data.get("failures", {})),
            fleet=FleetPlan.from_dict(data.get("fleet", {})),
            tenancy=TenancyPlan.from_dict(data.get("tenancy", {})),
            device=DeviceSpec.from_dict(data.get("device", {})),
            seed=data.get("seed", 42),
        )

    def to_json(self, **kwargs: Any) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


# -- canonical paper scenarios ---------------------------------------------------


def figure5b_slices() -> tuple[SliceSpec, ...]:
    """The four tenants of the paper's Figure 5b rack layout."""
    return (
        SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
        SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
        SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),
        SliceSpec("Slice-2", (4, 2, 1), (0, 2, 3)),
    )


def figure6_slices() -> tuple[SliceSpec, ...]:
    """The Figure 6a/7 rack: three tenants, eight free chips."""
    return (
        SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),
        SliceSpec("Slice-4", (4, 4, 2), (0, 0, 1)),
        SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),
    )


def table1_slices() -> tuple[SliceSpec, ...]:
    """Table 1's Slice-1 alone on a fresh rack."""
    return (SliceSpec("Slice-1", (4, 2, 1), (0, 0, 3)),)


def table2_slices() -> tuple[SliceSpec, ...]:
    """Table 2's Slice-3 alone on a fresh rack."""
    return (SliceSpec("Slice-3", (4, 4, 1), (0, 0, 0)),)
