"""Vectorized evaluation kernels and their selection machinery.

The evaluation hot path (max-min water-filling, repair-path search, ring
stage costs, telemetry aggregation) exists twice: the original pure-python
implementations — retained verbatim as the ``reference`` backend — and
numpy rewrites over flows×links incidence arrays (the ``vectorized``
backend, the default). The two are *bit-identical by construction*: every
floating-point operation is performed on the same operands in the same
order, so goldens, spec keys, telemetry records and trace exports do not
change with the backend (enforced by the byte-identity CI job and the
hypothesis property tests).

Selection, in priority order:

1. :func:`use_kernel` — a context manager scoping an override,
2. the ``REPRO_KERNEL`` environment variable (inherited by sweep worker
   processes, which is how :func:`set_default_kernel` propagates across
   a ``ProcessPoolExecutor``),
3. the built-in default, ``vectorized``.

The active kernel name is part of :func:`repro.api.cache.code_fingerprint`
so on-disk result caches never mix entries produced by different
implementations (they are proven identical, but provenance stays clean).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "KERNELS",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "active_kernel",
    "set_default_kernel",
    "use_kernel",
    "KernelStats",
    "STATS",
]

#: Recognized kernel backends.
KERNELS = ("reference", "vectorized")

#: Backend used when neither an override nor the env var is set.
DEFAULT_KERNEL = "vectorized"

#: Environment variable naming the process-wide default backend. Set via
#: :func:`set_default_kernel` (or exported by the user); sweep worker
#: processes inherit it, so a parent's choice governs the whole pool.
KERNEL_ENV_VAR = "REPRO_KERNEL"

# Stack of scoped overrides (innermost last). The simulator and sessions
# are single-threaded per process, so a plain list suffices.
_OVERRIDES: list[str] = []


def _validate(name: str) -> str:
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {', '.join(KERNELS)}"
        )
    return name


def active_kernel() -> str:
    """The kernel backend the dispatchers use right now.

    Raises:
        ValueError: when ``REPRO_KERNEL`` names an unknown backend —
            silently falling back would defeat the point of selecting a
            backend explicitly.
    """
    if _OVERRIDES:
        return _OVERRIDES[-1]
    env = os.environ.get(KERNEL_ENV_VAR)
    if env is None:
        return DEFAULT_KERNEL
    return _validate(env)


def set_default_kernel(name: str) -> None:
    """Set the process-wide default backend (and export it to children).

    Writing ``REPRO_KERNEL`` rather than a module global is deliberate:
    sweep worker processes are spawned with a copy of ``os.environ``, so
    the choice made in the parent CLI/session governs every worker.
    """
    os.environ[KERNEL_ENV_VAR] = _validate(name)


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Scope a kernel override to a ``with`` block (re-entrant)."""
    _validate(name)
    _OVERRIDES.append(name)
    try:
        yield name
    finally:
        _OVERRIDES.pop()


class KernelStats:
    """Per-(kernel, op) call counters and accumulated seconds.

    The process-wide :data:`STATS` instance is fed by the dispatchers;
    :class:`~repro.api.session.FabricSession` snapshots it around each
    evaluation and reports the deltas into its metrics registry
    (``kernel.<backend>.<op>.calls`` / ``.seconds``). Timing is
    observability only — it never influences results.
    """

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def record(self, op: str, elapsed_s: float, kernel: str | None = None) -> None:
        """Charge one call of ``op`` (``elapsed_s`` wall seconds)."""
        key = f"{kernel if kernel is not None else active_kernel()}.{op}"
        self.calls[key] = self.calls.get(key, 0) + 1
        self.seconds[key] = self.seconds.get(key, 0.0) + elapsed_s

    @contextmanager
    def timed(self, op: str) -> Iterator[None]:
        """Time a block and charge it to ``op`` under the active kernel."""
        kernel = active_kernel()
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(op, time.perf_counter() - started, kernel=kernel)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-safe ``{"<kernel>.<op>": {"calls": n, "seconds": s}}``."""
        return {
            key: {"calls": self.calls[key], "seconds": self.seconds[key]}
            for key in sorted(self.calls)
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.calls.clear()
        self.seconds.clear()


#: Process-wide kernel-time accounting.
STATS = KernelStats()
