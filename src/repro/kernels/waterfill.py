"""Vectorized max-min fair progressive filling.

Numpy rewrite of :func:`repro.sim.flows.max_min_rates_reference` over the
CSR incidence of :mod:`repro.kernels.incidence`. Bit-identical to the
reference by construction:

* per-link user counts are a ``bincount`` over the concatenated link
  indices of the unfrozen flows *in flow-insertion order* — the same
  first-seen order the reference's ``link_users`` dict iterates in;
* the bottleneck is the minimum share with ties broken by smallest
  first-occurrence position, exactly the reference's strict ``<`` scan;
* every capacity debit is the same sequence of ``x - rate`` /
  ``max(x, 0.0)`` float64 operations, flow by flow, per link occurrence
  (``np.subtract.at`` is an ordered, unbuffered loop), never a fused or
  reassociated sum;
* demand caps compare as ``demand < share`` with NaN encoding "no cap"
  (NaN comparisons are False, mirroring ``is not None and <``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from .incidence import FlowIncidence, LinkSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.flows import Flow

__all__ = ["waterfill_rates", "max_min_rates_vectorized"]


def _debit(remaining: np.ndarray, idx: np.ndarray, rate: float) -> None:
    """Subtract ``rate`` per link occurrence of one frozen flow, clamped.

    For duplicate-free ``idx`` (the common case) a gather/scatter equals
    the reference's per-occurrence subtract-then-clamp. With duplicates,
    ``np.subtract.at`` applies the occurrences sequentially; clamping
    once afterwards is still identical because a mid-sequence clamp only
    fires when the unclamped running value is already negative — both
    orders end at exactly ``0.0`` (rates are non-negative).
    """
    if idx.size > 1 and len(set(idx.tolist())) != idx.size:
        np.subtract.at(remaining, idx, rate)
        touched = remaining[idx]
        np.maximum(touched, 0.0, out=touched)
        remaining[idx] = touched
        return
    vals = remaining[idx] - rate
    np.maximum(vals, 0.0, out=vals)
    remaining[idx] = vals


def waterfill_rates(
    caps: np.ndarray,
    incidence: FlowIncidence,
    demands: np.ndarray,
) -> np.ndarray:
    """Max-min rates for a flow population over indexed links.

    Args:
        caps: per-link capacities (float64, all positive).
        incidence: the flows' CSR link incidence (flow-insertion order).
        demands: per-flow rate caps, ``NaN`` meaning uncapped.

    Returns:
        Per-flow rates, flow order. Inputs are not modified (a fresh
        remaining-capacity array is debited internally).
    """
    n_flows = incidence.flow_count
    n_links = caps.shape[0]
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates
    remaining = caps.astype(np.float64, copy=True)
    flow_links = incidence.flow_links
    flat_all = incidence.flat
    seg_all = incidence.seg
    active = np.ones(n_flows, dtype=bool)

    for _ in range(n_flows + n_links + 1):
        if not active.any():
            break
        keep = active[seg_all]
        flat = flat_all[keep]
        seg = seg_all[keep]
        if flat.size == 0:
            break
        users = np.bincount(flat, minlength=n_links)
        used_idx = np.flatnonzero(users)
        shares = remaining[used_idx] / users[used_idx]
        bottleneck_share = shares.min()
        # First strict-min in first-seen order: among the min-share links,
        # the one whose first occurrence in `flat` comes earliest.
        candidates = used_idx[shares == bottleneck_share]
        if candidates.size > 1:
            first_pos = np.empty(n_links, dtype=np.intp)
            first_pos[flat[::-1]] = np.arange(flat.size - 1, -1, -1)
            bottleneck = candidates[np.argmin(first_pos[candidates])]
        else:
            bottleneck = candidates[0]
        share = float(bottleneck_share)
        # Demand caps below the bottleneck share freeze first, exactly as
        # in the reference (NaN demands compare False).
        active_idx = np.flatnonzero(active)
        capped = active_idx[demands[active_idx] < bottleneck_share]
        if capped.size:
            for f in capped:
                rate = float(demands[f])
                rates[f] = rate
                _debit(remaining, flow_links[f], rate)
            active[capped] = False
            continue
        frozen_now = np.unique(seg[flat == bottleneck])
        for f in frozen_now:
            rates[f] = share
            _debit(remaining, flow_links[f], share)
        active[frozen_now] = False
    return rates


def max_min_rates_vectorized(
    flows: "list[Flow]", capacity_bytes_per_s: dict[Hashable, float]
) -> dict[Hashable, float]:
    """Drop-in vectorized :func:`repro.sim.flows.max_min_rates`.

    Performs the reference's validation (same exceptions, same messages,
    same order), converts links to index space, runs
    :func:`waterfill_rates`, and writes rates back to the flow objects.
    """
    for link, cap in capacity_bytes_per_s.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")
    active = list(flows)
    for flow in active:
        for link in flow.links:
            if link not in capacity_bytes_per_s:
                raise KeyError(
                    f"flow {flow.flow_id!r} uses unknown link {link!r}"
                )
        demand = flow.demand_bytes_per_s
        if demand is not None and demand <= 0:
            raise ValueError(
                f"flow {flow.flow_id!r} has a non-positive demand cap "
                f"({demand}) and can never make progress; the link "
                "capacities are not at fault"
            )
    space = LinkSpace(capacity_bytes_per_s)
    incidence = FlowIncidence([space.indices(f.links) for f in active])
    demands = np.fromiter(
        (
            np.nan if f.demand_bytes_per_s is None else f.demand_bytes_per_s
            for f in active
        ),
        dtype=np.float64,
        count=len(active),
    )
    rate_list = waterfill_rates(space.caps, incidence, demands).tolist()
    rates: dict[Hashable, float] = {}
    for flow, rate in zip(active, rate_list):
        flow.rate_bytes_per_s = rate
        rates[flow.flow_id] = rate
    return rates
