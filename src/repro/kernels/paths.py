"""Index-space torus paths: BFS, simple-path enumeration, repair search.

The electrical failure analysis (Figure 6a) is the cold-evaluation hot
path: for every free chip it exhaustively enumerates simple replacement
paths with :meth:`~repro.topology.torus.Torus.all_paths`, hashing
coordinate tuples and :class:`~repro.topology.torus.Link` objects at
every step. This module rewrites that search over dense integer node and
link ids:

* a :class:`TorusKernel` (memoized per shape) holds the neighbor table,
  directed-link index space and step→link-id matrix, all built from the
  :class:`~repro.topology.torus.Torus` itself so orderings agree by
  construction;
* simple paths are enumerated once per (endpoint, failed chip) by
  breadth-wise frontier expansion and *shared across every candidate
  free chip* (the reference re-enumerates per free chip — the paths do
  not depend on the destination, only the tail filter does);
* the reference's "first strict minimum in DFS yield order" selection is
  reproduced exactly: DFS preorder equals lexicographic order of the
  paths' neighbor-slot sequences (for a fixed destination no candidate
  is a prefix of another, since a simple path only touches the
  destination at its tail), so a single ``lexsort`` assigns every
  enumerated path its DFS rank and the winner is the minimum of
  ``(congested-link count, rank)``.

Congested-link counting is a boolean gather over per-path link-id rows —
the incidence-array form of ``link in blocked``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..topology.torus import Coordinate, Link, Torus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..failures.recovery import ReplacementAttempt, ReplacementPath
    from ..topology.slices import Slice

__all__ = [
    "TorusKernel",
    "torus_kernel",
    "ring_link_ids",
    "evaluate_free_chip_vectorized",
    "evaluate_all_free_chips_vectorized",
]


class TorusKernel:
    """Dense integer index space over a torus's nodes and directed links.

    Attributes:
        shape: the torus extents.
        coords: node id → coordinate tuple (lexicographic order).
        id_of: coordinate tuple → node id.
        nbr: ``(N, S)`` neighbor table in :meth:`Torus.neighbors` order,
            padded with ``-1``.
        step_link: ``(N, S)`` link id of the step ``node → nbr[node, s]``
            (``-1`` on padding).
        links: link id → :class:`Link`, in :meth:`Torus.links` order.
        reverse_id: link id → id of the reverse link.
    """

    def __init__(self, shape: tuple[int, ...]) -> None:
        torus = Torus(shape)
        self.shape = torus.shape
        self.coords: list[Coordinate] = list(torus.nodes())
        self.id_of: dict[Coordinate, int] = {
            coord: i for i, coord in enumerate(self.coords)
        }
        self.links: list[Link] = list(torus.links())
        self._lid_of_pair: dict[tuple[int, int], int] = {
            (self.id_of[link.src], self.id_of[link.dst]): i
            for i, link in enumerate(self.links)
        }
        n = len(self.coords)
        nbr_lists = [
            [self.id_of[nb] for nb in torus.neighbors(coord)]
            for coord in self.coords
        ]
        width = max((len(row) for row in nbr_lists), default=0)
        self.nbr = np.full((n, max(width, 1)), -1, dtype=np.intp)
        self.step_link = np.full((n, max(width, 1)), -1, dtype=np.intp)
        for node, row in enumerate(nbr_lists):
            for slot, other in enumerate(row):
                self.nbr[node, slot] = other
                self.step_link[node, slot] = self._lid_of_pair[(node, other)]
        self.reverse_id = np.fromiter(
            (
                self._lid_of_pair[(self.id_of[link.dst], self.id_of[link.src])]
                for link in self.links
            ),
            dtype=np.intp,
            count=len(self.links),
        )

    @property
    def link_count(self) -> int:
        return len(self.links)

    def links_mask(self, links: Iterable[Link]) -> np.ndarray:
        """Boolean mask over link ids; links outside the torus (which no
        enumerated path can use) are ignored."""
        mask = np.zeros(len(self.links), dtype=bool)
        id_of = self.id_of
        pairs = self._lid_of_pair
        for link in links:
            src = id_of.get(link.src)
            dst = id_of.get(link.dst)
            if src is None or dst is None:
                continue
            lid = pairs.get((src, dst))
            if lid is not None:
                mask[lid] = True
        return mask

    def path_link_ids(self, node_ids: Iterable[int]) -> list[int]:
        """Directed link ids along a node-id path."""
        nodes = list(node_ids)
        pairs = self._lid_of_pair
        return [pairs[(a, b)] for a, b in zip(nodes, nodes[1:])]

    # -- searches -----------------------------------------------------------

    def bfs_path(
        self,
        src: int,
        dst: int,
        blocked_links: np.ndarray,
        forbidden_node: int,
    ) -> list[int] | None:
        """Index-space replica of :meth:`Torus.shortest_path`.

        Same frontier iteration and neighbor order, so the returned node
        sequence (or ``None``) is identical.
        """
        if src == dst:
            return [src]
        n = self.nbr.shape[0]
        parents = np.full(n, -1, dtype=np.intp)
        parents[src] = src
        nbr = self.nbr
        step_link = self.step_link
        frontier = [src]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for slot in range(nbr.shape[1]):
                    other = nbr[node, slot]
                    if other < 0 or parents[other] >= 0:
                        continue
                    if blocked_links[step_link[node, slot]]:
                        continue
                    if other != dst and other == forbidden_node:
                        continue
                    parents[other] = node
                    if other == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(int(parents[path[-1]]))
                        path.reverse()
                        return path
                    nxt.append(int(other))
            frontier = nxt
        return None

    def enumerate_simple_paths(
        self, src: int, forbidden_node: int, max_hops: int
    ) -> "PathSet":
        """All simple paths from ``src`` of up to ``max_hops`` edges that
        avoid ``forbidden_node``, with their global DFS ranks.

        The result is destination-agnostic: filtering on a path's tail
        yields exactly :meth:`Torus.all_paths`'s set for that
        destination (paths through the destination are excluded by the
        tail filter itself, mirroring the reference's stop-at-dst rule).
        """
        nodes = np.array([[src]], dtype=np.intp)
        slots = np.empty((1, 0), dtype=np.intp)
        lids = np.empty((1, 0), dtype=np.intp)
        depths = [(nodes, slots, lids)]
        for _ in range(max_hops):
            tails = nodes[:, -1]
            cand = self.nbr[tails]
            ok = cand >= 0
            if forbidden_node >= 0:
                ok &= cand != forbidden_node
            ok &= ~(nodes[:, :, None] == cand[:, None, :]).any(axis=1)
            parent, slot = np.nonzero(ok)
            if parent.size == 0:
                break
            step = cand[parent, slot]
            nodes = np.concatenate(
                [nodes[parent], step[:, None]], axis=1
            )
            slots = np.concatenate(
                [slots[parent], slot[:, None].astype(np.intp)], axis=1
            )
            lids = np.concatenate(
                [lids[parent], self.step_link[tails[parent], slot][:, None]],
                axis=1,
            )
            depths.append((nodes, slots, lids))
        return PathSet(depths, max_hops)


class PathSet:
    """Enumerated simple paths from one source, DFS-ranked.

    Attributes:
        depths: per edge-count ``(nodes, slots, lids)`` arrays.
    """

    def __init__(
        self,
        depths: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        max_hops: int,
    ) -> None:
        self.depths = depths
        # Global DFS rank: lexicographic order of the slot sequences,
        # padded with -1. Padding never decides a comparison between two
        # same-destination candidates (no-prefix property), so any pad
        # value yields the correct relative order.
        total = sum(d[0].shape[0] for d in depths)
        padded = np.full((total, max_hops), -1, dtype=np.intp)
        offset = 0
        self._offsets = []
        for nodes, slots, _ in depths:
            count = nodes.shape[0]
            self._offsets.append(offset)
            if slots.shape[1]:
                padded[offset : offset + count, : slots.shape[1]] = slots
            offset += count
        if max_hops and total:
            order = np.lexsort(padded.T[::-1])
        else:
            order = np.arange(total)
        self._rank = np.empty(total, dtype=np.intp)
        self._rank[order] = np.arange(total)

    def best_for(
        self, dst: int, blocked_links: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The least-congested path ending at ``dst``.

        Returns ``(node_ids, link_ids)`` of the path the reference's
        first-strict-min scan would keep, or ``None`` when no enumerated
        path reaches ``dst``.
        """
        best_key = None
        best_val: tuple[np.ndarray, np.ndarray] | None = None
        for (nodes, _, lids), offset in zip(self.depths, self._offsets):
            rows = np.flatnonzero(nodes[:, -1] == dst)
            if rows.size == 0:
                continue
            counts = blocked_links[lids[rows]].sum(axis=1)
            ranks = self._rank[offset + rows]
            i = int(np.lexsort((ranks, counts))[0])
            key = (int(counts[i]), int(ranks[i]))
            if best_key is None or key < best_key:
                best_key = key
                row = rows[i]
                best_val = (nodes[row], lids[row])
        return best_val


@lru_cache(maxsize=64)
def torus_kernel(shape: tuple[int, ...]) -> TorusKernel:
    """The memoized :class:`TorusKernel` for ``shape``."""
    return TorusKernel(shape)


@lru_cache(maxsize=4096)
def ring_link_ids(
    rack_shape: tuple[int, ...],
    offset: Coordinate,
    shape: tuple[int, ...],
    dim: int,
) -> np.ndarray:
    """Link-id array of a slice geometry's rings along ``dim``.

    The index-space twin of
    :func:`repro.topology.slices._ring_links_for_geometry`, produced by
    mapping its (memoized) link tuple once per geometry. Consumed
    directly by the repair kernel's busy-mask construction.
    """
    from ..topology.slices import _ring_links_for_geometry

    kernel = torus_kernel(rack_shape)
    links = _ring_links_for_geometry(rack_shape, offset, shape, dim)
    pairs = kernel._lid_of_pair
    id_of = kernel.id_of
    out = np.fromiter(
        (pairs[(id_of[lnk.src], id_of[lnk.dst])] for lnk in links),
        dtype=np.intp,
        count=len(links),
    )
    out.setflags(write=False)
    return out


# -- repair analysis ---------------------------------------------------------


def _busy_mask(analysis, kernel: TorusKernel, exclude: "Slice") -> np.ndarray:
    """Index-space :meth:`ElectricalRecoveryAnalysis.busy_links`.

    Ring link-id arrays come straight from :func:`ring_link_ids`; both
    directions are claimed via the kernel's reverse-id table.
    """
    mask = np.zeros(kernel.link_count, dtype=bool)
    for slc in analysis.allocator.slices:
        if exclude is not None and slc.name == exclude.name:
            continue
        for dim in analysis._ring_dims(slc):
            ids = ring_link_ids(slc.rack.shape, slc.offset, slc.shape, dim)
            mask[ids] = True
            mask[kernel.reverse_id[ids]] = True
    return mask


def _attempt(
    analysis,
    kernel: TorusKernel,
    endpoints: list[Coordinate],
    failed: Coordinate,
    free_chip: Coordinate,
    busy_mask: np.ndarray,
    path_sets: dict[int, PathSet],
) -> "ReplacementAttempt":
    """One free chip's :class:`ReplacementAttempt`, index-space."""
    from ..failures.recovery import ReplacementAttempt, ReplacementPath

    failed_id = kernel.id_of[failed]
    free_id = kernel.id_of[free_chip]
    coords = kernel.coords
    links = kernel.links
    chosen_mask = np.zeros(kernel.link_count, dtype=bool)
    attempts: list[ReplacementPath] = []
    feasible = True
    for endpoint in endpoints:
        endpoint_id = kernel.id_of[endpoint]
        blocked = busy_mask | chosen_mask
        clean = kernel.bfs_path(endpoint_id, free_id, blocked, failed_id)
        if clean is not None:
            best = ReplacementPath(
                endpoint=endpoint,
                path=tuple(coords[n] for n in clean),
                congested_links=(),
            )
            best_lids = kernel.path_link_ids(clean)
        else:
            path_set = path_sets.get(endpoint_id)
            if path_set is None:
                path_set = kernel.enumerate_simple_paths(
                    endpoint_id, failed_id, analysis.max_hops
                )
                path_sets[endpoint_id] = path_set
            found = path_set.best_for(free_id, blocked)
            if found is None:
                feasible = False
                attempts.append(
                    ReplacementPath(
                        endpoint=endpoint, path=(endpoint,), congested_links=()
                    )
                )
                continue
            node_row, lid_row = found
            congested = tuple(
                links[lid] for lid in lid_row[blocked[lid_row]].tolist()
            )
            best = ReplacementPath(
                endpoint=endpoint,
                path=tuple(coords[n] for n in node_row.tolist()),
                congested_links=congested,
            )
            best_lids = lid_row
        if not best.is_congestion_free:
            feasible = False
        chosen_mask[best_lids] = True
        attempts.append(best)
    return ReplacementAttempt(
        free_chip=free_chip, best_paths=tuple(attempts), feasible=feasible
    )


def evaluate_free_chip_vectorized(
    analysis,
    slc: "Slice",
    failed: Coordinate,
    free_chip: Coordinate,
    extra_busy=None,
) -> "ReplacementAttempt":
    """Index-space :meth:`ElectricalRecoveryAnalysis.evaluate_free_chip`."""
    kernel = torus_kernel(analysis.torus.shape)
    busy_mask = _busy_mask(analysis, kernel, exclude=slc)
    busy_mask |= kernel.links_mask(
        analysis.surviving_ring_links(slc, failed)
    )
    if extra_busy:
        busy_mask |= kernel.links_mask(extra_busy)
    endpoints = analysis.required_endpoints(slc, failed)
    return _attempt(
        analysis, kernel, endpoints, failed, free_chip, busy_mask, {}
    )


def evaluate_all_free_chips_vectorized(
    analysis, slc: "Slice", failed: Coordinate
) -> "list[ReplacementAttempt]":
    """Index-space :meth:`~ElectricalRecoveryAnalysis.evaluate_all_free_chips`.

    The busy/surviving masks and the per-endpoint path enumerations are
    computed once and shared across all candidate free chips — the
    reference recomputes them per chip, which is where most of the cold
    repair-grid time went.
    """
    kernel = torus_kernel(analysis.torus.shape)
    busy_mask = _busy_mask(analysis, kernel, exclude=slc)
    busy_mask |= kernel.links_mask(
        analysis.surviving_ring_links(slc, failed)
    )
    endpoints = analysis.required_endpoints(slc, failed)
    path_sets: dict[int, PathSet] = {}
    return [
        _attempt(
            analysis, kernel, endpoints, failed, free_chip, busy_mask, path_sets
        )
        for free_chip in analysis.allocator.free_chips()
        if free_chip != failed
    ]
