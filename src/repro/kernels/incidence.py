"""Link-index spaces and flows×links incidence in CSR form.

The vectorized kernels never hash a link (or a :class:`~repro.topology.
torus.Link`) on the hot path: links are enumerated once into a dense
index space (:class:`LinkSpace`), and a population of flows becomes a
CSR-style incidence — one concatenated array of link indices plus
per-flow offsets (:class:`FlowIncidence`). Every per-round reduction of
the water-filling algorithm is then a ``bincount``/fancy-index over these
arrays.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

__all__ = ["LinkSpace", "FlowIncidence"]


class LinkSpace:
    """A dense index space over an ordered link universe.

    Built from a capacity mapping; the index order is the mapping's
    iteration (insertion) order, which is what makes index-space
    reductions reproduce the reference implementation's dict-iteration
    tie-breaks exactly.

    Attributes:
        links: link objects, index order.
        index: link → index.
        caps: capacities as float64, index order.
    """

    __slots__ = ("links", "index", "caps")

    def __init__(self, capacity_bytes_per_s: dict[Hashable, float]) -> None:
        self.links: list[Hashable] = list(capacity_bytes_per_s)
        self.index: dict[Hashable, int] = {
            link: i for i, link in enumerate(self.links)
        }
        self.caps = np.fromiter(
            capacity_bytes_per_s.values(), dtype=np.float64, count=len(self.links)
        )

    def __len__(self) -> int:
        return len(self.links)

    def indices(self, links: Sequence[Hashable]) -> np.ndarray:
        """Index array for ``links`` (in the given order).

        Raises:
            KeyError: for a link outside the space (the *bare* key; the
                caller formats the flow-specific message).
        """
        index = self.index
        return np.fromiter(
            (index[link] for link in links), dtype=np.intp, count=len(links)
        )


class FlowIncidence:
    """CSR incidence of a flow population over a :class:`LinkSpace`.

    Attributes:
        flow_links: per-flow link-index arrays, flow order.
        lengths: per-flow link counts.
        flat: all flows' link indices concatenated in flow order.
        seg: flow index of each ``flat`` entry.
    """

    __slots__ = ("flow_links", "lengths", "flat", "seg")

    def __init__(self, flow_links: Sequence[np.ndarray]) -> None:
        self.flow_links = list(flow_links)
        n = len(self.flow_links)
        self.lengths = np.fromiter(
            (a.size for a in self.flow_links), dtype=np.intp, count=n
        )
        if n:
            self.flat = np.concatenate(self.flow_links)
            self.seg = np.repeat(np.arange(n, dtype=np.intp), self.lengths)
        else:
            self.flat = np.empty(0, dtype=np.intp)
            self.seg = np.empty(0, dtype=np.intp)

    @property
    def flow_count(self) -> int:
        return len(self.flow_links)
