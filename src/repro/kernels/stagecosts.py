"""Vectorized bucket stage-cost computation.

All stages of the multi-dimensional bucket algorithm are computed at once
as array expressions. Bit-identity with the reference loop in
:func:`repro.collectives.cost_model._bucket_stages` hinges on the buffer
fractions: the reference divides sequentially (``b /= p`` per stage), so
they are reproduced with ``np.divide.accumulate`` — the same chain of
float64 divisions — never a reciprocal ``cumprod``, which rounds
differently.

This module returns plain arrays/lists; :mod:`repro.collectives.
cost_model` wraps them in :class:`~repro.collectives.cost_model.
CollectiveCost` objects, keeping the dependency one-way.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["bucket_stage_arrays"]


@lru_cache(maxsize=4096)
def bucket_stage_arrays(
    dims: tuple[int, ...], bandwidth_fraction: float
) -> tuple[tuple[int, ...], tuple[float, ...], tuple[float, ...]]:
    """Per-stage ``(alpha_counts, buffer_fractions, beta_factors)``.

    Args:
        dims: ring sizes per dimension, execution order (all >= 2; the
            caller validates and formats errors).
        bandwidth_fraction: per-dimension link bandwidth fraction of the
            chip egress (in ``(0, 1]``; caller-validated).

    Returns:
        Three per-stage tuples: ring steps ``p - 1``, the live buffer
        fraction entering each stage, and the scaled beta factor
        ``(p - 1) / p / bandwidth_fraction * buffer_fraction``.
    """
    p = np.asarray(dims, dtype=np.float64)
    # (p - 1) / p / f, elementwise: the same two float64 divisions the
    # scalar reference performs per stage.
    base_beta = (p - 1.0) / p / bandwidth_fraction
    # Buffer fractions 1, 1/p0, (1/p0)/p1, ...: divide.accumulate over
    # [1, p0, p1, ...] replays the reference's sequential divisions.
    chain = np.empty(p.size, dtype=np.float64)
    chain[0] = 1.0
    chain[1:] = p[:-1]
    buffer_fractions = np.divide.accumulate(chain)
    betas = base_beta * buffer_fractions
    alpha_counts = tuple(int(d) - 1 for d in dims)
    return alpha_counts, tuple(buffer_fractions.tolist()), tuple(betas.tolist())
