"""``python -m repro`` — reproduce the paper's results from the shell."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
