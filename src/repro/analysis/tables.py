"""Text-table formatters for the paper's tables and figures.

The benchmark harness prints rows directly comparable to the paper; this
module renders them. Everything returns plain strings so the benches work
in any terminal and their output can be diffed.
"""

from __future__ import annotations

from ..collectives.cost_model import CollectiveCost

__all__ = ["render_table", "cost_row", "render_histogram"]


def render_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Render an aligned ASCII table.

    Raises:
        ValueError: when a row's width disagrees with the header.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, header has {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def cost_row(label: str, electrical: CollectiveCost, optical: CollectiveCost) -> list[str]:
    """One Tables-1/2-style row: alpha and beta terms for both sides."""
    ratio = (
        electrical.beta_factor / optical.beta_factor
        if optical.beta_factor
        else float("inf")
    )
    return [
        label,
        electrical.alpha_label(),
        optical.alpha_label(),
        electrical.beta_label(),
        optical.beta_label(),
        f"{ratio:.3g}x",
    ]


def render_histogram(
    bin_edges: list[float],
    counts: list[int],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII histogram (for Figures 3a/3b)."""
    if len(bin_edges) != len(counts) + 1:
        raise ValueError("need len(bin_edges) == len(counts) + 1")
    peak = max(counts) if counts else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(0, round(width * count / max(peak, 1)))
        lines.append(
            f"{bin_edges[i]:7.3f}-{bin_edges[i + 1]:7.3f}{unit} | "
            f"{bar} {count}"
        )
    return "\n".join(lines)
