"""Parameter-sweep helpers producing figure-style series.

The benches and examples repeatedly sweep the same axes — buffer size,
slice shape, reconfiguration delay — and tabulate electrical-vs-optical
outcomes. These helpers build those series once, with explicit dataclass
rows, so the output of every sweep is self-describing.

Both sweeps are routed through the batch execution engine
(:func:`repro.api.run_many`): each grid point becomes a frozen
:class:`~repro.api.spec.ScenarioSpec` evaluated by the electrical and
photonic backends, so sweeps dedupe repeated points, can fan out over
worker processes, and hit the persistent result cache. Passing a custom
:class:`~repro.collectives.cost_model.CostParameters` falls back to the
direct closed-form evaluation (the API backends ground costs at the
default parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..collectives.cost_model import CostParameters
from ..collectives.primitives import Interconnect, reduce_scatter_cost
from ..topology.slices import Slice

if TYPE_CHECKING:  # pragma: no cover
    from ..api.session import FabricSession

__all__ = [
    "BufferSweepPoint",
    "buffer_size_sweep",
    "ShapeSweepPoint",
    "slice_shape_sweep",
]


@dataclass(frozen=True)
class BufferSweepPoint:
    """Electrical vs optical REDUCESCATTER time at one buffer size.

    Attributes:
        n_bytes: buffer size.
        electrical_s: closed-form electrical time.
        optical_s: closed-form steered-optics time (includes r).
    """

    n_bytes: int
    electrical_s: float
    optical_s: float

    @property
    def speedup(self) -> float:
        """Electrical over optical duration."""
        return self.electrical_s / self.optical_s

    @property
    def optics_wins(self) -> bool:
        """Whether steering beats static links at this size."""
        return self.optical_s < self.electrical_s


def buffer_size_sweep(
    slc: Slice,
    sizes: list[int],
    params: CostParameters | None = None,
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    session: FabricSession | None = None,
) -> list[BufferSweepPoint]:
    """REDUCESCATTER time vs buffer size for one slice, both interconnects.

    With default cost parameters the sweep runs on the batch engine: one
    spec per (size, fabric) grid point through :func:`repro.api.run_many`,
    honoring ``jobs``/``cache_dir``/``no_cache``. A custom ``params``
    evaluates the closed-form costs directly instead.

    Raises:
        ValueError: on an empty or non-positive size list.
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ValueError("sizes must be positive")
    if params is not None:
        electrical = reduce_scatter_cost(slc, Interconnect.ELECTRICAL)
        optical = reduce_scatter_cost(slc, Interconnect.OPTICAL)
        return [
            BufferSweepPoint(
                n_bytes=size,
                electrical_s=electrical.seconds(size, params),
                optical_s=optical.seconds(size, params),
            )
            for size in sizes
        ]
    # Imported lazily: repro.api.session imports repro.analysis, so a
    # module-level import here would close an import cycle.
    from ..api.batch import run_many
    from ..api.spec import ScenarioSpec, SliceSpec

    tenant = SliceSpec(name=slc.name, shape=slc.shape, offset=slc.offset)
    specs = [
        ScenarioSpec(
            fabric=fabric,
            rack_shape=slc.rack.shape,
            slices=(tenant,),
            buffer_bytes=size,
            outputs=("costs",),
        )
        for size in sizes
        for fabric in ("electrical", "photonic")
    ]
    sweep = run_many(
        specs, jobs=jobs, cache_dir=cache_dir, no_cache=no_cache, session=session
    )
    results = sweep.results
    points = []
    for i, size in enumerate(sizes):
        electrical_line = results[2 * i].costs.by_name(slc.name)
        optical_line = results[2 * i + 1].costs.by_name(slc.name)
        points.append(
            BufferSweepPoint(
                n_bytes=size,
                electrical_s=electrical_line.seconds,
                optical_s=optical_line.seconds,
            )
        )
    return points


@dataclass(frozen=True)
class ShapeSweepPoint:
    """Utilization and cost advantage for one slice shape.

    Attributes:
        shape: the slice shape.
        chips: chip count.
        electrical_utilization: usable bandwidth fraction, static links.
        beta_advantage: electrical-over-optical beta factor ratio.
        skipped: reason the shape was not evaluated (``None`` for a
            normal row); skipped rows carry zero utilization/advantage.
    """

    shape: tuple[int, ...]
    chips: int
    electrical_utilization: float
    beta_advantage: float
    skipped: str | None = None


def slice_shape_sweep(
    shapes: list[tuple[int, ...]],
    rack_shape: tuple[int, ...] = (4, 4, 4),
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    session: FabricSession | None = None,
) -> list[ShapeSweepPoint]:
    """Sweep slice shapes on a fresh rack, reporting the optics advantage.

    Every requested shape yields exactly one row, in input order. Shapes
    with a single chip have no collective to run; instead of silently
    dropping them the row is returned with ``skipped`` set to the reason
    (an earlier version dropped such rows, which made a sweep's output
    misaligned with its input grid).

    Raises:
        ValueError: if *every* requested shape is skipped (the sweep
            would carry no data), or on an empty shape list.
    """
    if not shapes:
        raise ValueError("shapes must be non-empty")
    origin = tuple(0 for _ in rack_shape)
    evaluated = [
        shape for shape in shapes if _chip_count(shape) >= 2
    ]
    if not evaluated:
        raise ValueError(
            f"all {len(shapes)} requested shapes are single-chip; "
            "nothing to sweep"
        )
    from ..api.batch import run_many
    from ..api.spec import ScenarioSpec, SliceSpec

    specs = [
        ScenarioSpec(
            fabric=fabric,
            rack_shape=rack_shape,
            slices=(SliceSpec("sweep", shape, origin),),
            outputs=("costs", "utilization"),
        )
        for shape in evaluated
        for fabric in ("electrical", "photonic")
    ]
    sweep = run_many(
        specs, jobs=jobs, cache_dir=cache_dir, no_cache=no_cache, session=session
    )
    results = sweep.results
    by_shape: dict[tuple[int, ...], ShapeSweepPoint] = {}
    for i, shape in enumerate(evaluated):
        electrical = results[2 * i]
        optical = results[2 * i + 1]
        electrical_cost = electrical.costs.by_name("sweep").cost
        optical_cost = optical.costs.by_name("sweep").cost
        row = electrical.utilization[0]
        by_shape[tuple(shape)] = ShapeSweepPoint(
            shape=tuple(shape),
            chips=row.chips,
            electrical_utilization=row.electrical_fraction,
            beta_advantage=electrical_cost.beta_factor / optical_cost.beta_factor,
        )
    points = []
    for shape in shapes:
        shape = tuple(shape)
        if shape in by_shape:
            points.append(by_shape[shape])
        else:
            points.append(
                ShapeSweepPoint(
                    shape=shape,
                    chips=1,
                    electrical_utilization=0.0,
                    beta_advantage=0.0,
                    skipped="single-chip slice: no collective to run",
                )
            )
    return points


def _chip_count(shape: tuple[int, ...]) -> int:
    count = 1
    for ext in shape:
        count *= int(ext)
    return count
