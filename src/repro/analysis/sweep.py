"""Parameter-sweep helpers producing figure-style series.

The benches and examples repeatedly sweep the same axes — buffer size,
slice shape, reconfiguration delay — and tabulate electrical-vs-optical
outcomes. These helpers build those series once, with explicit dataclass
rows, so the output of every sweep is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.cost_model import CostParameters
from ..collectives.primitives import Interconnect, reduce_scatter_cost
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Torus

__all__ = [
    "BufferSweepPoint",
    "buffer_size_sweep",
    "ShapeSweepPoint",
    "slice_shape_sweep",
]


@dataclass(frozen=True)
class BufferSweepPoint:
    """Electrical vs optical REDUCESCATTER time at one buffer size.

    Attributes:
        n_bytes: buffer size.
        electrical_s: closed-form electrical time.
        optical_s: closed-form steered-optics time (includes r).
    """

    n_bytes: int
    electrical_s: float
    optical_s: float

    @property
    def speedup(self) -> float:
        """Electrical over optical duration."""
        return self.electrical_s / self.optical_s

    @property
    def optics_wins(self) -> bool:
        """Whether steering beats static links at this size."""
        return self.optical_s < self.electrical_s


def buffer_size_sweep(
    slc: Slice,
    sizes: list[int],
    params: CostParameters | None = None,
) -> list[BufferSweepPoint]:
    """REDUCESCATTER time vs buffer size for one slice, both interconnects.

    Raises:
        ValueError: on an empty or non-positive size list.
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ValueError("sizes must be positive")
    params = params or CostParameters()
    electrical = reduce_scatter_cost(slc, Interconnect.ELECTRICAL)
    optical = reduce_scatter_cost(slc, Interconnect.OPTICAL)
    return [
        BufferSweepPoint(
            n_bytes=size,
            electrical_s=electrical.seconds(size, params),
            optical_s=optical.seconds(size, params),
        )
        for size in sizes
    ]


@dataclass(frozen=True)
class ShapeSweepPoint:
    """Utilization and cost advantage for one slice shape.

    Attributes:
        shape: the slice shape.
        chips: chip count.
        electrical_utilization: usable bandwidth fraction, static links.
        beta_advantage: electrical-over-optical beta factor ratio.
    """

    shape: tuple[int, ...]
    chips: int
    electrical_utilization: float
    beta_advantage: float


def slice_shape_sweep(
    shapes: list[tuple[int, ...]],
    rack_shape: tuple[int, ...] = (4, 4, 4),
) -> list[ShapeSweepPoint]:
    """Sweep slice shapes on a fresh rack, reporting the optics advantage.

    Shapes with a single chip are skipped (no collective to run).
    """
    rack = Torus(rack_shape)
    points = []
    for shape in shapes:
        allocator = SliceAllocator(rack)
        slc = allocator.allocate("sweep", shape, tuple(0 for _ in rack_shape))
        if slc.chip_count < 2:
            continue
        electrical = reduce_scatter_cost(slc, Interconnect.ELECTRICAL)
        optical = reduce_scatter_cost(slc, Interconnect.OPTICAL)
        points.append(
            ShapeSweepPoint(
                shape=shape,
                chips=slc.chip_count,
                electrical_utilization=slc.electrical_utilization(),
                beta_advantage=electrical.beta_factor / optical.beta_factor,
            )
        )
    return points
