"""Cross-tenant congestion analysis (paper Figure 5b, Section 4.1).

The paper defines congestion as "multiple transfers occur[ring]
simultaneously on the same link". A single tenant's rings are internally
congestion-free; the trouble starts when several tenants' rings — or a
tenant's wrap paths through foreign chips — land on the same physical
links. This module takes the per-slice ring link sets and reports exactly
which links are shared by whom.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..topology.slices import SliceAllocator
from ..topology.torus import Link

__all__ = ["SharedLink", "RackCongestionReport", "analyze_rack_congestion"]


@dataclass(frozen=True)
class SharedLink:
    """One physical link carrying traffic of multiple ring instances.

    Attributes:
        link: the shared link.
        users: labels of the (slice, dimension) rings using it.
    """

    link: Link
    users: tuple[str, ...]

    @property
    def multiplicity(self) -> int:
        """How many ring instances share the link."""
        return len(self.users)


@dataclass(frozen=True)
class RackCongestionReport:
    """Congestion summary of a multi-tenant rack.

    Attributes:
        shared_links: every link carrying more than one user.
        per_slice_congested_dims: for each slice, the dimensions whose
            rings hit at least one shared link.
    """

    shared_links: tuple[SharedLink, ...]
    per_slice_congested_dims: dict[str, tuple[int, ...]]

    @property
    def is_congestion_free(self) -> bool:
        """True when no link is shared."""
        return not self.shared_links

    @property
    def worst_multiplicity(self) -> int:
        """Largest number of users on one link (1 when congestion-free)."""
        return max((s.multiplicity for s in self.shared_links), default=1)

    def congested_dimensions(self, slice_name: str) -> tuple[int, ...]:
        """Dimensions of ``slice_name`` whose rings are congested."""
        return self.per_slice_congested_dims.get(slice_name, ())


def analyze_rack_congestion(
    allocator: SliceAllocator,
    dims_per_slice: dict[str, list[int]] | None = None,
) -> RackCongestionReport:
    """Check which tenants' rings collide on physical links.

    Args:
        allocator: the rack's slice allocator.
        dims_per_slice: the dimensions each slice attempts to ring over;
            defaults to every slice's *active* dimensions — i.e. the
            tenant naively runs the full bucket algorithm, the scenario of
            Figure 5b where Z (and under-spanning Y) rings collide.
    """
    usage: dict[Link, list[str]] = {}
    slice_dim_links: dict[tuple[str, int], set[Link]] = {}
    for slc in allocator.slices:
        dims = (
            dims_per_slice.get(slc.name, slc.active_dimensions())
            if dims_per_slice is not None
            else slc.active_dimensions()
        )
        for dim in dims:
            links = set(slc.ring_links(dim))
            slice_dim_links[(slc.name, dim)] = links
            label = f"{slc.name}/dim{dim}"
            for link in links:
                usage.setdefault(link, []).append(label)
    # Sort on the coordinate tuples directly: same order as Link's
    # field-wise dataclass ordering, but compared in C instead of through
    # thousands of generated __lt__ calls (this sort is on the sweep hot
    # path).
    shared = tuple(
        SharedLink(link=link, users=tuple(sorted(users)))
        for link, users in sorted(
            usage.items(), key=lambda kv: (kv[0].src, kv[0].dst)
        )
        if len(users) > 1
    )
    shared_set = {s.link for s in shared}
    per_slice: dict[str, list[int]] = {}
    for (name, dim), links in slice_dim_links.items():
        if links & shared_set:
            per_slice.setdefault(name, []).append(dim)
    return RackCongestionReport(
        shared_links=shared,
        per_slice_congested_dims={
            name: tuple(sorted(dims)) for name, dims in per_slice.items()
        },
    )


def congestion_multiplicity_histogram(
    report: RackCongestionReport,
) -> dict[int, int]:
    """How many links are shared by exactly k users, for each k >= 2."""
    counts = Counter(s.multiplicity for s in report.shared_links)
    return dict(sorted(counts.items()))
