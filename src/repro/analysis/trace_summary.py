"""Summaries over event traces: per-category rollups and timeline stats.

A :class:`~repro.obs.tracer.Tracer` (or a
:class:`~repro.api.result.TraceReport`) holds a flat stream of Chrome
``trace_event`` records; this module condenses it into the handful of
numbers a human wants before opening the timeline in a viewer — how many
spans per category, how much cumulative duration each category charged,
and where the trace's horizon sits. The CLI's ``repro trace`` stderr
summary and the failure-recovery example both render from here.

Everything operates on plain :class:`~repro.obs.tracer.TraceEvent`
sequences, so the module depends only on the observability layer — it
never imports the API package (which imports *this* package for
utilization analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..obs.tracer import TraceEvent

__all__ = ["CategorySummary", "summarize_trace", "render_trace_summary"]


@dataclass(frozen=True)
class CategorySummary:
    """Rollup of one trace category.

    Attributes:
        category: the ``cat`` field the rollup covers.
        spans: complete ("X") events in the category.
        instants: instant ("i") events in the category.
        total_dur_us: summed span duration in microseconds.
        first_ts_us: earliest event timestamp (0.0 for an empty category).
        last_ts_us: latest event *end* (span end beats span start).
    """

    category: str
    spans: int
    instants: int
    total_dur_us: float
    first_ts_us: float
    last_ts_us: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "category": self.category,
            "spans": self.spans,
            "instants": self.instants,
            "total_dur_us": self.total_dur_us,
            "first_ts_us": self.first_ts_us,
            "last_ts_us": self.last_ts_us,
        }


def _events_of(trace: Any) -> Sequence[TraceEvent]:
    """Accept a Tracer, a TraceReport, or a raw event sequence."""
    events = getattr(trace, "events", trace)
    return tuple(events)


def summarize_trace(trace: Any) -> list[CategorySummary]:
    """Per-category rollups, sorted by category name.

    ``trace`` may be a :class:`~repro.obs.tracer.Tracer`, a
    ``TraceReport``, or any iterable of ``TraceEvent``. Metadata events
    (``ph == "M"``) carry no timeline information and are skipped.
    """
    buckets: dict[str, dict[str, float]] = {}
    for event in _events_of(trace):
        if event.ph == "M":
            continue
        bucket = buckets.setdefault(
            event.cat,
            {
                "spans": 0,
                "instants": 0,
                "dur": 0.0,
                "first": float("inf"),
                "last": float("-inf"),
            },
        )
        if event.ph == "X":
            bucket["spans"] += 1
            bucket["dur"] += event.dur_us or 0.0
        elif event.ph == "i":
            bucket["instants"] += 1
        bucket["first"] = min(bucket["first"], event.ts_us)
        bucket["last"] = max(bucket["last"], event.end_us)
    return [
        CategorySummary(
            category=cat,
            spans=int(b["spans"]),
            instants=int(b["instants"]),
            total_dur_us=b["dur"],
            first_ts_us=b["first"] if b["first"] != float("inf") else 0.0,
            last_ts_us=b["last"] if b["last"] != float("-inf") else 0.0,
        )
        for cat, b in sorted(buckets.items())
    ]


def render_trace_summary(trace: Any) -> str:
    """A compact multi-line text summary of a trace, for stderr/logs."""
    summaries = summarize_trace(trace)
    if not summaries:
        return "trace: no events"
    horizon = max(s.last_ts_us for s in summaries)
    total = sum(s.spans + s.instants for s in summaries)
    lines = [
        f"trace: {total} events, {len(summaries)} categories, "
        f"horizon {horizon / 1e6:.6f} s"
    ]
    for s in summaries:
        lines.append(
            f"  {s.category:<10} {s.spans:>5} spans  {s.instants:>5} instants"
            f"  {s.total_dur_us:>14.3f} us total"
        )
    return "\n".join(lines)
