"""Bandwidth-utilization analysis (paper Figure 5b/5c).

Computes, for every slice of a rack layout, the per-chip bandwidth it can
actually use under static electrical links versus steered LIGHTPATH
optics — the series Figure 5c plots. Includes the canonical Figure 5b rack
layout so benches and examples reproduce the exact scenario.

Two families of helpers live here. The closed-form ones
(:func:`slice_utilization`, :func:`rack_utilization`) derive usable
fractions from slice geometry alone. The measured ones
(:func:`dimension_utilization`, :func:`compare_link_utilization`)
aggregate a simulator :class:`~repro.api.result.LinkUtilizationReport`,
so the same stranded-bandwidth story can be *measured* instead of
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..collectives.primitives import Interconnect
from ..core.steering import effective_chip_bandwidth
from ..phy.constants import CHIP_EGRESS_BYTES
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Torus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> analysis)
    from ..api.result import LinkUtilizationReport

__all__ = [
    "SliceUtilization",
    "DimensionUtilization",
    "FabricUtilizationComparison",
    "figure5b_layout",
    "rack_utilization",
    "dimension_utilization",
    "compare_link_utilization",
]


@dataclass(frozen=True)
class SliceUtilization:
    """Utilization of one slice under both interconnects.

    Attributes:
        name: slice label.
        shape: slice shape.
        chips: chip count.
        usable_dims_electrical: dimensions with congestion-free rings.
        electrical_fraction: usable fraction of chip bandwidth, electrical.
        optical_fraction: usable fraction with LIGHTPATH steering.
        electrical_bandwidth_bytes: absolute per-chip bandwidth, electrical.
        optical_bandwidth_bytes: absolute per-chip bandwidth, optical.
    """

    name: str
    shape: tuple[int, ...]
    chips: int
    usable_dims_electrical: tuple[int, ...]
    electrical_fraction: float
    optical_fraction: float
    electrical_bandwidth_bytes: float
    optical_bandwidth_bytes: float

    @property
    def bandwidth_loss_percent(self) -> float:
        """Percent of chip bandwidth the electrical slice strands.

        Slice-1's 66 % in Figure 5c.
        """
        return (1.0 - self.electrical_fraction) * 100.0

    @property
    def optical_gain_factor(self) -> float:
        """Optical-to-electrical usable-bandwidth ratio."""
        if self.electrical_fraction == 0:
            return float("inf")
        return self.optical_fraction / self.electrical_fraction


def figure5b_layout(allocator: SliceAllocator | None = None) -> SliceAllocator:
    """The multi-tenant rack layout of Figure 5b.

    Four tenants fill a 4x4x4 rack: Slice-1 (4x2x1) and Slice-2 (4x2x1)
    share the z=3 plane, Slice-3 (4x4x1) owns z=0, and Slice-4 (4x4x2)
    owns z=1..2.
    """
    if allocator is None:
        allocator = SliceAllocator(Torus((4, 4, 4)))
    allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    allocator.allocate("Slice-2", (4, 2, 1), (0, 2, 3))
    return allocator


def slice_utilization(
    slc: Slice, chip_egress: float = CHIP_EGRESS_BYTES
) -> SliceUtilization:
    """Utilization summary of one slice."""
    return SliceUtilization(
        name=slc.name,
        shape=slc.shape,
        chips=slc.chip_count,
        usable_dims_electrical=tuple(slc.usable_dimensions()),
        electrical_fraction=slc.electrical_utilization(),
        optical_fraction=slc.optical_utilization(),
        electrical_bandwidth_bytes=effective_chip_bandwidth(
            slc, Interconnect.ELECTRICAL, chip_egress
        ),
        optical_bandwidth_bytes=effective_chip_bandwidth(
            slc, Interconnect.OPTICAL, chip_egress
        ),
    )


def rack_utilization(
    allocator: SliceAllocator, chip_egress: float = CHIP_EGRESS_BYTES
) -> list[SliceUtilization]:
    """Utilization summaries for every tenant of a rack, by name."""
    return [
        slice_utilization(slc, chip_egress)
        for slc in sorted(allocator.slices, key=lambda s: s.name)
    ]


# -- measured (simulator) aggregation ---------------------------------------------


@dataclass(frozen=True)
class DimensionUtilization:
    """Measured load of one torus dimension's links.

    Attributes:
        dimension: torus dimension index.
        links: directed links the dimension contributes.
        mean_utilization: mean over those links of per-link mean
            utilization (horizon-normalized).
        idle_fraction: fraction of the dimension's links that carried
            ~nothing — per-dimension stranded bandwidth.
    """

    dimension: int
    links: int
    mean_utilization: float
    idle_fraction: float


@dataclass(frozen=True)
class FabricUtilizationComparison:
    """Electrical vs photonic measured utilization, side by side.

    The same workload runs on both fabrics; the electrical torus spreads
    chip egress across every wired dimension while steering concentrates
    it, so the electrical run takes longer and strands idle links. The
    measured bandwidth-loss fraction here reproduces Figure 5c's 66 %
    headline for Slice-1.

    Attributes:
        electrical_horizon_s: electrical finish time.
        photonic_horizon_s: photonic finish time.
        electrical_mean_utilization: rack-wide mean, electrical.
        photonic_mean_utilization: rack-wide mean, photonic.
        electrical_idle_link_fraction: stranded-link fraction, electrical.
        photonic_idle_link_fraction: stranded-link fraction, photonic.
    """

    electrical_horizon_s: float
    photonic_horizon_s: float
    electrical_mean_utilization: float
    photonic_mean_utilization: float
    electrical_idle_link_fraction: float
    photonic_idle_link_fraction: float

    @property
    def speedup(self) -> float:
        """How much faster the photonic fabric finished the workload."""
        if self.photonic_horizon_s == 0:
            return float("inf")
        return self.electrical_horizon_s / self.photonic_horizon_s

    @property
    def bandwidth_loss_fraction(self) -> float:
        """Fraction of achievable bandwidth the electrical fabric strands.

        Identical bytes move on both fabrics, so achieved bandwidth is
        inversely proportional to finish time: a 3x slower electrical run
        means it realized a third of the photonic bandwidth — a 66 % loss,
        Figure 5c's Slice-1 number, now measured.
        """
        if self.electrical_horizon_s == 0:
            return 0.0
        return 1.0 - self.photonic_horizon_s / self.electrical_horizon_s


def dimension_utilization(
    report: "LinkUtilizationReport",
) -> tuple[DimensionUtilization, ...]:
    """Per-dimension aggregation of a measured link-utilization report.

    An electrical slice that can only ring along some dimensions shows
    up here directly: the unusable dimensions' links have ~0 mean
    utilization and an idle fraction near 1.0.
    """
    means = report.mean_utilization_by_dimension()
    idles = report.idle_fraction_by_dimension()
    counts: dict[int, int] = {}
    for line in report.links:
        counts[line.dimension] = counts.get(line.dimension, 0) + 1
    return tuple(
        DimensionUtilization(
            dimension=dim,
            links=counts[dim],
            mean_utilization=means[dim],
            idle_fraction=idles[dim],
        )
        for dim in sorted(counts)
    )


def compare_link_utilization(
    electrical: "LinkUtilizationReport",
    photonic: "LinkUtilizationReport",
) -> FabricUtilizationComparison:
    """Side-by-side summary of two fabrics' measured reports."""

    def idle_fraction(report: "LinkUtilizationReport") -> float:
        if not report.links:
            return 0.0
        return len(report.idle_links()) / len(report.links)

    return FabricUtilizationComparison(
        electrical_horizon_s=electrical.horizon_s,
        photonic_horizon_s=photonic.horizon_s,
        electrical_mean_utilization=electrical.mean_utilization,
        photonic_mean_utilization=photonic.mean_utilization,
        electrical_idle_link_fraction=idle_fraction(electrical),
        photonic_idle_link_fraction=idle_fraction(photonic),
    )
