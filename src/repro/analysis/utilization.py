"""Bandwidth-utilization analysis (paper Figure 5b/5c).

Computes, for every slice of a rack layout, the per-chip bandwidth it can
actually use under static electrical links versus steered LIGHTPATH
optics — the series Figure 5c plots. Includes the canonical Figure 5b rack
layout so benches and examples reproduce the exact scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.primitives import Interconnect
from ..core.steering import effective_chip_bandwidth
from ..phy.constants import CHIP_EGRESS_BYTES
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Torus

__all__ = [
    "SliceUtilization",
    "figure5b_layout",
    "rack_utilization",
]


@dataclass(frozen=True)
class SliceUtilization:
    """Utilization of one slice under both interconnects.

    Attributes:
        name: slice label.
        shape: slice shape.
        chips: chip count.
        usable_dims_electrical: dimensions with congestion-free rings.
        electrical_fraction: usable fraction of chip bandwidth, electrical.
        optical_fraction: usable fraction with LIGHTPATH steering.
        electrical_bandwidth_bytes: absolute per-chip bandwidth, electrical.
        optical_bandwidth_bytes: absolute per-chip bandwidth, optical.
    """

    name: str
    shape: tuple[int, ...]
    chips: int
    usable_dims_electrical: tuple[int, ...]
    electrical_fraction: float
    optical_fraction: float
    electrical_bandwidth_bytes: float
    optical_bandwidth_bytes: float

    @property
    def bandwidth_loss_percent(self) -> float:
        """Percent of chip bandwidth the electrical slice strands.

        Slice-1's 66 % in Figure 5c.
        """
        return (1.0 - self.electrical_fraction) * 100.0

    @property
    def optical_gain_factor(self) -> float:
        """Optical-to-electrical usable-bandwidth ratio."""
        if self.electrical_fraction == 0:
            return float("inf")
        return self.optical_fraction / self.electrical_fraction


def figure5b_layout(allocator: SliceAllocator | None = None) -> SliceAllocator:
    """The multi-tenant rack layout of Figure 5b.

    Four tenants fill a 4x4x4 rack: Slice-1 (4x2x1) and Slice-2 (4x2x1)
    share the z=3 plane, Slice-3 (4x4x1) owns z=0, and Slice-4 (4x4x2)
    owns z=1..2.
    """
    if allocator is None:
        allocator = SliceAllocator(Torus((4, 4, 4)))
    allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    allocator.allocate("Slice-2", (4, 2, 1), (0, 2, 3))
    return allocator


def slice_utilization(
    slc: Slice, chip_egress: float = CHIP_EGRESS_BYTES
) -> SliceUtilization:
    """Utilization summary of one slice."""
    return SliceUtilization(
        name=slc.name,
        shape=slc.shape,
        chips=slc.chip_count,
        usable_dims_electrical=tuple(slc.usable_dimensions()),
        electrical_fraction=slc.electrical_utilization(),
        optical_fraction=slc.optical_utilization(),
        electrical_bandwidth_bytes=effective_chip_bandwidth(
            slc, Interconnect.ELECTRICAL, chip_egress
        ),
        optical_bandwidth_bytes=effective_chip_bandwidth(
            slc, Interconnect.OPTICAL, chip_egress
        ),
    )


def rack_utilization(
    allocator: SliceAllocator, chip_egress: float = CHIP_EGRESS_BYTES
) -> list[SliceUtilization]:
    """Utilization summaries for every tenant of a rack, by name."""
    return [
        slice_utilization(slc, chip_egress)
        for slc in sorted(allocator.slices, key=lambda s: s.name)
    ]
