"""Analysis and reporting: utilization, congestion and table rendering."""

from .congestion_report import (
    RackCongestionReport,
    SharedLink,
    analyze_rack_congestion,
    congestion_multiplicity_histogram,
)
from .sweep import (
    BufferSweepPoint,
    ShapeSweepPoint,
    buffer_size_sweep,
    slice_shape_sweep,
)
from .tables import cost_row, render_histogram, render_table
from .trace_summary import (
    CategorySummary,
    render_trace_summary,
    summarize_trace,
)
from .utilization import (
    DimensionUtilization,
    FabricUtilizationComparison,
    SliceUtilization,
    compare_link_utilization,
    dimension_utilization,
    figure5b_layout,
    rack_utilization,
    slice_utilization,
)

__all__ = [
    "RackCongestionReport",
    "SharedLink",
    "analyze_rack_congestion",
    "congestion_multiplicity_histogram",
    "BufferSweepPoint",
    "ShapeSweepPoint",
    "buffer_size_sweep",
    "slice_shape_sweep",
    "cost_row",
    "render_histogram",
    "render_table",
    "CategorySummary",
    "summarize_trace",
    "render_trace_summary",
    "SliceUtilization",
    "DimensionUtilization",
    "FabricUtilizationComparison",
    "compare_link_utilization",
    "dimension_utilization",
    "figure5b_layout",
    "rack_utilization",
    "slice_utilization",
]
