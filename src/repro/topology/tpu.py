"""TPUv4-style rack and cluster substrate (paper Section 4, Figure 5a).

The paper grounds its analysis in Google's TPUv4 supercomputer: 64 racks,
each a 4x4x4 electrical 3D torus of TPU chips grouped four-per-server, with
optical circuit switches joining opposite rack faces so racks compose into
larger tori. This module builds that structure:

* :class:`TpuRack` — one 4x4x4 cube with server grouping,
* :class:`TpuCluster` — racks plus per-dimension OCS planes and global chip
  addressing,
* wrap-around "face ports" through which inter-rack Z/Y/X circuits run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..phy.constants import (
    CHIPS_PER_SERVER,
    RACK_SHAPE,
    RACKS_PER_CLUSTER,
    SERVERS_PER_RACK,
)
from .ocs import OpticalCircuitSwitch
from .torus import Coordinate, Torus

__all__ = ["GlobalChipId", "TpuRack", "TpuCluster"]


@dataclass(frozen=True, order=True)
class GlobalChipId:
    """Cluster-wide identity of one TPU chip.

    Attributes:
        rack: rack index in the cluster.
        coord: chip coordinate within the rack torus.
    """

    rack: int
    coord: Coordinate


class TpuRack:
    """One TPUv4 rack: a 4x4x4 torus of chips grouped into servers.

    Server grouping follows the paper's description of 16 servers with 4
    TPUs each: servers tile the cube in 2x2x1 blocks, so chips
    ``(x, y, z)`` and ``(x', y', z)`` share a board iff they share
    ``(x // 2, y // 2, z)``.

    Attributes:
        index: rack index within the cluster.
        torus: the rack's electrical torus.
    """

    SERVER_BLOCK = (2, 2, 1)

    def __init__(self, index: int, shape: tuple[int, ...] = RACK_SHAPE):
        if index < 0:
            raise ValueError("rack index cannot be negative")
        self.index = index
        self.torus = Torus(shape)
        self._failed: set[Coordinate] = set()

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent of the rack torus."""
        return self.torus.shape

    @property
    def chip_count(self) -> int:
        """Chips in the rack."""
        return self.torus.node_count

    # -- server grouping -------------------------------------------------------

    def server_of(self, chip: Coordinate) -> tuple[int, ...]:
        """Identifier of the server board hosting ``chip``."""
        if not self.torus.contains(chip):
            raise ValueError(f"{chip} is not in rack {self.index}")
        return tuple(c // b for c, b in zip(chip, self.SERVER_BLOCK))

    def server_chips(self, server: tuple[int, ...]) -> list[Coordinate]:
        """Chips on server board ``server``."""
        axes = [
            range(s * b, min((s + 1) * b, ext))
            for s, b, ext in zip(server, self.SERVER_BLOCK, self.shape)
        ]
        chips = [tuple(c) for c in itertools.product(*axes)]
        if not chips or any(not self.torus.contains(c) for c in chips):
            raise ValueError(f"{server} is not a server of rack {self.index}")
        return chips

    def servers(self) -> list[tuple[int, ...]]:
        """All server identifiers in the rack."""
        axes = [
            range((ext + b - 1) // b) for ext, b in zip(self.shape, self.SERVER_BLOCK)
        ]
        return [tuple(s) for s in itertools.product(*axes)]

    def validate_paper_geometry(self) -> None:
        """Assert the rack matches the paper's 16 servers x 4 chips.

        Raises:
            AssertionError: if the geometry deviates.
        """
        servers = self.servers()
        if len(servers) != SERVERS_PER_RACK:
            raise AssertionError(f"{len(servers)} servers != {SERVERS_PER_RACK}")
        for server in servers:
            chips = self.server_chips(server)
            if len(chips) != CHIPS_PER_SERVER:
                raise AssertionError(
                    f"server {server} has {len(chips)} chips != {CHIPS_PER_SERVER}"
                )

    # -- failures ---------------------------------------------------------------

    def fail_chip(self, chip: Coordinate) -> None:
        """Mark ``chip`` failed."""
        if not self.torus.contains(chip):
            raise ValueError(f"{chip} is not in rack {self.index}")
        self._failed.add(chip)

    def repair_chip(self, chip: Coordinate) -> None:
        """Clear the failure on ``chip``."""
        self._failed.discard(chip)

    def is_failed(self, chip: Coordinate) -> bool:
        """Whether ``chip`` is currently failed."""
        return chip in self._failed

    def failed_chips(self) -> set[Coordinate]:
        """All currently failed chips."""
        return set(self._failed)

    # -- face ports ---------------------------------------------------------------

    def face_ports(self, dim: int) -> list[tuple[Coordinate, Coordinate]]:
        """Pairs of opposite-face chips whose wrap link leaves the rack.

        In TPUv4 the wrap-around links of each dimension are carried
        optically through OCSes, which lets racks chain into longer tori.
        Returns ``(low_face_chip, high_face_chip)`` pairs for ``dim``.
        """
        if not 0 <= dim < self.torus.ndim:
            raise ValueError(f"dimension {dim} out of range")
        cross = [
            range(ext) if d != dim else [0]
            for d, ext in enumerate(self.shape)
        ]
        pairs = []
        for anchor in itertools.product(*cross):
            low = tuple(anchor)
            high = self.torus.shift(low, dim, self.shape[dim] - 1)
            pairs.append((low, high))
        return pairs


@dataclass
class TpuCluster:
    """A TPUv4-style cluster: racks joined per-dimension by OCS planes.

    The default builds the paper's 64-rack, 4096-chip deployment. Racks are
    logically arranged on a line per dimension; an OCS plane per dimension
    can splice consecutive racks' wrap links into longer tori (Figure 5a).

    Attributes:
        racks: the rack objects.
        ocs_planes: one OCS per torus dimension.
    """

    rack_count: int = RACKS_PER_CLUSTER
    rack_shape: tuple[int, ...] = RACK_SHAPE
    racks: list[TpuRack] = field(default_factory=list)
    ocs_planes: dict[int, OpticalCircuitSwitch] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rack_count < 1:
            raise ValueError("a cluster needs at least one rack")
        if not self.racks:
            self.racks = [TpuRack(i, self.rack_shape) for i in range(self.rack_count)]
        if not self.ocs_planes:
            self.ocs_planes = {
                d: OpticalCircuitSwitch(name=f"ocs-dim{d}")
                for d in range(len(self.rack_shape))
            }

    @property
    def chip_count(self) -> int:
        """Total chips in the cluster."""
        return sum(rack.chip_count for rack in self.racks)

    def chip_ids(self) -> list[GlobalChipId]:
        """Every chip in the cluster, rack-major order."""
        return [
            GlobalChipId(rack.index, coord)
            for rack in self.racks
            for coord in rack.torus.nodes()
        ]

    def rack(self, index: int) -> TpuRack:
        """The rack at ``index``.

        Raises:
            IndexError: if the index is out of range.
        """
        if not 0 <= index < len(self.racks):
            raise IndexError(f"rack {index} outside cluster of {len(self.racks)}")
        return self.racks[index]

    # -- inter-rack composition ----------------------------------------------------

    def join_racks(self, dim: int, rack_a: int, rack_b: int) -> float:
        """Splice racks ``a`` and ``b`` into a longer torus along ``dim``.

        Programs the dimension's OCS so that rack A's high face connects to
        rack B's low face, port-by-port (and B's high face back to A's low
        face, closing the combined torus). Returns the OCS programming
        latency charged.

        Raises:
            KeyError / IndexError: on unknown dimension or rack.
        """
        ocs = self.ocs_planes[dim]
        a, b = self.rack(rack_a), self.rack(rack_b)
        latency = 0.0
        for (a_low, a_high), (b_low, b_high) in zip(
            a.face_ports(dim), b.face_ports(dim)
        ):
            latency = max(
                latency,
                ocs.reconfigure((rack_a, dim, "high", a_high), (rack_b, dim, "low", b_low)),
            )
            latency = max(
                latency,
                ocs.reconfigure((rack_b, dim, "high", b_high), (rack_a, dim, "low", a_low)),
            )
        return latency

    def racks_joined(self, dim: int, rack_a: int, rack_b: int) -> bool:
        """Whether A's high face currently feeds B's low face along ``dim``."""
        ocs = self.ocs_planes[dim]
        a = self.rack(rack_a)
        for a_low, a_high in a.face_ports(dim):
            peer = ocs.peer((rack_a, dim, "high", a_high))
            if peer is None or peer[0] != rack_b or peer[2] != "low":
                return False
        return True

    def isolate_rack(self, dim: int, rack_index: int) -> None:
        """Tear down every inter-rack circuit of ``rack_index`` along ``dim``.

        With no external circuit, the rack's wrap links close internally —
        the rack reverts to a standalone 4x4x4 torus.
        """
        ocs = self.ocs_planes[dim]
        rack = self.rack(rack_index)
        for low, high in rack.face_ports(dim):
            ocs.disconnect((rack_index, dim, "high", high))
            ocs.disconnect((rack_index, dim, "low", low))

    def failed_chips(self) -> list[GlobalChipId]:
        """All failed chips across the cluster."""
        return [
            GlobalChipId(rack.index, coord)
            for rack in self.racks
            for coord in sorted(rack.failed_chips())
        ]
