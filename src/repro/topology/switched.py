"""Switched multi-accelerator server baseline (NVSwitch-style big switch).

The paper's Section 1 contrasts LIGHTPATH with *switched* electrical
servers that present a "big-switch" abstraction (e.g. Nvidia DGX with
NVSwitch). The abstraction promises contention-free any-to-any bandwidth,
but the paper cites evidence of host-side contention at modern per-chip
rates (hundreds of GB/s) [4, 42]. This module models that: an ideal
crossbar core plus a contention factor that grows with fan-in at a
destination, so the effective bandwidth degrades exactly where the
big-switch abstraction breaks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..phy.constants import CHIP_EGRESS_BYTES

__all__ = ["SwitchedServer", "SwitchFlow"]


@dataclass(frozen=True)
class SwitchFlow:
    """One active flow through the switch.

    Attributes:
        src: source accelerator index.
        dst: destination accelerator index.
        demand_bytes_per_s: offered rate of the flow.
    """

    src: int
    dst: int
    demand_bytes_per_s: float


@dataclass
class SwitchedServer:
    """A multi-accelerator server built around a central switch.

    Attributes:
        accelerators: number of attached accelerators.
        port_bandwidth_bytes: per-accelerator port bandwidth, bytes/s.
        host_contention_per_flow: fractional per-extra-flow throughput loss
            at a shared destination port, modelling the receiver-side host
            congestion of [4]. Zero recovers the ideal big switch.
    """

    accelerators: int = 8
    port_bandwidth_bytes: float = CHIP_EGRESS_BYTES
    host_contention_per_flow: float = 0.1
    _flows: list[SwitchFlow] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.accelerators < 2:
            raise ValueError("a switched server needs at least two accelerators")
        if not 0.0 <= self.host_contention_per_flow < 1.0:
            raise ValueError("contention factor must be in [0, 1)")

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.accelerators:
            raise ValueError(f"accelerator {port} outside server of {self.accelerators}")

    def add_flow(self, src: int, dst: int, demand_bytes_per_s: float) -> SwitchFlow:
        """Register a flow from ``src`` to ``dst``.

        Raises:
            ValueError: on an invalid port or a self-flow.
        """
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            raise ValueError("flows must cross the switch")
        if demand_bytes_per_s <= 0:
            raise ValueError("demand must be positive")
        flow = SwitchFlow(src, dst, demand_bytes_per_s)
        self._flows.append(flow)
        return flow

    def clear(self) -> None:
        """Remove all flows."""
        self._flows.clear()

    @property
    def flows(self) -> list[SwitchFlow]:
        """Registered flows (copy)."""
        return list(self._flows)

    def effective_rates(self) -> dict[SwitchFlow, float]:
        """Achieved rate of every flow, bytes per second.

        Each source port splits its bandwidth across its outgoing flows;
        each destination port splits across incoming flows and additionally
        loses ``host_contention_per_flow`` of throughput per extra
        concurrent inbound flow (host receiver contention). A flow gets
        the minimum of its demand and both port shares.
        """
        out_count = Counter(f.src for f in self._flows)
        in_count = Counter(f.dst for f in self._flows)
        rates: dict[SwitchFlow, float] = {}
        for flow in self._flows:
            src_share = self.port_bandwidth_bytes / out_count[flow.src]
            dst_fanin = in_count[flow.dst]
            contention = max(
                0.0, 1.0 - self.host_contention_per_flow * (dst_fanin - 1)
            )
            dst_share = self.port_bandwidth_bytes / dst_fanin * contention
            rates[flow] = min(flow.demand_bytes_per_s, src_share, dst_share)
        return rates

    def aggregate_throughput_bytes(self) -> float:
        """Sum of achieved flow rates, bytes per second."""
        return sum(self.effective_rates().values())

    def ideal_throughput_bytes(self) -> float:
        """Throughput of the same flows on an ideal contention-free switch."""
        out_count = Counter(f.src for f in self._flows)
        in_count = Counter(f.dst for f in self._flows)
        total = 0.0
        for flow in self._flows:
            src_share = self.port_bandwidth_bytes / out_count[flow.src]
            dst_share = self.port_bandwidth_bytes / in_count[flow.dst]
            total += min(flow.demand_bytes_per_s, src_share, dst_share)
        return total

    def contention_loss_fraction(self) -> float:
        """Fraction of ideal throughput lost to host contention."""
        ideal = self.ideal_throughput_bytes()
        if ideal == 0.0:
            return 0.0
        return 1.0 - self.aggregate_throughput_bytes() / ideal
