"""Generic N-dimensional torus topology.

The TPUv4 substrate the paper analyses (Section 4, Figure 5a) is built from
3D tori: each rack is a 4x4x4 torus of TPU chips, and optical circuit
switches compose racks into larger tori. This module provides the
dimension-agnostic torus machinery — coordinates, directed links, rings
along a dimension, and path enumeration — on which the TPU cluster model,
slice allocator and congestion analysis are built.

Nodes are coordinate tuples; links are directed (a bidirectional cable is
two links), matching how the collective algorithms consume bandwidth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Coordinate", "Link", "Torus"]

Coordinate = tuple[int, ...]


@dataclass(frozen=True, order=True)
class Link:
    """A directed torus link from ``src`` to ``dst``.

    Attributes:
        src: transmitting node coordinate.
        dst: receiving node coordinate.
    """

    src: Coordinate
    dst: Coordinate

    @property
    def reverse(self) -> "Link":
        """The link in the opposite direction."""
        return Link(self.dst, self.src)

    def dimension(self, shape: tuple[int, ...]) -> int:
        """Index of the (single) dimension along which the link runs.

        Raises:
            ValueError: if the endpoints are not torus neighbours.
        """
        diffs = [
            d
            for d, (a, b) in enumerate(zip(self.src, self.dst))
            if a != b
        ]
        if len(diffs) != 1:
            raise ValueError(f"{self} does not run along a single dimension")
        d = diffs[0]
        delta = (self.dst[d] - self.src[d]) % shape[d]
        if delta not in (1, shape[d] - 1):
            raise ValueError(f"{self} endpoints are not neighbours")
        return d


class Torus:
    """An N-dimensional wrap-around torus.

    Attributes:
        shape: extent of each dimension, e.g. ``(4, 4, 4)`` for a TPUv4 rack.
    """

    def __init__(self, shape: Iterable[int]):
        shape = tuple(int(s) for s in shape)
        if not shape:
            raise ValueError("a torus needs at least one dimension")
        if any(s < 1 for s in shape):
            raise ValueError(f"all extents must be >= 1, got {shape}")
        self.shape: tuple[int, ...] = shape

    # -- basic structure ---------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def node_count(self) -> int:
        """Total nodes in the torus."""
        count = 1
        for s in self.shape:
            count *= s
        return count

    def nodes(self) -> Iterator[Coordinate]:
        """All node coordinates, in lexicographic order."""
        return itertools.product(*(range(s) for s in self.shape))

    def contains(self, node: Coordinate) -> bool:
        """Whether ``node`` is a valid coordinate of this torus."""
        return len(node) == self.ndim and all(
            0 <= c < s for c, s in zip(node, self.shape)
        )

    def _require(self, node: Coordinate) -> None:
        if not self.contains(node):
            raise ValueError(f"{node} is not a node of torus {self.shape}")

    # -- adjacency ----------------------------------------------------------

    def shift(self, node: Coordinate, dim: int, delta: int) -> Coordinate:
        """The node ``delta`` steps from ``node`` along ``dim`` (with wrap)."""
        self._require(node)
        if not 0 <= dim < self.ndim:
            raise ValueError(f"dimension {dim} out of range")
        coords = list(node)
        coords[dim] = (coords[dim] + delta) % self.shape[dim]
        return tuple(coords)

    def neighbors(self, node: Coordinate) -> list[Coordinate]:
        """Distinct neighbours of ``node`` across all dimensions."""
        self._require(node)
        result: list[Coordinate] = []
        seen: set[Coordinate] = {node}
        for dim in range(self.ndim):
            if self.shape[dim] == 1:
                continue
            for delta in (1, -1):
                other = self.shift(node, dim, delta)
                if other not in seen:
                    seen.add(other)
                    result.append(other)
        return result

    def links(self) -> Iterator[Link]:
        """Every directed link of the torus.

        A dimension of extent 1 contributes no links; a dimension of extent
        2 contributes one cable (two directed links) per node pair.
        """
        for node in self.nodes():
            for dim in range(self.ndim):
                extent = self.shape[dim]
                if extent == 1:
                    continue
                if extent == 2 and node[dim] == 1:
                    # The single cable of an extent-2 dimension was already
                    # emitted (both directions) from the coord-0 endpoint.
                    continue
                succ = self.shift(node, dim, 1)
                yield Link(node, succ)
                yield Link(succ, node)

    def link_count(self) -> int:
        """Number of directed links."""
        return sum(1 for _ in self.links())

    def index_kernel(self):
        """The memoized dense index space over this torus's nodes/links.

        Returns the :class:`repro.kernels.paths.TorusKernel` for this
        shape: neighbor tables, link-id enumeration (in :meth:`links`
        order) and step→link-id matrices the vectorized kernels operate
        on instead of coordinate tuples and :class:`Link` objects.
        """
        from ..kernels.paths import torus_kernel

        return torus_kernel(self.shape)

    # -- rings ---------------------------------------------------------------

    def ring(self, dim: int, anchor: Coordinate) -> list[Coordinate]:
        """The full torus ring along ``dim`` passing through ``anchor``.

        Returns the nodes in send order starting at ``anchor``; the ring
        closes from the last node back to ``anchor``.
        """
        self._require(anchor)
        if not 0 <= dim < self.ndim:
            raise ValueError(f"dimension {dim} out of range")
        return [
            self.shift(anchor, dim, step) for step in range(self.shape[dim])
        ]

    def ring_links(self, ring_nodes: list[Coordinate]) -> list[Link]:
        """Directed links consumed by a unidirectional ring over the nodes.

        A two-node ring uses the cable in both directions; a one-node ring
        uses nothing.
        """
        if len(ring_nodes) <= 1:
            return []
        return [
            Link(ring_nodes[i], ring_nodes[(i + 1) % len(ring_nodes)])
            for i in range(len(ring_nodes))
        ]

    # -- paths ---------------------------------------------------------------

    def shortest_path(
        self,
        src: Coordinate,
        dst: Coordinate,
        forbidden_nodes: set[Coordinate] | None = None,
        forbidden_links: set[Link] | None = None,
    ) -> list[Coordinate] | None:
        """BFS shortest path from ``src`` to ``dst``.

        Args:
            forbidden_nodes: intermediate nodes the path may not traverse
                (``src`` and ``dst`` are always allowed).
            forbidden_links: directed links the path may not use.

        Returns:
            The node sequence including endpoints, or ``None`` when no path
            exists under the constraints.
        """
        self._require(src)
        self._require(dst)
        if src == dst:
            return [src]
        blocked_nodes = set(forbidden_nodes or ())
        blocked_links = set(forbidden_links or ())
        frontier = [src]
        parents: dict[Coordinate, Coordinate] = {src: src}
        while frontier:
            nxt: list[Coordinate] = []
            for node in frontier:
                for nb in self.neighbors(node):
                    if nb in parents:
                        continue
                    if Link(node, nb) in blocked_links:
                        continue
                    if nb != dst and nb in blocked_nodes:
                        continue
                    parents[nb] = node
                    if nb == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(nb)
            frontier = nxt
        return None

    def all_paths(
        self,
        src: Coordinate,
        dst: Coordinate,
        max_hops: int,
        forbidden_nodes: set[Coordinate] | None = None,
    ) -> Iterator[list[Coordinate]]:
        """Enumerate simple paths from ``src`` to ``dst`` up to ``max_hops``.

        Used by the failure analysis (Figure 6a) to *exhaustively* show
        that every replacement path congests a neighbouring slice.
        """
        self._require(src)
        self._require(dst)
        blocked = set(forbidden_nodes or ())

        def extend(path: list[Coordinate]) -> Iterator[list[Coordinate]]:
            tail = path[-1]
            if tail == dst:
                yield list(path)
                return
            if len(path) > max_hops:
                return
            for nb in self.neighbors(tail):
                if nb in path:
                    continue
                if nb != dst and nb in blocked:
                    continue
                path.append(nb)
                yield from extend(path)
                path.pop()

        yield from extend([src])

    def path_links(self, path: list[Coordinate]) -> list[Link]:
        """Directed links used by a node path."""
        return [Link(a, b) for a, b in zip(path, path[1:])]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Torus(shape={self.shape})"
