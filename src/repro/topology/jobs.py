"""Multi-rack job provisioning over the OCS fabric (paper Section 4.1).

"A slice optimally utilizes the bandwidth only when it communicates on all
three dimensions. Note that due to the design of a torus, this can only
happen when a slice spans multiple racks." This module provisions jobs the
TPUv4 way: a job large enough to take whole racks gets consecutive racks
spliced into a longer torus through the per-dimension OCS plane (paying
the OCS's millisecond reprogramming), and its slice then spans every
dimension fully — 100 % electrical utilization. Jobs smaller than a rack
are placed inside one rack and strand bandwidth exactly as Figure 5
shows, which is the regime where LIGHTPATH's microsecond steering is the
only fix.
"""

from __future__ import annotations

from dataclasses import dataclass

from .slices import Slice
from .torus import Torus
from .tpu import TpuCluster

__all__ = ["ProvisionedJob", "provision_job"]


@dataclass(frozen=True)
class ProvisionedJob:
    """A job placed on the cluster.

    Attributes:
        name: job label.
        racks: rack indices the job occupies.
        torus: the (possibly multi-rack) torus the job sees.
        slc: the job's slice on that torus.
        setup_latency_s: fabric reprogramming paid before the job starts
            (OCS splicing for multi-rack jobs; zero inside one rack).
    """

    name: str
    racks: tuple[int, ...]
    torus: Torus
    slc: Slice
    setup_latency_s: float

    @property
    def spans_racks(self) -> bool:
        """Whether the job's torus was spliced from several racks."""
        return len(self.racks) > 1

    @property
    def electrical_utilization(self) -> float:
        """Usable bandwidth fraction over static links (the paper rule)."""
        return self.slc.electrical_utilization()


def provision_job(
    cluster: TpuCluster,
    name: str,
    chips: int,
    first_rack: int = 0,
    splice_dim: int = 2,
) -> ProvisionedJob:
    """Provision a ``chips``-chip job starting at ``first_rack``.

    Jobs of one or more whole racks get consecutive racks OCS-spliced
    along ``splice_dim`` into a combined torus their slice spans fully.
    Smaller jobs are placed inside ``first_rack`` as the largest regular
    shape (full-span dimensions first), stranding whatever the shape
    cannot span.

    Raises:
        ValueError: when the request does not tile into the rack geometry
            or exceeds the cluster.
    """
    rack_shape = cluster.rack_shape
    rack_chips = 1
    for s in rack_shape:
        rack_chips *= s
    if chips < 1:
        raise ValueError("a job needs at least one chip")
    if chips >= rack_chips:
        if chips % rack_chips != 0:
            raise ValueError(
                f"multi-rack jobs must be whole racks ({rack_chips} chips); "
                f"got {chips}"
            )
        rack_count = chips // rack_chips
        if first_rack + rack_count > len(cluster.racks):
            raise ValueError("not enough racks in the cluster")
        racks = tuple(range(first_rack, first_rack + rack_count))
        latency = 0.0
        for a, b in zip(racks, racks[1:]):
            latency = max(latency, cluster.join_racks(splice_dim, a, b))
        if rack_count > 1:
            # Close the combined torus back to the first rack.
            latency = max(
                latency, cluster.join_racks(splice_dim, racks[-1], racks[0])
            )
        combined_shape = list(rack_shape)
        combined_shape[splice_dim] *= rack_count
        torus = Torus(tuple(combined_shape))
        slc = Slice(
            name=name,
            rack=torus,
            offset=tuple(0 for _ in combined_shape),
            shape=tuple(combined_shape),
        )
        return ProvisionedJob(
            name=name,
            racks=racks,
            torus=torus,
            slc=slc,
            setup_latency_s=latency,
        )
    # Sub-rack job: the largest regular box, full-span dimensions first.
    shape = _sub_rack_shape(chips, rack_shape)
    torus = cluster.rack(first_rack).torus
    slc = Slice(
        name=name,
        rack=torus,
        offset=tuple(0 for _ in rack_shape),
        shape=shape,
    )
    return ProvisionedJob(
        name=name,
        racks=(first_rack,),
        torus=torus,
        slc=slc,
        setup_latency_s=0.0,
    )


def _sub_rack_shape(
    chips: int, rack_shape: tuple[int, ...]
) -> tuple[int, ...]:
    """The best regular shape for ``chips`` inside one rack.

    Prefers shapes whose non-trivial dimensions span the rack (usable
    rings), then compactness.

    Raises:
        ValueError: when no axis-aligned box has exactly ``chips`` chips.
    """
    import itertools

    candidates = []
    for shape in itertools.product(*(range(1, ext + 1) for ext in rack_shape)):
        volume = 1
        for s in shape:
            volume *= s
        if volume == chips:
            usable = sum(
                1
                for ext, rack_ext in zip(shape, rack_shape)
                if ext > 1 and ext == rack_ext
            )
            candidates.append((-usable, max(shape) - min(shape), shape))
    if not candidates:
        raise ValueError(
            f"{chips} chips do not tile into a regular shape within "
            f"{rack_shape}"
        )
    candidates.sort()
    return candidates[0][2]
