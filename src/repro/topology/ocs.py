"""Optical circuit switch (OCS) model for inter-rack connectivity.

In Google's TPUv4 deployment every face of a rack cube connects, through
optical circuit switches, to the opposite face of (potentially) another
rack, composing 4x4x4 cubes into larger tori (paper Section 4, Figure 5a).
An OCS is a slow crossbar: any input port can be mapped to any output port,
one-to-one; reprogramming takes milliseconds-to-seconds in deployed OCSes —
orders of magnitude slower than LIGHTPATH's 3.7 us MZI switching, which is
the comparison the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["OpticalCircuitSwitch", "PortBusy"]


class PortBusy(RuntimeError):
    """Raised when mapping a port that already carries a circuit."""


@dataclass
class OpticalCircuitSwitch:
    """A non-blocking one-to-one optical crossbar.

    Ports are identified by arbitrary hashable labels (the TPU cluster uses
    ``(rack, face, position)`` tuples). The switch keeps a bijective
    mapping between connected ports.

    Attributes:
        name: label of the switch.
        reconfigure_latency_s: time to (re)program one mapping. Deployed
            datacenter OCSes take ~10s of milliseconds; the default models
            that, in contrast with LIGHTPATH's microseconds.
    """

    name: str
    reconfigure_latency_s: float = 20e-3
    _mapping: dict[Hashable, Hashable] = field(default_factory=dict, repr=False)

    def connect(self, a: Hashable, b: Hashable) -> None:
        """Create a bidirectional circuit between ports ``a`` and ``b``.

        Raises:
            PortBusy: if either port is already mapped.
            ValueError: if ``a`` and ``b`` are the same port.
        """
        if a == b:
            raise ValueError("cannot map a port to itself")
        for port in (a, b):
            if port in self._mapping:
                raise PortBusy(f"port {port!r} already carries a circuit")
        self._mapping[a] = b
        self._mapping[b] = a

    def disconnect(self, port: Hashable) -> None:
        """Tear down the circuit through ``port`` (no-op if unmapped)."""
        peer = self._mapping.pop(port, None)
        if peer is not None:
            self._mapping.pop(peer, None)

    def peer(self, port: Hashable) -> Hashable | None:
        """The port currently circuit-connected to ``port``, if any."""
        return self._mapping.get(port)

    def is_connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether a circuit currently joins ``a`` and ``b``."""
        return self._mapping.get(a) == b

    @property
    def circuit_count(self) -> int:
        """Number of active circuits."""
        return len(self._mapping) // 2

    def reconfigure(self, a: Hashable, b: Hashable) -> float:
        """Repoint ``a`` and ``b`` to each other, returning the latency.

        Existing circuits through either port are torn down first. The
        returned value is the programming latency the caller should charge
        (seconds).
        """
        self.disconnect(a)
        self.disconnect(b)
        self.connect(a, b)
        return self.reconfigure_latency_s
