"""Slice allocation over a torus rack (paper Section 4.1, Figure 5b).

A *slice* is the subset of TPU chips leased to one tenant: a regular
sub-torus of the rack, e.g. Slice-1 = 4x2x1. Tenants run the
multi-dimensional bucket algorithm over the slice's torus dimensions. The
paper's central observation is that a slice smaller than the rack cannot
execute congestion-free rings in every dimension over *static electrical*
links, stranding up to 66 % of each chip's bandwidth; this module encodes
the slice geometry and the congestion-freedom rule that produces exactly
those numbers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache

from .torus import Coordinate, Link, Torus

__all__ = [
    "Slice",
    "SliceAllocator",
    "AllocationError",
    "SliceOverlapError",
    "ShapeTooLargeError",
    "NoContiguousPlacementError",
    "WavelengthBudgetError",
]


class AllocationError(RuntimeError):
    """Raised when a slice cannot be placed on the requested rack region.

    The concrete subclasses name *which* constraint failed; callers that
    only care about "it did not fit" keep catching this base class.
    """


class SliceOverlapError(AllocationError):
    """A requested chip is already owned by another slice."""


class ShapeTooLargeError(AllocationError, ValueError):
    """The requested shape exceeds the rack torus in some dimension.

    Also a :class:`ValueError` — the shape is invalid for the rack no
    matter what is currently allocated, and pre-existing callers caught
    the geometry violation as ``ValueError``.
    """


class NoContiguousPlacementError(AllocationError):
    """The shape fits the torus, but no contiguous offset is free."""


class WavelengthBudgetError(AllocationError):
    """A steered placement would exceed the rack's circuit budget.

    Raised by the tenancy layer (:mod:`repro.tenancy.cluster`) when the
    wavelength circuits needed to steer a non-contiguous slice exceed
    the per-rack inventory; declared here so every placement failure
    shares the :class:`AllocationError` root.
    """


@dataclass(frozen=True)
class Slice:
    """A tenant slice: a regular sub-torus of a rack.

    Attributes:
        name: human-readable label ("Slice-1").
        rack: the rack torus the slice lives in.
        offset: coordinate of the slice's minimum corner.
        shape: extent of the slice in each rack dimension.
    """

    name: str
    rack: Torus
    offset: Coordinate
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.offset) != self.rack.ndim or len(self.shape) != self.rack.ndim:
            raise ValueError("offset/shape dimensionality must match the rack")
        if any(s < 1 for s in self.shape):
            raise ValueError("slice extents must be >= 1")
        for off, ext, rack_ext in zip(self.offset, self.shape, self.rack.shape):
            if not 0 <= off < rack_ext:
                raise ValueError(f"offset {self.offset} outside rack")
            if ext > rack_ext:
                raise ShapeTooLargeError(
                    f"slice extent {ext} exceeds rack extent {rack_ext}"
                )

    # -- membership ----------------------------------------------------------

    def chips(self) -> list[Coordinate]:
        """All chip coordinates of the slice (with wrap-around placement)."""
        axes = [
            [(off + i) % rack_ext for i in range(ext)]
            for off, ext, rack_ext in zip(self.offset, self.shape, self.rack.shape)
        ]
        return [tuple(c) for c in itertools.product(*axes)]

    def contains(self, chip: Coordinate) -> bool:
        """Whether ``chip`` belongs to the slice."""
        for c, off, ext, rack_ext in zip(
            chip, self.offset, self.shape, self.rack.shape
        ):
            if (c - off) % rack_ext >= ext:
                return False
        return True

    @property
    def chip_count(self) -> int:
        """Number of chips in the slice."""
        count = 1
        for s in self.shape:
            count *= s
        return count

    # -- ring geometry ---------------------------------------------------------

    def ring_nodes(self, dim: int, anchor: Coordinate) -> list[Coordinate]:
        """Nodes of the slice ring along ``dim`` through ``anchor``.

        The ring visits the slice's chips in coordinate order along the
        dimension. Whether the *physical* links closing this ring are
        internal to the slice is a separate question answered by
        :meth:`dimension_is_congestion_free`.
        """
        if not self.contains(anchor):
            raise ValueError(f"{anchor} is not in slice {self.name}")
        rack_ext = self.rack.shape[dim]
        off = self.offset[dim]
        nodes = []
        for i in range(self.shape[dim]):
            coords = list(anchor)
            coords[dim] = (off + i) % rack_ext
            nodes.append(tuple(coords))
        return nodes

    def rings(self, dim: int) -> list[list[Coordinate]]:
        """All slice rings along ``dim`` (one per cross-section chip)."""
        if not 0 <= dim < self.rack.ndim:
            raise ValueError(f"dimension {dim} out of range")
        cross_axes = [
            [(off + i) % rack_ext for i in range(ext)] if d != dim else [self.offset[d]]
            for d, (off, ext, rack_ext) in enumerate(
                zip(self.offset, self.shape, self.rack.shape)
            )
        ]
        anchors = [tuple(c) for c in itertools.product(*cross_axes)]
        return [self.ring_nodes(dim, anchor) for anchor in anchors]

    def ring_links(self, dim: int) -> list[Link]:
        """Directed physical links used by all slice rings along ``dim``.

        A ring that does not span the full rack dimension is closed over
        the *torus wrap path*, i.e. through chips outside the slice —
        those foreign links are included, which is how the congestion in
        Figure 5b arises.

        A slice ring with >= 2 chips always traverses the *entire* torus
        circle of its dimension — the in-slice hops cover the slice
        extent and the closing wrap path covers the rest — so the links
        are generated arithmetically (and memoized per geometry) instead
        of walking ``physical_hop`` chip by chip. This is the hot path of
        the rack congestion analysis.
        """
        if not 0 <= dim < self.rack.ndim:
            raise ValueError(f"dimension {dim} out of range")
        return list(
            _ring_links_for_geometry(
                self.rack.shape, self.offset, self.shape, dim
            )
        )

    def ring_link_indices(self, dim: int):
        """Dense link-id array of :meth:`ring_links`, for the kernels.

        Index ids live in the rack torus's link space (see
        :meth:`repro.topology.torus.Torus.index_kernel`); the array is
        memoized per geometry and read-only. The repair kernel's
        busy-mask construction consumes these directly, never touching a
        :class:`Link` object on its hot path.
        """
        if not 0 <= dim < self.rack.ndim:
            raise ValueError(f"dimension {dim} out of range")
        from ..kernels.paths import ring_link_ids

        return ring_link_ids(self.rack.shape, self.offset, self.shape, dim)

    def physical_hop(self, a: Coordinate, b: Coordinate, dim: int) -> list[Link]:
        """Physical links realizing the logical ring hop ``a -> b``.

        Adjacent chips map to one link; the ring-closing hop of a slice
        that does not span the dimension walks the wrap path node by node.
        """
        rack_ext = self.rack.shape[dim]
        delta = (b[dim] - a[dim]) % rack_ext
        if delta == 0:
            return []
        hops: list[Link] = []
        current = a
        for _ in range(delta):
            nxt = self.rack.shift(current, dim, 1)
            hops.append(Link(current, nxt))
            current = nxt
        return hops

    # -- the paper's congestion-freedom rule -----------------------------------

    def dimension_is_congestion_free(self, dim: int) -> bool:
        """Whether the slice can ring over ``dim`` using only its own links.

        True iff the slice spans the rack's full extent in that dimension
        (so the wrap link is slice-internal). A dimension of extent 1 has
        no ring and returns False: the chip bandwidth statically wired to
        that dimension is stranded — the paper's under-utilization.
        """
        if not 0 <= dim < self.rack.ndim:
            raise ValueError(f"dimension {dim} out of range")
        if self.shape[dim] == 1:
            return False
        return self.shape[dim] == self.rack.shape[dim]

    def usable_dimensions(self) -> list[int]:
        """Dimensions over which congestion-free rings exist (electrical)."""
        return [
            d for d in range(self.rack.ndim) if self.dimension_is_congestion_free(d)
        ]

    def active_dimensions(self) -> list[int]:
        """Dimensions with more than one chip (rings the tenant *wants*)."""
        return [d for d, ext in enumerate(self.shape) if ext > 1]

    def electrical_utilization(self) -> float:
        """Fraction of per-chip bandwidth usable with static electrical links.

        Each chip's bandwidth is statically split across the rack's
        dimensions; only congestion-free dimensions contribute. Slice-1
        (4x2x1 in a 4x4x4 rack) yields 1/3 — the 66 % loss of Figure 5c.
        """
        return len(self.usable_dimensions()) / self.rack.ndim

    def optical_utilization(self) -> float:
        """Fraction of per-chip bandwidth usable with LIGHTPATH steering.

        Optics redirects the stranded dimensions' bandwidth into the
        active ones (paper Section 4.1), recovering full utilization for
        any slice that has at least one usable ring.
        """
        return 1.0 if self.usable_dimensions() else 0.0


@lru_cache(maxsize=4096)
def _ring_links_for_geometry(
    rack_shape: tuple[int, ...],
    offset: Coordinate,
    shape: tuple[int, ...],
    dim: int,
) -> tuple[Link, ...]:
    """Memoized link set of all slice rings along ``dim``.

    Pure function of the slice geometry, so it persists across the fresh
    ``Slice``/``SliceAllocator`` instances every session (and sweep
    worker) rebuilds. Order matches the original hop-by-hop walk: the
    circle is traversed starting from the slice's offset.
    """
    ext = shape[dim]
    if ext <= 1:
        return ()
    rack_ext = rack_shape[dim]
    off = offset[dim]
    positions = [(off + i) % rack_ext for i in range(rack_ext)]
    positions.append(off)  # close the circle
    cross_axes = [
        [(o + i) % r for i in range(e)] if d != dim else [offset[d]]
        for d, (o, e, r) in enumerate(zip(offset, shape, rack_shape))
    ]
    links: list[Link] = []
    for anchor in itertools.product(*cross_axes):
        head, tail = anchor[:dim], anchor[dim + 1:]
        nodes = [head + (p,) + tail for p in positions]
        links.extend(Link(a, b) for a, b in zip(nodes, nodes[1:]))
    return tuple(links)


@dataclass
class SliceAllocator:
    """Places non-overlapping slices on a rack.

    Attributes:
        rack: the rack torus being partitioned.
        slices: currently allocated slices, in allocation order.
    """

    rack: Torus
    slices: list[Slice] = field(default_factory=list)

    def _occupied(self) -> set[Coordinate]:
        taken: set[Coordinate] = set()
        for s in self.slices:
            taken.update(s.chips())
        return taken

    def allocate(
        self, name: str, shape: tuple[int, ...], offset: Coordinate
    ) -> Slice:
        """Place a slice of ``shape`` at ``offset``.

        Raises:
            ShapeTooLargeError: if the shape exceeds the rack torus.
            SliceOverlapError: if any requested chip is already allocated.
        """
        candidate = Slice(name=name, rack=self.rack, offset=offset, shape=shape)
        taken = self._occupied()
        overlap = [chip for chip in candidate.chips() if chip in taken]
        if overlap:
            raise SliceOverlapError(
                f"slice {name} overlaps {len(overlap)} allocated chips, "
                f"e.g. {overlap[0]}"
            )
        self.slices.append(candidate)
        return candidate

    def allocate_first_fit(self, name: str, shape: tuple[int, ...]) -> Slice:
        """Place a slice at the first lexicographic offset that fits.

        Raises:
            ShapeTooLargeError: if the shape exceeds the rack torus (no
                offset could ever host it).
            NoContiguousPlacementError: if the shape fits the torus but
                every contiguous placement collides with a live slice.
        """
        for ext, rack_ext in zip(shape, self.rack.shape):
            if ext > rack_ext:
                raise ShapeTooLargeError(
                    f"slice {name} shape {shape} exceeds the rack "
                    f"torus {self.rack.shape}"
                )
        taken = self._occupied()
        for offset in self.rack.nodes():
            candidate = Slice(name=name, rack=self.rack, offset=offset, shape=shape)
            if all(chip not in taken for chip in candidate.chips()):
                self.slices.append(candidate)
                return candidate
        raise NoContiguousPlacementError(
            f"no contiguous placement for slice {name} of shape {shape}: "
            f"{len(taken)}/{self.rack.node_count} chips allocated"
        )

    def release(self, name: str) -> None:
        """Remove the slice called ``name``.

        Raises:
            KeyError: if no such slice is allocated.
        """
        for i, s in enumerate(self.slices):
            if s.name == name:
                del self.slices[i]
                return
        raise KeyError(f"no slice named {name!r}")

    def slice_of(self, chip: Coordinate) -> Slice | None:
        """The slice owning ``chip``, or ``None`` if the chip is free."""
        for s in self.slices:
            if s.contains(chip):
                return s
        return None

    def free_chips(self) -> list[Coordinate]:
        """Chips not owned by any slice."""
        taken = self._occupied()
        return [chip for chip in self.rack.nodes() if chip not in taken]
