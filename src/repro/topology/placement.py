"""Slice placement policies and their stranded-bandwidth cost.

Figure 5b's under-utilization is partly a *placement* problem: TPUv4
"slices can only be allocated in regular shapes" (Section 4.1), and where
the allocator puts them decides how many dimensions each tenant can ring
congestion-free. This module implements placement policies over a rack —
a locality-first policy preferring compact (near-cubic) shapes, as a
hop-count-minimizing scheduler would, versus a utilization-aware policy
that orients each requested shape to span full rack dimensions — and
scores a whole workload by the electrical bandwidth it strands. The
comparison quantifies how much of the paper's 66 % loss smart placement
can claw back without optics, and how much only steering can recover.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .slices import AllocationError, Slice, SliceAllocator
from .torus import Torus

__all__ = [
    "PlacementRequest",
    "PlacementOutcome",
    "compactness_first_placement",
    "utilization_aware_placement",
    "score_placement",
]


@dataclass(frozen=True)
class PlacementRequest:
    """One tenant's slice request.

    Attributes:
        name: tenant label.
        chips: number of chips requested; the policy chooses the shape.
    """

    name: str
    chips: int

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ValueError("a request needs at least one chip")


@dataclass(frozen=True)
class PlacementOutcome:
    """Result of placing a workload on a rack.

    Attributes:
        allocator: the allocator with every placed slice.
        placed: names successfully placed, in order.
        rejected: names that could not be placed.
    """

    allocator: SliceAllocator
    placed: tuple[str, ...]
    rejected: tuple[str, ...]


def _candidate_shapes(chips: int, rack_shape: tuple[int, ...]):
    """All axis-aligned box shapes with exactly ``chips`` chips."""
    axes = [range(1, ext + 1) for ext in rack_shape]
    for shape in itertools.product(*axes):
        volume = 1
        for s in shape:
            volume *= s
        if volume == chips:
            yield shape


def _shape_utilization(shape: tuple[int, ...], rack_shape: tuple[int, ...]) -> float:
    """Electrical utilization a slice of ``shape`` would get (paper rule)."""
    usable = sum(
        1
        for ext, rack_ext in zip(shape, rack_shape)
        if ext > 1 and ext == rack_ext
    )
    return usable / len(rack_shape)


def compactness_first_placement(
    rack: Torus, requests: list[PlacementRequest]
) -> PlacementOutcome:
    """Locality policy: prefer the most compact (near-cubic) shape.

    Minimizing a slice's diameter is the classic placement heuristic for
    hop count — but cubic shapes like (2, 2, 2) span *no* rack dimension,
    so under the paper's congestion-freedom rule they strand every byte
    of static bandwidth. This is the bandwidth-blind baseline.
    """
    allocator = SliceAllocator(rack)
    placed, rejected = [], []
    for request in requests:
        shapes = sorted(
            _candidate_shapes(request.chips, rack.shape),
            key=lambda shape: (max(shape) - min(shape), max(shape), shape),
        )
        success = False
        for shape in shapes:
            try:
                allocator.allocate_first_fit(request.name, shape)
                success = True
                break
            except AllocationError:
                continue
        (placed if success else rejected).append(request.name)
    return PlacementOutcome(
        allocator=allocator, placed=tuple(placed), rejected=tuple(rejected)
    )


def utilization_aware_placement(
    rack: Torus, requests: list[PlacementRequest]
) -> PlacementOutcome:
    """Policy that prefers shapes spanning full rack dimensions.

    Candidate shapes are ranked by the electrical utilization the paper's
    congestion-freedom rule grants them (full-span dimensions first),
    then by compactness. Larger requests are placed first so full-span
    shapes still fit.
    """
    allocator = SliceAllocator(rack)
    placed, rejected = [], []
    ordered = sorted(requests, key=lambda r: -r.chips)
    for request in ordered:
        shapes = sorted(
            _candidate_shapes(request.chips, rack.shape),
            key=lambda shape: (
                -_shape_utilization(shape, rack.shape),
                max(shape) - min(shape),
                shape,
            ),
        )
        success = False
        for shape in shapes:
            try:
                allocator.allocate_first_fit(request.name, shape)
                success = True
                break
            except AllocationError:
                continue
        (placed if success else rejected).append(request.name)
    return PlacementOutcome(
        allocator=allocator, placed=tuple(placed), rejected=tuple(rejected)
    )


@dataclass(frozen=True)
class PlacementScore:
    """Aggregate bandwidth outcome of a placement.

    Attributes:
        total_chips: chips placed.
        weighted_utilization: chip-weighted mean electrical utilization.
        stranded_fraction: chip-weighted bandwidth fraction stranded.
    """

    total_chips: int
    weighted_utilization: float

    @property
    def stranded_fraction(self) -> float:
        """Chip-weighted fraction of bandwidth static links strand."""
        return 1.0 - self.weighted_utilization


def score_placement(outcome: PlacementOutcome) -> PlacementScore:
    """Chip-weighted electrical utilization of a placement outcome."""
    total = 0
    weighted = 0.0
    for slc in outcome.allocator.slices:
        total += slc.chip_count
        weighted += slc.chip_count * slc.electrical_utilization()
    return PlacementScore(
        total_chips=total,
        weighted_utilization=(weighted / total) if total else 1.0,
    )
