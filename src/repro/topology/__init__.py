"""Cluster substrate: tori, TPUv4 racks/clusters, slices and baselines.

Implements the deployment the paper analyses in Section 4 — Google's TPUv4
supercomputer (64 racks of 4x4x4 electrically-wired torus cubes joined by
optical circuit switches) — plus the two electrical baselines the paper
argues against: static direct-connect links and the NVSwitch-style big
switch.
"""

from .electrical import CongestionReport, ElectricalInterconnect, TransferClaim
from .jobs import ProvisionedJob, provision_job
from .ocs import OpticalCircuitSwitch, PortBusy
from .placement import (
    PlacementOutcome,
    PlacementRequest,
    PlacementScore,
    compactness_first_placement,
    score_placement,
    utilization_aware_placement,
)
from .slices import (
    AllocationError,
    NoContiguousPlacementError,
    ShapeTooLargeError,
    Slice,
    SliceAllocator,
    SliceOverlapError,
    WavelengthBudgetError,
)
from .switched import SwitchedServer, SwitchFlow
from .torus import Coordinate, Link, Torus
from .tpu import GlobalChipId, TpuCluster, TpuRack

__all__ = [
    "CongestionReport",
    "ProvisionedJob",
    "provision_job",
    "ElectricalInterconnect",
    "TransferClaim",
    "OpticalCircuitSwitch",
    "PlacementOutcome",
    "PlacementRequest",
    "PlacementScore",
    "compactness_first_placement",
    "score_placement",
    "utilization_aware_placement",
    "PortBusy",
    "AllocationError",
    "SliceOverlapError",
    "ShapeTooLargeError",
    "NoContiguousPlacementError",
    "WavelengthBudgetError",
    "Slice",
    "SliceAllocator",
    "SwitchedServer",
    "SwitchFlow",
    "Coordinate",
    "Link",
    "Torus",
    "GlobalChipId",
    "TpuCluster",
    "TpuRack",
]
