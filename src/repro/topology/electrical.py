"""Electrical direct-connect interconnect semantics.

This is the baseline the paper argues against (Section 1, Section 4): each
chip's egress bandwidth is *statically* divided among the torus dimensions'
links, traffic between non-adjacent chips must be forwarded hop-by-hop
(consuming the intermediate chips' bandwidth — there is no switching on
chip), and simultaneous transfers sharing a link contend.

The class tracks per-link occupancy so the congestion definition of
Section 4.1 ("multiple transfers occur simultaneously on the same link")
can be evaluated for any set of ring schedules and repair paths.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..phy.constants import CHIP_EGRESS_BYTES
from .torus import Coordinate, Link, Torus

__all__ = ["ElectricalInterconnect", "TransferClaim", "CongestionReport"]


@dataclass(frozen=True)
class TransferClaim:
    """One logical transfer occupying a set of directed links.

    Attributes:
        owner: label of the job/slice/repair the transfer belongs to.
        links: directed links the transfer occupies simultaneously.
    """

    owner: str
    links: tuple[Link, ...]


@dataclass(frozen=True)
class CongestionReport:
    """Summary of link sharing among the registered transfers.

    Attributes:
        congested_links: links carrying more than one transfer, with the
            number of transfers on each.
        max_multiplicity: worst-case transfers on one link (1 = none).
    """

    congested_links: dict[Link, int]
    max_multiplicity: int

    @property
    def is_congestion_free(self) -> bool:
        """True when no link carries more than one transfer."""
        return not self.congested_links

    @property
    def congested_link_count(self) -> int:
        """Number of links carrying more than one transfer."""
        return len(self.congested_links)


@dataclass
class ElectricalInterconnect:
    """Static electrical torus interconnect with per-link bandwidth.

    Attributes:
        torus: the underlying torus topology.
        chip_egress_bytes: total egress bandwidth of one chip, bytes/s.
    """

    torus: Torus
    chip_egress_bytes: float = CHIP_EGRESS_BYTES
    _claims: list[TransferClaim] = field(default_factory=list, repr=False)

    # -- static bandwidth partition -----------------------------------------------

    @property
    def wired_dimensions(self) -> int:
        """Dimensions with physical links (extent > 1)."""
        return sum(1 for s in self.torus.shape if s > 1)

    def link_bandwidth_bytes(self) -> float:
        """Bandwidth of one directed link, bytes per second.

        The chip's egress is split evenly across wired dimensions; within a
        dimension, the +/- directions are separate links each carrying the
        dimension's share (full-duplex SerDes in both directions).
        """
        dims = self.wired_dimensions
        if dims == 0:
            raise ValueError("torus has no links")
        return self.chip_egress_bytes / dims

    def per_dimension_bandwidth_bytes(self) -> float:
        """Egress bandwidth a chip can put into one dimension, bytes/s."""
        return self.link_bandwidth_bytes()

    # -- transfer registration -------------------------------------------------------

    def claim(self, owner: str, links: list[Link]) -> TransferClaim:
        """Register a transfer occupying ``links``.

        Raises:
            ValueError: if any link is not a link of the torus.
        """
        for link in links:
            link.dimension(self.torus.shape)  # validates adjacency
            if not (self.torus.contains(link.src) and self.torus.contains(link.dst)):
                raise ValueError(f"{link} is outside the torus")
        transfer = TransferClaim(owner=owner, links=tuple(links))
        self._claims.append(transfer)
        return transfer

    def release(self, owner: str) -> int:
        """Drop every claim registered under ``owner``; returns count."""
        before = len(self._claims)
        self._claims = [c for c in self._claims if c.owner != owner]
        return before - len(self._claims)

    def clear(self) -> None:
        """Drop all claims."""
        self._claims.clear()

    @property
    def claims(self) -> list[TransferClaim]:
        """Registered transfers (copy)."""
        return list(self._claims)

    # -- congestion ---------------------------------------------------------------------

    def congestion(self, extra: list[TransferClaim] | None = None) -> CongestionReport:
        """Evaluate link sharing among registered (+ hypothetical) transfers.

        Args:
            extra: transfers to evaluate *in addition to* the registered
                ones without committing them — used to test candidate
                repair paths (Figure 6).
        """
        counts: Counter[Link] = Counter()
        for claim in self._claims + list(extra or ()):
            for link in claim.links:
                counts[link] += 1
        congested = {link: n for link, n in counts.items() if n > 1}
        max_mult = max(counts.values(), default=1)
        return CongestionReport(congested_links=congested, max_multiplicity=max_mult)

    def link_share_bytes(self, link: Link) -> float:
        """Fair-share bandwidth a transfer gets on ``link`` right now."""
        users = sum(
            1 for claim in self._claims for lnk in claim.links if lnk == link
        )
        return self.link_bandwidth_bytes() / max(users, 1)

    # -- forwarding --------------------------------------------------------------------

    def forwarding_chips(self, path: list[Coordinate]) -> list[Coordinate]:
        """Intermediate chips that must forward traffic on ``path``.

        The paper (Section 4.2) notes electrical chips have no on-chip
        switching: traffic not destined for a chip is forwarded, consuming
        its bandwidth. These are the chips paying that cost.
        """
        return list(path[1:-1])

    def forwarding_cost_bytes(self, path: list[Coordinate], volume_bytes: float) -> float:
        """Total chip bandwidth-seconds consumed by forwarding on ``path``."""
        if volume_bytes < 0:
            raise ValueError("volume cannot be negative")
        return volume_bytes * len(self.forwarding_chips(path))
