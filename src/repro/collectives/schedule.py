"""Concrete collective schedules: phases of concurrent transfers.

While :mod:`repro.collectives.cost_model` reasons symbolically, this module
materializes collectives as *schedules* — ordered phases, each a set of
transfers that run concurrently, each transfer pinned to the physical links
it occupies. Schedules are what the congestion analysis inspects (Figures
5b, 6) and what the discrete-event simulator executes to cross-check the
closed-form costs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..topology.torus import Coordinate, Link

__all__ = ["Transfer", "Phase", "CollectiveSchedule"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer within a phase.

    Attributes:
        src: sending chip.
        dst: receiving chip.
        n_bytes: payload size, bytes.
        path: node sequence the data physically traverses (includes both
            endpoints). Multi-hop paths model electrical forwarding through
            intermediate chips; optical circuits always have direct
            (2-node) logical paths regardless of waveguide geometry.
        owner: label of the job/slice issuing the transfer.
    """

    src: Coordinate
    dst: Coordinate
    n_bytes: float
    path: tuple[Coordinate, ...]
    owner: str = ""

    def __post_init__(self) -> None:
        if self.n_bytes < 0:
            raise ValueError("transfer size cannot be negative")
        if len(self.path) < 2:
            raise ValueError("a transfer path needs at least two nodes")
        if self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError("path endpoints must match src/dst")

    @property
    def links(self) -> tuple[Link, ...]:
        """Directed links the transfer occupies."""
        return tuple(Link(a, b) for a, b in zip(self.path, self.path[1:]))


@dataclass
class Phase:
    """A set of transfers that run concurrently.

    Attributes:
        transfers: the concurrent transfers.
        reconfigurations: optical reconfigurations charged before the phase
            starts (each costs ``r`` seconds; they program in parallel so
            one counts unless the caller says otherwise).
        label: human-readable phase name ("ring X step 2").
    """

    transfers: list[Transfer]
    reconfigurations: int = 0
    label: str = ""

    def link_load(self) -> Counter[Link]:
        """How many transfers use each directed link in this phase."""
        load: Counter[Link] = Counter()
        for transfer in self.transfers:
            for link in transfer.links:
                load[link] += 1
        return load

    def congested_links(self) -> dict[Link, int]:
        """Links carrying more than one transfer (the paper's congestion)."""
        return {link: n for link, n in self.link_load().items() if n > 1}

    @property
    def is_congestion_free(self) -> bool:
        """True when no link is shared within the phase."""
        return not self.congested_links()

    def duration_s(
        self,
        link_bandwidth_bytes: Callable[[Link], float],
        alpha_s: float,
        reconfig_s: float,
    ) -> float:
        """Wall-clock duration of the phase.

        Transfers sharing a link split its bandwidth evenly; a transfer
        finishes when its slowest link finishes; the phase ends when the
        slowest transfer does (bulk-synchronous step, as in the bucket
        algorithm). Alpha is charged once per phase, reconfigurations up
        front.
        """
        load = self.link_load()
        worst = 0.0
        for transfer in self.transfers:
            if transfer.n_bytes == 0:
                continue
            slowest = 0.0
            for link in transfer.links:
                bandwidth = link_bandwidth_bytes(link)
                if bandwidth <= 0:
                    raise ValueError(f"link {link} has no bandwidth")
                share = bandwidth / load[link]
                slowest = max(slowest, transfer.n_bytes / share)
            worst = max(worst, slowest)
        alpha = alpha_s if self.transfers else 0.0
        return self.reconfigurations * reconfig_s + alpha + worst


@dataclass
class CollectiveSchedule:
    """An ordered sequence of phases implementing a collective.

    Attributes:
        name: collective label ("reduce-scatter bucket XY").
        phases: phases in execution order.
    """

    name: str
    phases: list[Phase] = field(default_factory=list)

    def add_phase(self, phase: Phase) -> None:
        """Append ``phase`` to the schedule."""
        self.phases.append(phase)

    @property
    def transfer_count(self) -> int:
        """Total transfers across all phases."""
        return sum(len(p.transfers) for p in self.phases)

    @property
    def total_bytes(self) -> float:
        """Total payload moved across all phases."""
        return sum(t.n_bytes for p in self.phases for t in p.transfers)

    @property
    def reconfiguration_count(self) -> int:
        """Total reconfiguration charges in the schedule."""
        return sum(p.reconfigurations for p in self.phases)

    def congested_phases(self) -> list[int]:
        """Indices of phases containing intra-phase congestion."""
        return [i for i, p in enumerate(self.phases) if not p.is_congestion_free]

    @property
    def is_congestion_free(self) -> bool:
        """True when every phase is congestion-free."""
        return not self.congested_phases()

    def duration_s(
        self,
        link_bandwidth_bytes: Callable[[Link], float],
        alpha_s: float,
        reconfig_s: float,
    ) -> float:
        """Total wall-clock duration (phases are bulk-synchronous)."""
        return sum(
            p.duration_s(link_bandwidth_bytes, alpha_s, reconfig_s)
            for p in self.phases
        )

    def all_links(self) -> set[Link]:
        """Every link touched by the schedule."""
        links: set[Link] = set()
        for phase in self.phases:
            for transfer in phase.transfers:
                links.update(transfer.links)
        return links
