"""ALLTOALL schedules: the paper's hard case (Section 5).

"While simple collective operations, such as those using ring ALLREDUCE
where each accelerator communicates with only two others, are relatively
straightforward, handling all-to-all traffic is much more complex."

ALLTOALL makes every chip send a distinct shard to every other chip —
the traffic of MoE token dispatch and of sharded embedding lookups. This
module builds three executable strategies and their symbolic costs:

* **Electrical direct**: each pair exchanges over the static torus,
  forwarding along dimension-ordered routes; shared links congest.
* **Optical circuit rounds**: the fabric walks ``p - 1`` permutation
  rounds (round ``k`` connects ``i -> (i + k) mod p``); each round is a
  perfect matching realized as dedicated circuits, so it is
  congestion-free but charges one reconfiguration ``r`` per round.
* **Ring decomposition**: all-to-all lowered onto the ring (each shard
  forwarded hop-by-hop), the baseline a ring-only fabric would use.
"""

from __future__ import annotations

from ..topology.slices import Slice
from ..topology.torus import Coordinate
from .cost_model import CollectiveCost
from .ring import direct_path, snake_order
from .schedule import CollectiveSchedule, Phase, Transfer

__all__ = [
    "alltoall_optical_cost",
    "alltoall_ring_cost",
    "alltoall_optical_schedule",
    "alltoall_electrical_schedule",
    "alltoall_ring_schedule",
]


def _check(p: int, n_bytes: float) -> None:
    if p < 2:
        raise ValueError("ALLTOALL needs at least two chips")
    if n_bytes < 0:
        raise ValueError("buffer size cannot be negative")


def alltoall_optical_cost(p: int, bandwidth_fraction: float = 1.0) -> CollectiveCost:
    """Symbolic cost of the circuit-round ALLTOALL over ``p`` chips.

    ``p - 1`` rounds; each round moves one shard of ``N / p`` bytes per
    chip at the per-circuit bandwidth and charges one ``r``.
    """
    _check(p, 0.0)
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth fraction must be in (0, 1]")
    return CollectiveCost(
        alpha_count=p - 1,
        beta_factor=(p - 1) / p / bandwidth_fraction,
        reconfig_count=p - 1,
    )


def alltoall_ring_cost(p: int, bandwidth_fraction: float = 1.0) -> CollectiveCost:
    """Symbolic cost of ring-lowered ALLTOALL over ``p`` chips.

    On a unidirectional ring, each chip's shard to the chip at distance
    ``d`` occupies ``d`` link-transmissions. Summing over destinations,
    every link carries ``(N / p) * sum(d, d = 1..p-1) = N (p - 1) / 2``
    bytes — quadratically worse than the circuit-round variant's
    ``N (p - 1) / p``, which is the Section 5 point that all-to-all is
    where ring fabrics stop being enough.
    """
    _check(p, 0.0)
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth fraction must be in (0, 1]")
    return CollectiveCost(
        alpha_count=p - 1,
        beta_factor=(p - 1) / 2.0 / bandwidth_fraction,
    )


def alltoall_optical_schedule(
    chips: list[Coordinate], n_bytes: float, owner: str = ""
) -> CollectiveSchedule:
    """Circuit-round ALLTOALL: ``p - 1`` reconfigured perfect matchings.

    Round ``k`` connects chip ``i`` to chip ``(i + k) mod p`` with a
    dedicated circuit; every chip sends its ``N / p`` shard for that
    destination. Congestion-free by construction.
    """
    p = len(chips)
    _check(p, n_bytes)
    if len(set(chips)) != p:
        raise ValueError("chips must be distinct")
    schedule = CollectiveSchedule(name=f"alltoall optical rounds p={p}")
    shard = n_bytes / p
    for k in range(1, p):
        transfers = [
            Transfer(
                src=chips[i],
                dst=chips[(i + k) % p],
                n_bytes=shard,
                path=direct_path(chips[i], chips[(i + k) % p]),
                owner=owner,
            )
            for i in range(p)
        ]
        schedule.add_phase(
            Phase(
                transfers=transfers,
                reconfigurations=1,
                label=f"a2a round {k}/{p - 1}",
            )
        )
    return schedule


def alltoall_electrical_schedule(
    slc: Slice, n_bytes: float, owner: str = ""
) -> CollectiveSchedule:
    """Direct ALLTOALL on the static torus, all pairs at once.

    Every chip sends every shard simultaneously along the forward
    dimension-ordered route; the resulting link sharing is the congestion
    the paper predicts for all-to-all on direct-connect fabrics.
    """
    chips = slc.chips()
    p = len(chips)
    _check(p, n_bytes)
    shard = n_bytes / p
    transfers = []
    for src in chips:
        for dst in chips:
            if src == dst:
                continue
            path = _dimension_ordered_torus_path(slc, src, dst)
            transfers.append(
                Transfer(src=src, dst=dst, n_bytes=shard, path=path, owner=owner)
            )
    schedule = CollectiveSchedule(name=f"alltoall electrical direct p={p}")
    schedule.add_phase(Phase(transfers=transfers, label="a2a direct"))
    return schedule


def alltoall_ring_schedule(
    slc: Slice, n_bytes: float, owner: str = ""
) -> CollectiveSchedule:
    """Ring-lowered ALLTOALL: ``p - 1`` forwarding steps on the snake ring.

    At step ``k`` every chip forwards the bundle of shards still in
    flight — ``(p - k)`` shards of ``N / p`` bytes — to its ring
    successor, delivering one shard per step.
    """
    order = snake_order(slc)
    p = len(order)
    _check(p, n_bytes)
    shard = n_bytes / p
    schedule = CollectiveSchedule(name=f"alltoall ring p={p}")
    for k in range(1, p):
        in_flight = p - k
        transfers = [
            Transfer(
                src=order[i],
                dst=order[(i + 1) % p],
                n_bytes=shard * in_flight,
                path=direct_path(order[i], order[(i + 1) % p]),
                owner=owner,
            )
            for i in range(p)
        ]
        schedule.add_phase(
            Phase(transfers=transfers, label=f"a2a ring step {k}/{p - 1}")
        )
    return schedule


def _dimension_ordered_torus_path(
    slc: Slice, src: Coordinate, dst: Coordinate
) -> tuple[Coordinate, ...]:
    """Shortest dimension-ordered path on the rack torus."""
    path = [src]
    current = src
    for dim in range(slc.rack.ndim):
        extent = slc.rack.shape[dim]
        forward = (dst[dim] - current[dim]) % extent
        backward = extent - forward
        steps, delta = (
            (forward, 1) if forward <= backward else (backward, -1)
        )
        for _ in range(steps):
            current = slc.rack.shift(current, dim, delta)
            path.append(current)
    return tuple(path)
