"""Slice-level collective strategy selection (paper Section 4.1).

Given a slice and an interconnect kind, pick the algorithm the paper
assigns and return its symbolic cost — this is the logic behind Tables 1
and 2:

* **Electrical, all active dimensions congestion-free** (Slice-3): run the
  multi-dimensional bucket algorithm; every link carries the static
  ``B / 3`` share of chip bandwidth (one of three wired dimensions).
* **Electrical, some active dimension congested** (Slice-1): fall back to a
  single Hamiltonian ring over all chips, still at ``B / 3`` per link —
  3x the optimal beta cost, Table 1's electrical row.
* **Optical, some active dimension congested** (Slice-1): steer *all* chip
  bandwidth into one full ring — optimal ``N (p-1) / (p B)`` beta plus one
  reconfiguration ``r``.
* **Optical, all active dimensions congestion-free** (Slice-3): keep the
  bucket but steer the stranded dimensions' bandwidth into the active
  ones — per-dimension bandwidth ``B / |active|`` and one ``r`` per stage,
  Table 2's optical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from ..topology.slices import Slice
from .bucket import bucket_reduce_scatter_schedule
from .cost_model import (
    CollectiveCost,
    bucket_stage_costs,
    ring_reduce_scatter,
)
from .ring import ring_reduce_scatter_schedule, snake_order
from .schedule import CollectiveSchedule

__all__ = [
    "Interconnect",
    "StrategyKind",
    "SliceStrategy",
    "plan_reduce_scatter",
    "reduce_scatter_cost",
    "reduce_scatter_stage_costs",
    "build_reduce_scatter_schedule",
]


class Interconnect(str, Enum):
    """Interconnect technology under evaluation."""

    ELECTRICAL = "electrical"
    OPTICAL = "optical"


class StrategyKind(str, Enum):
    """Algorithm shape chosen for the slice."""

    BUCKET = "bucket"
    SINGLE_RING = "single-ring"


@dataclass(frozen=True)
class SliceStrategy:
    """The algorithm + bandwidth configuration chosen for a slice.

    Attributes:
        kind: bucket or single Hamiltonian ring.
        interconnect: electrical or optical.
        dims: bucket dimension order (empty for single ring).
        bandwidth_fraction: fraction of chip egress each ring link carries.
        reconfig_per_stage: whether each stage charges ``r``.
    """

    kind: StrategyKind
    interconnect: Interconnect
    dims: tuple[int, ...]
    bandwidth_fraction: float
    reconfig_per_stage: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kind is StrategyKind.SINGLE_RING:
            shape = "single ring over all chips"
        else:
            shape = f"bucket over dims {list(self.dims)}"
        return (
            f"{self.interconnect.value}: {shape} at "
            f"{self.bandwidth_fraction:.3g} x B per link"
        )


def plan_reduce_scatter(
    slc: Slice, interconnect: Interconnect, wired_dims: int | None = None
) -> SliceStrategy:
    """Choose the paper's REDUCESCATTER strategy for ``slc``.

    Args:
        slc: the tenant slice.
        interconnect: electrical baseline or LIGHTPATH optics.
        wired_dims: physical torus dimensions the chip bandwidth is split
            across electrically; defaults to the rack's dimensionality.

    Raises:
        ValueError: if the slice has a single chip (no collective needed).
    """
    if slc.chip_count < 2:
        raise ValueError(f"slice {slc.name} has one chip; nothing to reduce")
    wired = wired_dims if wired_dims is not None else slc.rack.ndim
    if wired < 1:
        raise ValueError("wired_dims must be >= 1")
    active = slc.active_dimensions()
    usable = set(slc.usable_dimensions())
    all_usable = bool(active) and all(d in usable for d in active)

    if interconnect is Interconnect.ELECTRICAL:
        if all_usable and len(active) >= 1:
            return SliceStrategy(
                kind=StrategyKind.BUCKET,
                interconnect=interconnect,
                dims=tuple(active),
                bandwidth_fraction=1.0 / wired,
                reconfig_per_stage=False,
            )
        return SliceStrategy(
            kind=StrategyKind.SINGLE_RING,
            interconnect=interconnect,
            dims=(),
            bandwidth_fraction=1.0 / wired,
            reconfig_per_stage=False,
        )

    if all_usable and len(active) > 1:
        # Steer stranded dimensions' bandwidth into the active ones.
        return SliceStrategy(
            kind=StrategyKind.BUCKET,
            interconnect=interconnect,
            dims=tuple(active),
            bandwidth_fraction=1.0 / len(active),
            reconfig_per_stage=True,
        )
    return SliceStrategy(
        kind=StrategyKind.SINGLE_RING,
        interconnect=interconnect,
        dims=(),
        bandwidth_fraction=1.0,
        reconfig_per_stage=True,
    )


@lru_cache(maxsize=4096)
def _stage_costs_for_geometry(
    slice_shape: tuple[int, ...],
    rack_shape: tuple[int, ...],
    chip_count: int,
    interconnect: Interconnect,
    wired_dims: int | None,
) -> tuple[CollectiveCost, ...]:
    """Memoized per-stage costs for one slice geometry.

    The strategy (and hence the cost) is a pure function of the slice
    shape, the rack shape, and the interconnect, so sweeps that rebuild
    allocators per spec — or per worker process — still pay strategy
    selection once per distinct geometry. ``CollectiveCost`` is frozen,
    making the shared values safe.
    """
    # A throwaway Slice at the origin reproduces the geometry: strategy
    # selection only reads shape-derived dimension sets, never offsets.
    from ..topology.torus import Torus

    slc = Slice(
        name="_cost",
        rack=Torus(rack_shape),
        offset=tuple(0 for _ in rack_shape),
        shape=slice_shape,
    )
    strategy = plan_reduce_scatter(slc, interconnect, wired_dims)
    if strategy.kind is StrategyKind.SINGLE_RING:
        cost = ring_reduce_scatter(chip_count, strategy.bandwidth_fraction)
        if strategy.reconfig_per_stage:
            cost = cost.with_reconfig()
        return (cost,)
    stage_sizes = [slice_shape[d] for d in strategy.dims]
    return tuple(
        bucket_stage_costs(
            stage_sizes, strategy.bandwidth_fraction, strategy.reconfig_per_stage
        )
    )


def reduce_scatter_cost(
    slc: Slice, interconnect: Interconnect, wired_dims: int | None = None
) -> CollectiveCost:
    """Symbolic REDUCESCATTER cost of the chosen strategy (Tables 1-2)."""
    total = CollectiveCost(0, 0.0)
    for stage in _stage_costs_for_geometry(
        slc.shape, slc.rack.shape, slc.chip_count, interconnect, wired_dims
    ):
        total = total + stage
    return total


def reduce_scatter_stage_costs(
    slc: Slice, interconnect: Interconnect, wired_dims: int | None = None
) -> list[CollectiveCost]:
    """Per-stage costs — the individual rows of Table 2.

    A single-ring strategy is one stage.
    """
    return list(
        _stage_costs_for_geometry(
            slc.shape, slc.rack.shape, slc.chip_count, interconnect, wired_dims
        )
    )


def build_reduce_scatter_schedule(
    slc: Slice,
    n_bytes: float,
    interconnect: Interconnect,
    wired_dims: int | None = None,
) -> CollectiveSchedule:
    """Materialize the chosen strategy as a concrete transfer schedule.

    The schedule's measured duration under fair link sharing matches the
    symbolic :func:`reduce_scatter_cost` (verified by the integration
    tests), grounding Tables 1 and 2 in an executable model.
    """
    strategy = plan_reduce_scatter(slc, interconnect, wired_dims)
    optical = strategy.interconnect is Interconnect.OPTICAL
    if strategy.kind is StrategyKind.SINGLE_RING:
        return ring_reduce_scatter_schedule(
            snake_order(slc), n_bytes, owner=slc.name, slc=slc, optical=optical
        )
    return bucket_reduce_scatter_schedule(
        slc, n_bytes, dims=list(strategy.dims), owner=slc.name, optical=optical
    )
