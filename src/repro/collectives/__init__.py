"""Collective communication: cost models, schedules and strategies.

Implements the paper's Section 4.1 machinery — the alpha-beta-r cost model,
ring and multi-dimensional bucket algorithms, their concrete link-level
schedules, and the per-slice strategy selection behind Tables 1 and 2.
"""

from .alltoall import (
    alltoall_electrical_schedule,
    alltoall_optical_cost,
    alltoall_optical_schedule,
    alltoall_ring_cost,
    alltoall_ring_schedule,
)
from .bucket import (
    bucket_all_gather_schedule,
    bucket_all_reduce_schedule,
    bucket_reduce_scatter_schedule,
    simultaneous_bucket_schedules,
)
from .cost_model import (
    CollectiveCost,
    CostParameters,
    bucket_all_gather,
    bucket_all_reduce,
    bucket_reduce_scatter,
    bucket_stage_costs,
    reduce_scatter_lower_bound,
    ring_all_gather,
    ring_reduce_scatter,
    simultaneous_bucket_beta_factor,
)
from .primitives import (
    Interconnect,
    SliceStrategy,
    StrategyKind,
    build_reduce_scatter_schedule,
    plan_reduce_scatter,
    reduce_scatter_cost,
    reduce_scatter_stage_costs,
)
from .ring import (
    direct_path,
    electrical_hop_path,
    ring_all_gather_schedule,
    ring_reduce_scatter_schedule,
    snake_order,
)
from .schedule import CollectiveSchedule, Phase, Transfer
from .validation import (
    ReduceScatterState,
    simulate_bucket_reduce_scatter,
    simulate_ring_all_gather,
    simulate_ring_reduce_scatter,
    verify_all_gather,
    verify_reduce_scatter,
)

__all__ = [
    "alltoall_electrical_schedule",
    "alltoall_optical_cost",
    "alltoall_optical_schedule",
    "alltoall_ring_cost",
    "alltoall_ring_schedule",
    "bucket_all_gather_schedule",
    "bucket_all_reduce_schedule",
    "bucket_reduce_scatter_schedule",
    "simultaneous_bucket_schedules",
    "CollectiveCost",
    "CostParameters",
    "bucket_all_gather",
    "bucket_all_reduce",
    "bucket_reduce_scatter",
    "bucket_stage_costs",
    "reduce_scatter_lower_bound",
    "ring_all_gather",
    "ring_reduce_scatter",
    "simultaneous_bucket_beta_factor",
    "Interconnect",
    "SliceStrategy",
    "StrategyKind",
    "build_reduce_scatter_schedule",
    "plan_reduce_scatter",
    "reduce_scatter_cost",
    "reduce_scatter_stage_costs",
    "direct_path",
    "electrical_hop_path",
    "ring_all_gather_schedule",
    "ring_reduce_scatter_schedule",
    "snake_order",
    "CollectiveSchedule",
    "Phase",
    "Transfer",
    "ReduceScatterState",
    "simulate_bucket_reduce_scatter",
    "simulate_ring_all_gather",
    "simulate_ring_reduce_scatter",
    "verify_all_gather",
    "verify_reduce_scatter",
]
