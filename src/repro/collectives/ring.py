"""Ring construction and ring-algorithm schedules.

Ring algorithms are the paper's workhorse: "ring-based algorithms require
an accelerator to communicate with only two other accelerators at a given
time, making communication in a ring on a direct-connect torus congestion
free" (Section 4). This module builds ring orderings over slices — per-
dimension rings for the bucket algorithm and the Hamiltonian "snake" ring a
steered LIGHTPATH uses to run one full-bandwidth ring over every chip of a
slice (Section 4.1, Slice-1) — and expands them into transfer schedules.
"""

from __future__ import annotations

from ..topology.slices import Slice
from ..topology.torus import Coordinate
from .schedule import CollectiveSchedule, Phase, Transfer

__all__ = [
    "snake_order",
    "ring_reduce_scatter_schedule",
    "ring_all_gather_schedule",
    "electrical_hop_path",
    "direct_path",
]


def snake_order(slc: Slice) -> list[Coordinate]:
    """Hamiltonian (boustrophedon) traversal of a slice's chips.

    Walks the first active dimension back and forth while advancing the
    remaining dimensions, producing an order in which consecutive chips are
    torus neighbours — so a ring over the order uses each physical link at
    most once. This is the "redirect all bandwidth along one ring" layout
    of Section 4.1.
    """
    dims = [d for d, ext in enumerate(slc.shape) if ext > 1]
    if not dims:
        return slc.chips()
    axes = [
        [(slc.offset[d] + i) % slc.rack.shape[d] for i in range(slc.shape[d])]
        for d in dims
    ]

    def snake(levels: list[list[int]]) -> list[tuple[int, ...]]:
        if len(levels) == 1:
            return [(v,) for v in levels[0]]
        inner = snake(levels[1:])
        out: list[tuple[int, ...]] = []
        for i, v in enumerate(levels[0]):
            block = inner if i % 2 == 0 else list(reversed(inner))
            out.extend((v, *rest) for rest in block)
        return out

    order: list[Coordinate] = []
    for combo in snake(axes):
        coords = list(slc.offset)
        for d, v in zip(dims, combo):
            coords[d] = v
        order.append(tuple(coords))
    return order


def direct_path(src: Coordinate, dst: Coordinate) -> tuple[Coordinate, ...]:
    """A 2-node logical path — an optical circuit or a single hop."""
    return (src, dst)


def electrical_hop_path(
    slc: Slice,
    src: Coordinate,
    dst: Coordinate,
    prefer_short: bool = False,
) -> tuple[Coordinate, ...]:
    """Physical node path of an electrical hop between ring neighbours.

    Ring neighbours that are torus-adjacent map to one link. By default the
    path walks the *forward* (+1) direction of the dimension — the
    unidirectional-ring semantics of the bucket algorithm — so the
    ring-closing hop of a slice that does not span its dimension walks the
    wrap path through foreign chips, which is where Figure 5b's congestion
    comes from.

    Args:
        prefer_short: walk whichever direction is shorter instead. Used by
            the Hamiltonian snake ring, whose alternating sweeps hop
            backwards between adjacent chips.

    Raises:
        ValueError: if the chips differ in more than one dimension (ring
            neighbours always share all-but-one coordinate).
    """
    diff_dims = [d for d in range(slc.rack.ndim) if src[d] != dst[d]]
    if not diff_dims:
        return (src, dst) if src != dst else (src, src)
    if len(diff_dims) > 1:
        raise ValueError(
            f"{src} -> {dst} differ in {len(diff_dims)} dimensions; "
            "electrical ring hops run along one dimension"
        )
    dim = diff_dims[0]
    extent = slc.rack.shape[dim]
    forward = (dst[dim] - src[dim]) % extent
    if prefer_short and extent - forward < forward:
        steps, delta = extent - forward, -1
    else:
        steps, delta = forward, 1
    path = [src]
    for _ in range(steps):
        path.append(slc.rack.shift(path[-1], dim, delta))
    return tuple(path)


def _ring_step_phase(
    ring: list[Coordinate],
    step: int,
    bytes_per_step: float,
    owner: str,
    slc: Slice | None,
    optical: bool,
    label: str,
) -> Phase:
    transfers = []
    p = len(ring)
    for i in range(p):
        src, dst = ring[i], ring[(i + 1) % p]
        if optical or slc is None:
            path = direct_path(src, dst)
        else:
            # Snake rings hop backwards on alternating sweeps; take the
            # short direction so adjacent chips map to one link.
            path = electrical_hop_path(slc, src, dst, prefer_short=True)
        transfers.append(
            Transfer(src=src, dst=dst, n_bytes=bytes_per_step, path=path, owner=owner)
        )
    reconfigs = 1 if (optical and step == 0) else 0
    return Phase(transfers=transfers, reconfigurations=reconfigs, label=label)


def ring_reduce_scatter_schedule(
    ring: list[Coordinate],
    n_bytes: float,
    owner: str = "",
    slc: Slice | None = None,
    optical: bool = False,
) -> CollectiveSchedule:
    """REDUCESCATTER over one ring: ``p - 1`` steps of ``N / p`` bytes.

    Args:
        ring: chips in send order.
        n_bytes: total buffer size ``N``.
        slc: slice providing physical-path expansion for electrical hops;
            required when ``optical`` is False and the ring wraps.
        optical: transfers ride end-to-end circuits (direct paths) and the
            first step charges one reconfiguration ``r``.
    """
    p = len(ring)
    if p < 1:
        raise ValueError("ring cannot be empty")
    schedule = CollectiveSchedule(name=f"reduce-scatter ring p={p}")
    if p == 1:
        return schedule
    if len(set(ring)) != p:
        raise ValueError("ring nodes must be distinct")
    per_step = n_bytes / p
    for step in range(p - 1):
        schedule.add_phase(
            _ring_step_phase(
                ring, step, per_step, owner, slc, optical,
                label=f"rs step {step + 1}/{p - 1}",
            )
        )
    return schedule


def ring_all_gather_schedule(
    ring: list[Coordinate],
    n_bytes: float,
    owner: str = "",
    slc: Slice | None = None,
    optical: bool = False,
) -> CollectiveSchedule:
    """ALLGATHER over one ring — same traffic pattern as REDUCESCATTER."""
    schedule = ring_reduce_scatter_schedule(ring, n_bytes, owner, slc, optical)
    schedule.name = f"all-gather ring p={len(ring)}"
    for i, phase in enumerate(schedule.phases):
        phase.label = f"ag step {i + 1}/{len(schedule.phases)}"
    return schedule
