"""Multi-dimensional bucket algorithm schedules (paper Sections 2, 4.1).

The TPUv4 software stack runs collectives with the multi-dimensional bucket
algorithm [39]: one ring per torus dimension, executed sequentially, the
live buffer shrinking by the ring size after each REDUCESCATTER stage (and
growing during ALLGATHER). This module materializes those schedules over a
slice, in both the electrical variant (per-dimension static links, wrap
paths through foreign chips when the slice under-spans a dimension) and the
optical variant (end-to-end circuits, a reconfiguration charge between
stages), plus the simultaneous rotated-order variant the paper discusses
([41]-style) used to prove the Section 4.1 equivalence.
"""

from __future__ import annotations

from ..topology.slices import Slice
from ..topology.torus import Coordinate
from .ring import direct_path, electrical_hop_path
from .schedule import CollectiveSchedule, Phase, Transfer

__all__ = [
    "bucket_reduce_scatter_schedule",
    "bucket_all_gather_schedule",
    "bucket_all_reduce_schedule",
    "simultaneous_bucket_schedules",
]


def _stage_rings(slc: Slice, dim: int) -> list[list[Coordinate]]:
    rings = slc.rings(dim)
    if any(len(r) < 2 for r in rings):
        raise ValueError(
            f"dimension {dim} of slice {slc.name} has extent "
            f"{slc.shape[dim]}; bucket stages need extent >= 2"
        )
    return rings


def _stage_phases(
    slc: Slice,
    dim: int,
    stage_bytes: float,
    owner: str,
    optical: bool,
    stage_label: str,
) -> list[Phase]:
    """Phases of one bucket stage: all of the dimension's rings step in
    lockstep, ``p - 1`` steps of ``stage_bytes / p`` each."""
    rings = _stage_rings(slc, dim)
    p = len(rings[0])
    per_step = stage_bytes / p
    phases = []
    for step in range(p - 1):
        transfers = []
        for ring in rings:
            for i in range(p):
                src, dst = ring[i], ring[(i + 1) % p]
                path = (
                    direct_path(src, dst)
                    if optical
                    else electrical_hop_path(slc, src, dst)
                )
                transfers.append(
                    Transfer(
                        src=src, dst=dst, n_bytes=per_step, path=path, owner=owner
                    )
                )
        reconfigs = 1 if (optical and step == 0) else 0
        phases.append(
            Phase(
                transfers=transfers,
                reconfigurations=reconfigs,
                label=f"{stage_label} step {step + 1}/{p - 1}",
            )
        )
    return phases


def bucket_reduce_scatter_schedule(
    slc: Slice,
    n_bytes: float,
    dims: list[int] | None = None,
    owner: str = "",
    optical: bool = False,
) -> CollectiveSchedule:
    """REDUCESCATTER via the multi-dimensional bucket algorithm.

    Args:
        slc: the slice executing the collective.
        n_bytes: buffer size ``N``.
        dims: dimension execution order; defaults to the slice's active
            dimensions in index order (the standard "XYZ" order).
        owner: label stamped on every transfer.
        optical: build end-to-end-circuit paths and charge ``r`` before
            each stage's first step.

    The live buffer entering stage ``k`` is ``N / prod(earlier ring
    sizes)`` — Table 2's "buffer size N ... then N/4".
    """
    if n_bytes < 0:
        raise ValueError("buffer size cannot be negative")
    order = list(dims) if dims is not None else slc.active_dimensions()
    if not order:
        raise ValueError(f"slice {slc.name} has no dimension with >= 2 chips")
    schedule = CollectiveSchedule(
        name=f"reduce-scatter bucket dims={order} ({'optical' if optical else 'electrical'})"
    )
    stage_bytes = float(n_bytes)
    for dim in order:
        label = f"rs dim{dim}"
        for phase in _stage_phases(slc, dim, stage_bytes, owner, optical, label):
            schedule.add_phase(phase)
        stage_bytes /= slc.shape[dim]
    return schedule


def bucket_all_gather_schedule(
    slc: Slice,
    n_bytes: float,
    dims: list[int] | None = None,
    owner: str = "",
    optical: bool = False,
) -> CollectiveSchedule:
    """ALLGATHER bucket pass — the REDUCESCATTER mirrored in reverse order.

    The buffer *grows* through stages: the stage over the last reduce
    dimension starts from ``N / prod(all ring sizes)`` shards upward.
    """
    if n_bytes < 0:
        raise ValueError("buffer size cannot be negative")
    order = list(dims) if dims is not None else slc.active_dimensions()
    if not order:
        raise ValueError(f"slice {slc.name} has no dimension with >= 2 chips")
    schedule = CollectiveSchedule(
        name=f"all-gather bucket dims={list(reversed(order))} "
        f"({'optical' if optical else 'electrical'})"
    )
    total_shrink = 1
    for dim in order:
        total_shrink *= slc.shape[dim]
    stage_bytes = float(n_bytes)
    for dim in order:
        stage_bytes /= slc.shape[dim]
    # stage_bytes is now the per-chip shard; walk dims in reverse, growing.
    for dim in reversed(order):
        stage_bytes *= slc.shape[dim]
        label = f"ag dim{dim}"
        for phase in _stage_phases(slc, dim, stage_bytes, owner, optical, label):
            schedule.add_phase(phase)
    return schedule


def bucket_all_reduce_schedule(
    slc: Slice,
    n_bytes: float,
    dims: list[int] | None = None,
    owner: str = "",
    optical: bool = False,
) -> CollectiveSchedule:
    """ALLREDUCE = bucket REDUCESCATTER then bucket ALLGATHER (Section 4.1)."""
    rs = bucket_reduce_scatter_schedule(slc, n_bytes, dims, owner, optical)
    ag = bucket_all_gather_schedule(slc, n_bytes, dims, owner, optical)
    combined = CollectiveSchedule(
        name=f"all-reduce bucket ({'optical' if optical else 'electrical'})"
    )
    for phase in rs.phases + ag.phases:
        combined.add_phase(phase)
    return combined


def _rotate(order: list[int], k: int) -> list[int]:
    return order[k:] + order[:k]


def simultaneous_bucket_schedules(
    slc: Slice,
    n_bytes: float,
    owner: str = "",
    optical: bool = False,
) -> list[CollectiveSchedule]:
    """The simultaneous rotated-order bucket variant (Section 4.1, [41]).

    Splits the buffer into ``D`` equal parts and runs ``D`` bucket passes
    concurrently, each in a rotated dimension order (XYZ, YZX, ZXY), so
    every dimension is busy throughout the collective. Returns one
    schedule per part; the parts execute in parallel, each dimension
    carrying ``1 / D`` of the chip bandwidth.
    """
    dims = slc.active_dimensions()
    if not dims:
        raise ValueError(f"slice {slc.name} has no dimension with >= 2 chips")
    d = len(dims)
    part_bytes = n_bytes / d
    return [
        bucket_reduce_scatter_schedule(
            slc,
            part_bytes,
            dims=_rotate(dims, k),
            owner=f"{owner}/part{k}" if owner else f"part{k}",
            optical=optical,
        )
        for k in range(d)
    ]
