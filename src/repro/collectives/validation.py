"""Semantic validation of the collective algorithms.

The cost model assumes the ring and multi-dimensional bucket algorithms
*work* — that after the scheduled steps every chip really holds the fully
reduced shard (REDUCESCATTER) or the complete buffer (ALLGATHER). This
module proves it by dataflow simulation: contributions are tracked as
sets of source chips, ring steps merge them exactly as the algorithm's
sends do, and the validators assert the postcondition. The property tests
run these over randomized slices, so a bug in ring construction or stage
ordering (the kind that silently corrupts gradients in production
collectives) fails loudly here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.slices import Slice
from ..topology.torus import Coordinate

__all__ = [
    "ReduceScatterState",
    "simulate_ring_reduce_scatter",
    "simulate_bucket_reduce_scatter",
    "simulate_ring_all_gather",
    "verify_reduce_scatter",
    "verify_all_gather",
]


@dataclass
class ReduceScatterState:
    """Dataflow state: which sources contributed to which held shard.

    Attributes:
        members: participating chips.
        holdings: ``holdings[chip][shard]`` is the set of chips whose
            contribution to ``shard`` the chip currently holds (merged).
            Shards are identified by the chip that must finally own them.
    """

    members: list[Coordinate]
    holdings: dict[Coordinate, dict[Coordinate, frozenset]]

    @classmethod
    def initial(cls, members: list[Coordinate]) -> "ReduceScatterState":
        """Every chip starts holding only its own contribution to every
        shard."""
        return cls(
            members=list(members),
            holdings={
                chip: {shard: frozenset({chip}) for shard in members}
                for chip in members
            },
        )

    def merge_into(
        self, src: Coordinate, dst: Coordinate, shard: Coordinate
    ) -> None:
        """Model sending ``src``'s partial of ``shard`` to ``dst``."""
        self.holdings[dst][shard] = (
            self.holdings[dst][shard] | self.holdings[src][shard]
        )

    def restrict(self, chip: Coordinate, shards: set[Coordinate]) -> None:
        """Drop every shard of ``chip`` not in ``shards`` (freed buffer)."""
        self.holdings[chip] = {
            shard: contributions
            for shard, contributions in self.holdings[chip].items()
            if shard in shards
        }


def simulate_ring_reduce_scatter(ring: list[Coordinate]) -> ReduceScatterState:
    """Run the ring REDUCESCATTER dataflow over ``ring``.

    At step ``k`` chip ``ring[i]`` sends its partial of the shard owned by
    ``ring[(i - 1 - k) % p]`` to its successor — the standard rotation in
    which the shard destined for a chip arrives, fully accumulated, on the
    final step. After ``p - 1`` steps each chip holds its own shard fully
    reduced.
    """
    p = len(ring)
    if p < 1 or len(set(ring)) != p:
        raise ValueError("ring must be non-empty and distinct")
    state = ReduceScatterState.initial(ring)
    for k in range(p - 1):
        sends = []
        for i in range(p):
            shard_owner = ring[(i - 1 - k) % p]
            sends.append((ring[i], ring[(i + 1) % p], shard_owner))
        # All sends of a step happen simultaneously on pre-step state.
        snapshot = {
            chip: dict(state.holdings[chip]) for chip in ring
        }
        for src, dst, shard in sends:
            state.holdings[dst][shard] = (
                state.holdings[dst][shard] | snapshot[src][shard]
            )
    for chip in ring:
        state.restrict(chip, {chip})
    return state


def simulate_bucket_reduce_scatter(
    slc: Slice, dims: list[int] | None = None
) -> ReduceScatterState:
    """Run the multi-dimensional bucket REDUCESCATTER dataflow.

    Stage over dimension ``d``: every ring along ``d`` ring-reduce-
    scatters, after which each member keeps only the shards whose ``d``
    coordinate matches its own (Table 2's shrinking buffer).
    """
    order = list(dims) if dims is not None else slc.active_dimensions()
    if not order:
        raise ValueError(f"slice {slc.name} has no dimension to bucket over")
    members = slc.chips()
    state = ReduceScatterState.initial(members)
    for d in order:
        for ring in slc.rings(d):
            live_shards = [
                shard
                for shard in state.holdings[ring[0]]
            ]
            # Ring-RS semantics per shard: the shard group destined for
            # ring member m (matching d-coordinate) accumulates around
            # the ring into m.
            for shard in live_shards:
                target = next(
                    (m for m in ring if m[d] == shard[d]), None
                )
                if target is None:
                    continue
                merged = frozenset()
                for member in ring:
                    merged |= state.holdings[member].get(shard, frozenset())
                state.holdings[target][shard] = merged
        for chip in members:
            keep = {
                shard
                for shard in state.holdings[chip]
                if shard[d] == chip[d]
            }
            state.restrict(chip, keep)
    return state


def simulate_ring_all_gather(ring: list[Coordinate]) -> dict[Coordinate, set]:
    """Run the ring ALLGATHER dataflow: each chip starts with one shard.

    Returns the set of shards each chip holds after ``p - 1`` steps.
    """
    p = len(ring)
    if p < 1 or len(set(ring)) != p:
        raise ValueError("ring must be non-empty and distinct")
    held: dict[Coordinate, set] = {chip: {chip} for chip in ring}
    for k in range(p - 1):
        snapshot = {chip: set(shards) for chip, shards in held.items()}
        for i in range(p):
            src, dst = ring[i], ring[(i + 1) % p]
            # Forward the shard received k steps ago (pipeline).
            shard = ring[(i - k) % p]
            if shard in snapshot[src]:
                held[dst].add(shard)
    return held


def verify_reduce_scatter(state: ReduceScatterState) -> bool:
    """Postcondition: every chip holds exactly its shard, fully reduced."""
    everyone = frozenset(state.members)
    for chip in state.members:
        holdings = state.holdings[chip]
        if set(holdings) != {chip}:
            return False
        if holdings[chip] != everyone:
            return False
    return True


def verify_all_gather(held: dict[Coordinate, set]) -> bool:
    """Postcondition: every chip holds every shard."""
    everyone = set(held)
    return all(shards == everyone for shards in held.values())
