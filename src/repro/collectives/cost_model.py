"""The alpha-beta-r collective cost model (paper Section 4.1).

The paper reasons about collectives with the classic alpha-beta model [42]
extended with an ``r`` term for optical reconfiguration:

* ``alpha`` — per-message software overhead (seconds per ring step),
* ``beta`` — transmission delay, inversely proportional to the bandwidth
  a ring step can push through its link,
* ``r`` — the constant charged before a ring starts when MZI switches
  must be reprogrammed (3.7 us on LIGHTPATH).

Costs are kept *symbolic*: a :class:`CollectiveCost` stores how many alphas,
how many ``N / B`` units (with ``B`` the full egress bandwidth of one chip)
and how many reconfigurations a collective incurs. This makes the benches
print rows directly comparable to the paper's Tables 1 and 2, while
:meth:`CollectiveCost.seconds` grounds them in wall-clock time for the
simulator cross-checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..phy.constants import CHIP_EGRESS_BYTES, DEFAULT_ALPHA_S, RECONFIG_LATENCY_S

__all__ = [
    "CostParameters",
    "CollectiveCost",
    "ring_reduce_scatter",
    "ring_all_gather",
    "bucket_reduce_scatter",
    "bucket_all_gather",
    "bucket_all_reduce",
    "reduce_scatter_lower_bound",
]


@dataclass(frozen=True)
class CostParameters:
    """Scalars that ground a symbolic cost in seconds.

    Attributes:
        alpha_s: per-step software overhead, seconds.
        chip_bandwidth_bytes: full egress bandwidth ``B`` of a chip, bytes/s.
        reconfig_s: optical reconfiguration latency ``r``, seconds.
    """

    alpha_s: float = DEFAULT_ALPHA_S
    chip_bandwidth_bytes: float = CHIP_EGRESS_BYTES
    reconfig_s: float = RECONFIG_LATENCY_S

    def __post_init__(self) -> None:
        if self.alpha_s < 0 or self.reconfig_s < 0:
            raise ValueError("alpha and r cannot be negative")
        if self.chip_bandwidth_bytes <= 0:
            raise ValueError("chip bandwidth must be positive")


@dataclass(frozen=True)
class CollectiveCost:
    """Symbolic alpha-beta-r cost of a collective.

    Attributes:
        alpha_count: number of alpha terms (ring steps).
        beta_factor: multiplier ``k`` such that the transmission time is
            ``k * N / B`` for buffer size ``N`` and full chip bandwidth
            ``B``. A single full-bandwidth ring over ``p`` chips has
            ``k = (p - 1) / p``; running the same ring on a link that only
            gets ``B / 3`` triples ``k``.
        reconfig_count: number of ``r`` terms charged.
    """

    alpha_count: int
    beta_factor: float
    reconfig_count: int = 0

    def __post_init__(self) -> None:
        if self.alpha_count < 0 or self.beta_factor < 0 or self.reconfig_count < 0:
            raise ValueError("cost terms cannot be negative")

    def __add__(self, other: "CollectiveCost") -> "CollectiveCost":
        return CollectiveCost(
            alpha_count=self.alpha_count + other.alpha_count,
            beta_factor=self.beta_factor + other.beta_factor,
            reconfig_count=self.reconfig_count + other.reconfig_count,
        )

    def with_reconfig(self, count: int = 1) -> "CollectiveCost":
        """The same cost with ``count`` extra reconfigurations charged."""
        return replace(self, reconfig_count=self.reconfig_count + count)

    def alpha_seconds(self, params: CostParameters) -> float:
        """The alpha (+ reconfiguration) portion in seconds."""
        return (
            self.alpha_count * params.alpha_s
            + self.reconfig_count * params.reconfig_s
        )

    def beta_seconds(self, n_bytes: float, params: CostParameters) -> float:
        """The transmission portion in seconds for an ``n_bytes`` buffer."""
        if n_bytes < 0:
            raise ValueError("buffer size cannot be negative")
        return self.beta_factor * n_bytes / params.chip_bandwidth_bytes

    def seconds(self, n_bytes: float, params: CostParameters) -> float:
        """Total cost in seconds for an ``n_bytes`` buffer."""
        return self.alpha_seconds(params) + self.beta_seconds(n_bytes, params)

    def alpha_label(self) -> str:
        """Human-readable alpha term, e.g. ``"7 x a"`` or ``"7 x a + r"``."""
        label = f"{self.alpha_count} x a"
        if self.reconfig_count == 1:
            label += " + r"
        elif self.reconfig_count > 1:
            label += f" + {self.reconfig_count} x r"
        return label

    def beta_label(self) -> str:
        """Human-readable beta term, e.g. ``"N x 2.625 / B"``."""
        return f"N x {self.beta_factor:.4g} / B"


def _check_ring(p: int, bandwidth_fraction: float) -> None:
    if p < 1:
        raise ValueError("a ring needs at least one chip")
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError(
            f"bandwidth fraction must be in (0, 1], got {bandwidth_fraction}"
        )


def ring_reduce_scatter(p: int, bandwidth_fraction: float = 1.0) -> CollectiveCost:
    """Cost of bucket/ring REDUCESCATTER over ``p`` chips.

    Args:
        p: chips in the ring.
        bandwidth_fraction: fraction of the chip's egress bandwidth ``B``
            the ring's links carry. Static electrical links in a 3D torus
            carry ``1/3``; a fully steered LIGHTPATH ring carries ``1``.

    The ring runs ``p - 1`` steps, each moving ``N / p`` bytes, giving
    ``alpha (p-1)`` and ``beta = N (p-1) / (p * fraction * B)``.
    """
    _check_ring(p, bandwidth_fraction)
    if p == 1:
        return CollectiveCost(0, 0.0)
    return CollectiveCost(
        alpha_count=p - 1,
        beta_factor=(p - 1) / p / bandwidth_fraction,
    )


def ring_all_gather(p: int, bandwidth_fraction: float = 1.0) -> CollectiveCost:
    """Cost of ring ALLGATHER over ``p`` chips (mirror of REDUCESCATTER)."""
    return ring_reduce_scatter(p, bandwidth_fraction)


def _bucket_stages(
    dims: list[int], bandwidth_fraction: float
) -> list[tuple[int, float, CollectiveCost]]:
    """Per-stage ``(ring_size, buffer_fraction, cost)`` of a bucket pass.

    The multi-dimensional bucket algorithm [39] executes one ring per
    dimension sequentially; after the stage over a dimension of size
    ``p_d`` the live buffer shrinks by ``p_d`` (Table 2's N then N/4).

    Dispatches to the vectorized all-stages-at-once kernel
    (:func:`repro.kernels.stagecosts.bucket_stage_arrays`) unless the
    reference backend is selected; both produce bit-identical costs.
    """
    if not dims:
        raise ValueError("need at least one dimension")
    if any(d < 2 for d in dims):
        raise ValueError(f"bucket dimensions must have >= 2 chips, got {dims}")
    _check_ring(max(dims), bandwidth_fraction)
    from ..kernels import active_kernel

    if active_kernel() == "vectorized":
        from ..kernels.stagecosts import bucket_stage_arrays

        alphas, fractions, betas = bucket_stage_arrays(
            tuple(dims), bandwidth_fraction
        )
        return [
            (p, fraction, CollectiveCost(alpha_count=alpha, beta_factor=beta))
            for p, alpha, fraction, beta in zip(dims, alphas, fractions, betas)
        ]
    stages = []
    buffer_fraction = 1.0
    for p in dims:
        base = ring_reduce_scatter(p, bandwidth_fraction)
        scaled = CollectiveCost(
            alpha_count=base.alpha_count,
            beta_factor=base.beta_factor * buffer_fraction,
        )
        stages.append((p, buffer_fraction, scaled))
        buffer_fraction /= p
    return stages


def bucket_reduce_scatter(
    dims: list[int],
    bandwidth_fraction: float = 1.0,
    reconfig_per_stage: bool = False,
) -> CollectiveCost:
    """Cost of the multi-dimensional bucket REDUCESCATTER.

    Args:
        dims: ring sizes per dimension, in execution order (e.g. ``[4, 4]``
            for Slice-3's X then Y stages).
        bandwidth_fraction: per-dimension link bandwidth as a fraction of
            the chip egress ``B`` (``1/3`` static electrical in a 3D rack,
            ``1/2`` with the Z bandwidth steered into X and Y, ...).
        reconfig_per_stage: charge one ``r`` before each stage's ring, as
            LIGHTPATH does when re-steering between dimensions.
    """
    total = CollectiveCost(0, 0.0)
    for _, _, stage_cost in _bucket_stages(dims, bandwidth_fraction):
        total = total + stage_cost
        if reconfig_per_stage:
            total = total.with_reconfig()
    return total


def bucket_stage_costs(
    dims: list[int],
    bandwidth_fraction: float = 1.0,
    reconfig_per_stage: bool = False,
) -> list[CollectiveCost]:
    """Per-stage costs of the bucket REDUCESCATTER (Table 2's two rows)."""
    costs = []
    for _, _, stage_cost in _bucket_stages(dims, bandwidth_fraction):
        costs.append(
            stage_cost.with_reconfig() if reconfig_per_stage else stage_cost
        )
    return costs


def bucket_all_gather(
    dims: list[int],
    bandwidth_fraction: float = 1.0,
    reconfig_per_stage: bool = False,
) -> CollectiveCost:
    """Cost of the bucket ALLGATHER (REDUCESCATTER mirrored in reverse)."""
    return bucket_reduce_scatter(
        list(reversed(dims)), bandwidth_fraction, reconfig_per_stage
    )


def bucket_all_reduce(
    dims: list[int],
    bandwidth_fraction: float = 1.0,
    reconfig_per_stage: bool = False,
) -> CollectiveCost:
    """ALLREDUCE = D REDUCESCATTERs then D ALLGATHERs (paper Section 4.1)."""
    return bucket_reduce_scatter(
        dims, bandwidth_fraction, reconfig_per_stage
    ) + bucket_all_gather(dims, bandwidth_fraction, reconfig_per_stage)


def reduce_scatter_lower_bound(p: int) -> float:
    """beta-factor lower bound ``(p - 1) / p`` for REDUCESCATTER.

    Each chip must ingest ``N (p - 1) / p`` bytes through its total
    bandwidth ``B``; the paper quotes the ~``N / B`` form of this bound.
    """
    if p < 1:
        raise ValueError("need at least one chip")
    if p == 1:
        return 0.0
    return (p - 1) / p


def simultaneous_bucket_beta_factor(dims: list[int]) -> float:
    """beta-factor of running ``D`` buffer-split buckets simultaneously.

    Section 4.1's equivalence: splitting ``N`` into ``D`` parts and running
    ``D`` bucket algorithms in rotated dimension orders, each dimension at
    ``B / D``, costs the same as one full-bandwidth pass. Exact form:
    the D parts run concurrently, so the cost is one part's cost —
    ``sum_d (N/D) * f_d * (p_d-1)/p_d / (B/D)`` with ``f_d`` the shrinking
    buffer fraction — identical to ``bucket_reduce_scatter(dims, 1.0)``.
    """
    if not dims:
        raise ValueError("need at least one dimension")
    d = len(dims)
    per_part = bucket_reduce_scatter(dims, bandwidth_fraction=1.0 / d)
    return per_part.beta_factor / d


def costs_equal(a: float, b: float, rel_tol: float = 1e-12) -> bool:
    """Tolerant equality for beta factors."""
    return math.isclose(a, b, rel_tol=rel_tol)
