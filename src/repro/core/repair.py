"""Optical failure repair (paper Section 4.2, Figure 7).

When a TPU fails, the rings of its slice break: the Y-dimension ring of
Figure 7 has no chip between 9 and 5, and the X ring has nothing connected
to 8. The paper's proposal: program the rack's MZI switches to splice a
*free* TPU into the broken rings with dedicated end-to-end optical
circuits, placed "on separate waveguides and fibers to avoid congestion".
The blast radius of the failure shrinks from the whole rack (TPUv4's
migration policy) to the server holding the failed chip.

This module computes the broken-ring neighbours, selects a spare, and
establishes the repair circuits on a :class:`~repro.core.fabric.
LightpathRackFabric`, returning a plan whose congestion-freedom is
guaranteed by resource exclusivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Coordinate
from .fabric import LightpathRackFabric, RackCircuit

__all__ = ["BrokenRing", "RepairPlan", "RepairError", "plan_optical_repair"]


class RepairError(RuntimeError):
    """Raised when no optical repair can be constructed."""


@dataclass(frozen=True)
class BrokenRing:
    """One ring interrupted by the failed chip.

    Attributes:
        dim: torus dimension of the ring.
        predecessor: chip that sent to the failed chip in the ring.
        successor: chip the failed chip sent to.
    """

    dim: int
    predecessor: Coordinate
    successor: Coordinate


def broken_rings(slc: Slice, failed: Coordinate) -> list[BrokenRing]:
    """The rings of ``slc`` that traverse ``failed``.

    One per active dimension of the slice: the failed chip participates in
    exactly one ring per dimension (the ring through its cross-section).

    Raises:
        ValueError: if the failed chip is not in the slice.
    """
    if not slc.contains(failed):
        raise ValueError(f"{failed} is not in slice {slc.name}")
    result = []
    for dim in slc.active_dimensions():
        ring = slc.ring_nodes(dim, failed)
        idx = ring.index(failed)
        result.append(
            BrokenRing(
                dim=dim,
                predecessor=ring[(idx - 1) % len(ring)],
                successor=ring[(idx + 1) % len(ring)],
            )
        )
    return result


@dataclass(frozen=True)
class RepairPlan:
    """An executed optical repair.

    Attributes:
        failed: the failed chip.
        replacement: the free chip spliced into the rings.
        rings: the rings repaired.
        circuits: circuits established (predecessor -> replacement and
            replacement -> successor per broken ring, de-duplicated).
        setup_latency_s: time to bring the repair up (switches program in
            parallel, so the slowest circuit dominates).
        fibers_used: fibers consumed across all repair circuits.
    """

    failed: Coordinate
    replacement: Coordinate
    rings: tuple[BrokenRing, ...]
    circuits: tuple[RackCircuit, ...]
    setup_latency_s: float
    fibers_used: int

    @property
    def blast_radius_chips(self) -> int:
        """Chips taken out of service by the failure after repair: one.

        The repaired slice continues on the replacement chip; only the
        failed chip itself is lost. Contrast with the rack-granularity
        policy measured in :mod:`repro.failures.blast_radius`.
        """
        return 1


def _required_endpoints(rings: list[BrokenRing], replacement: Coordinate):
    """Ordered, de-duplicated circuit endpoints for the repair.

    Each broken ring needs predecessor -> replacement and replacement ->
    successor. A chip that is both some ring's predecessor and another's
    successor still needs each direction once.
    """
    pairs: list[tuple[Coordinate, Coordinate]] = []
    for ring in rings:
        for pair in (
            (ring.predecessor, replacement),
            (replacement, ring.successor),
        ):
            if pair[0] != pair[1] and pair not in pairs:
                pairs.append(pair)
    return pairs


def plan_optical_repair(
    fabric: LightpathRackFabric,
    allocator: SliceAllocator,
    slc: Slice,
    failed: Coordinate,
    replacement: Coordinate | None = None,
) -> RepairPlan:
    """Splice a free chip into the rings broken by ``failed``.

    Args:
        fabric: the rack's LIGHTPATH fabric.
        allocator: slice allocator (provides the free-chip pool).
        slc: the slice that lost a chip.
        failed: the failed chip coordinate.
        replacement: override spare selection (must be free); by default
            the nearest free chip (fewest server hops) is chosen to
            minimize fiber usage — Section 5's "minimizing fiber
            requirement for fault tolerance".

    Raises:
        RepairError: when no free chip exists or circuits cannot be built.
    """
    rings = broken_rings(slc, failed)
    if not rings:
        raise RepairError(f"slice {slc.name} has no rings to repair")
    free = allocator.free_chips()
    free = [c for c in free if not fabric.rack.is_failed(c)]
    if replacement is not None:
        if replacement not in free:
            raise RepairError(f"{replacement} is not a free working chip")
        spare = replacement
    else:
        if not free:
            raise RepairError("no free chip available in the rack")
        failed_server = fabric.server_of(failed)
        spare = min(
            free,
            key=lambda chip: (
                _server_distance(fabric, failed_server, fabric.server_of(chip)),
                chip,
            ),
        )
    fabric.rack.fail_chip(failed)
    pairs = _required_endpoints(rings, spare)
    circuits: list[RackCircuit] = []
    try:
        for src, dst in pairs:
            circuits.append(fabric.establish(src, dst))
    except Exception as exc:
        for circuit in circuits:
            fabric.teardown(circuit.circuit_id)
        raise RepairError(f"could not establish repair circuits: {exc}") from exc
    return RepairPlan(
        failed=failed,
        replacement=spare,
        rings=tuple(rings),
        circuits=tuple(circuits),
        setup_latency_s=max(c.setup_latency_s for c in circuits),
        fibers_used=sum(c.fiber_hops for c in circuits),
    )


def _server_distance(
    fabric: LightpathRackFabric, a: tuple[int, ...], b: tuple[int, ...]
) -> int:
    """Hop distance between two servers on the fabric's server torus."""
    path = fabric._server_torus.shortest_path(a, b)
    return len(path) - 1 if path else 10**9
