"""Rack-scale LIGHTPATH fabric: per-server wafers cascaded with fibers.

"With attached fibers, we can cascade several LIGHTPATH wafers to create a
rack-scale photonic interconnect" (paper Section 3). In the TPUv4 mapping
of Section 4, "the TPUs within a server are connected via waveguides and
TPUs across the server are connected with fibers". This module builds that
fabric for one rack: every server board carries a wafer with its four TPUs
stacked on tiles; fiber trunks join servers that are torus-adjacent; and
rack-wide chip-to-chip circuits are established by allocating a dedicated
wavelength, waveguide tracks at the endpoint wafers, and one fiber per
inter-server hop — so circuits never share a physical resource and are
congestion-free end to end (the property Figure 7's repair relies on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..phy.constants import FIBERS_PER_EDGE_TILE, RECONFIG_LATENCY_S
from ..topology.torus import Coordinate, Torus
from ..topology.tpu import TpuRack
from .circuits import CircuitError, CircuitManager, OpticalCircuit
from .tile import TileCoord
from .wafer import LightpathWafer

__all__ = ["FiberTrunk", "RackCircuit", "LightpathRackFabric"]

ServerId = tuple[int, ...]


@dataclass
class FiberTrunk:
    """The fiber bundle between two adjacent servers' wafers.

    Attributes:
        ends: the (unordered) pair of server ids the trunk joins.
        capacity: fibers in the bundle.
    """

    ends: tuple[ServerId, ServerId]
    capacity: int = FIBERS_PER_EDGE_TILE
    _allocated: dict[int, object] = field(default_factory=dict, repr=False)

    @property
    def free(self) -> int:
        """Fibers not carrying a circuit."""
        return self.capacity - len(self._allocated)

    def allocate(self, owner: object) -> int:
        """Reserve one fiber; returns its index.

        Raises:
            RuntimeError: if the trunk is exhausted.
        """
        for index in range(self.capacity):
            if index not in self._allocated:
                self._allocated[index] = owner
                return index
        raise RuntimeError(f"fiber trunk {self.ends} exhausted ({self.capacity})")

    def release(self, owner: object) -> int:
        """Free every fiber held by ``owner``; returns fibers freed."""
        mine = [i for i, o in self._allocated.items() if o == owner]
        for i in mine:
            del self._allocated[i]
        return len(mine)


@dataclass(frozen=True)
class RackCircuit:
    """A rack-wide chip-to-chip optical circuit.

    Attributes:
        circuit_id: unique identity within the fabric.
        src: source chip (rack coordinate).
        dst: destination chip (rack coordinate).
        server_path: server boards traversed, endpoints inclusive.
        fiber_indices: fiber used on each inter-server hop.
        endpoint_circuits: the intra-wafer circuits at both ends (equal
            when both chips share a server).
        setup_latency_s: reconfiguration time charged.
    """

    circuit_id: int
    src: Coordinate
    dst: Coordinate
    server_path: tuple[ServerId, ...]
    fiber_indices: tuple[int, ...]
    endpoint_circuits: tuple[OpticalCircuit, ...]
    setup_latency_s: float

    @property
    def fiber_hops(self) -> int:
        """Inter-server hops of the circuit."""
        return len(self.fiber_indices)


class LightpathRackFabric:
    """A rack of TPUs interconnected by cascaded LIGHTPATH wafers.

    Attributes:
        rack: the TPUv4 rack whose chips the fabric serves.
        wafers: circuit manager per server board.
    """

    #: Wafer grid used per server board (four tiles for four TPUs).
    SERVER_WAFER_GRID = (2, 2)

    def __init__(self, rack: TpuRack, fibers_per_trunk: int = FIBERS_PER_EDGE_TILE):
        self.rack = rack
        self.wafers: dict[ServerId, CircuitManager] = {}
        self._chip_tile: dict[Coordinate, tuple[ServerId, TileCoord]] = {}
        for server in rack.servers():
            wafer = LightpathWafer(
                grid=self.SERVER_WAFER_GRID, name=f"server{server}"
            )
            manager = CircuitManager(wafer=wafer)
            self.wafers[server] = manager
            chips = rack.server_chips(server)
            tiles = sorted(wafer.tiles)
            if len(chips) > len(tiles):
                raise ValueError(
                    f"server {server} has {len(chips)} chips but the wafer "
                    f"has {len(tiles)} tiles"
                )
            for chip, tile in zip(chips, tiles):
                wafer.stack_accelerator(tile, chip)
                self._chip_tile[chip] = (server, tile)
        self._trunks: dict[frozenset, FiberTrunk] = {}
        self._server_torus = self._build_server_torus()
        for a, b in self._server_adjacency():
            key = frozenset((a, b))
            if key not in self._trunks:
                self._trunks[key] = FiberTrunk(
                    ends=(a, b), capacity=fibers_per_trunk
                )
        self._ids = itertools.count()
        self._circuits: dict[int, RackCircuit] = {}

    # -- structure ------------------------------------------------------------------

    def _build_server_torus(self) -> Torus:
        shape = tuple(
            (ext + b - 1) // b
            for ext, b in zip(self.rack.shape, TpuRack.SERVER_BLOCK)
        )
        return Torus(shape)

    def _server_adjacency(self) -> list[tuple[ServerId, ServerId]]:
        pairs = []
        for server in self._server_torus.nodes():
            for neighbor in self._server_torus.neighbors(server):
                pairs.append((server, neighbor))
        return pairs

    def server_of(self, chip: Coordinate) -> ServerId:
        """Server board hosting ``chip``."""
        return self._chip_tile[chip][0]

    def tile_of(self, chip: Coordinate) -> TileCoord:
        """Wafer tile hosting ``chip``."""
        return self._chip_tile[chip][1]

    def trunk(self, a: ServerId, b: ServerId) -> FiberTrunk:
        """The fiber trunk between adjacent servers ``a`` and ``b``.

        Raises:
            KeyError: if the servers are not adjacent.
        """
        key = frozenset((a, b))
        if key not in self._trunks:
            raise KeyError(f"no fiber trunk between {a} and {b}")
        return self._trunks[key]

    def trunks(self) -> list[FiberTrunk]:
        """All trunks in the fabric."""
        return list(self._trunks.values())

    # -- circuit establishment --------------------------------------------------------

    def _server_path(self, src: ServerId, dst: ServerId) -> list[ServerId]:
        path = self._server_torus.shortest_path(src, dst)
        if path is None:
            raise CircuitError(f"no server path {src} -> {dst}")
        # Prefer hops whose trunks still have free fibers.
        blocked = {
            tuple(sorted(t.ends))
            for t in self._trunks.values()
            if t.free == 0
        }
        if any(
            tuple(sorted((a, b))) in blocked for a, b in zip(path, path[1:])
        ):
            links = {
                lnk
                for t in self._trunks.values()
                if t.free == 0
                for lnk in (
                    (t.ends[0], t.ends[1]),
                    (t.ends[1], t.ends[0]),
                )
            }
            from ..topology.torus import Link

            path = self._server_torus.shortest_path(
                src, dst, forbidden_links={Link(a, b) for a, b in links}
            )
            if path is None:
                raise CircuitError(
                    f"fiber trunks exhausted between {src} and {dst}"
                )
        return path

    def establish(self, src: Coordinate, dst: Coordinate) -> RackCircuit:
        """Create a dedicated rack-wide circuit from ``src`` to ``dst``.

        Intra-server circuits ride waveguides only; inter-server circuits
        additionally allocate one fiber per server hop. Resources are
        exclusive, so every established circuit is congestion-free.

        Raises:
            CircuitError: when chips are unknown, identical, failed, or
                resources are exhausted.
        """
        if src == dst:
            raise CircuitError("a circuit needs two distinct chips")
        for chip in (src, dst):
            if chip not in self._chip_tile:
                raise CircuitError(f"{chip} is not a chip of this rack")
            if self.rack.is_failed(chip):
                raise CircuitError(f"{chip} has failed")
        src_server, src_tile = self._chip_tile[src]
        dst_server, dst_tile = self._chip_tile[dst]
        circuit_id = next(self._ids)
        token = ("rack-circuit", circuit_id)
        if src_server == dst_server:
            inner = self.wafers[src_server].establish(src_tile, dst_tile)
            circuit = RackCircuit(
                circuit_id=circuit_id,
                src=src,
                dst=dst,
                server_path=(src_server,),
                fiber_indices=(),
                endpoint_circuits=(inner,),
                setup_latency_s=inner.setup_latency_s,
            )
            self._circuits[circuit_id] = circuit
            return circuit
        path = self._server_path(src_server, dst_server)
        fibers: list[int] = []
        taken: list[FiberTrunk] = []
        endpoint_circuits: list[OpticalCircuit] = []
        try:
            for a, b in zip(path, path[1:]):
                trunk = self.trunk(a, b)
                fibers.append(trunk.allocate(token))
                taken.append(trunk)
            src_edge = self._edge_tile(src_server, src_tile)
            dst_edge = self._edge_tile(dst_server, dst_tile)
            endpoint_circuits.append(
                self.wafers[src_server].establish(src_tile, src_edge)
            )
            endpoint_circuits.append(
                self.wafers[dst_server].establish(dst_edge, dst_tile)
            )
        except (CircuitError, RuntimeError) as exc:
            for trunk in taken:
                trunk.release(token)
            for inner in endpoint_circuits:
                manager = self._manager_of_circuit(inner)
                manager.teardown(inner.circuit_id)
            raise CircuitError(str(exc)) from exc
        circuit = RackCircuit(
            circuit_id=circuit_id,
            src=src,
            dst=dst,
            server_path=tuple(path),
            fiber_indices=tuple(fibers),
            endpoint_circuits=tuple(endpoint_circuits),
            setup_latency_s=RECONFIG_LATENCY_S,
        )
        self._circuits[circuit_id] = circuit
        return circuit

    def _edge_tile(self, server: ServerId, avoid: TileCoord) -> TileCoord:
        """A tile (distinct from ``avoid``) acting as the fiber attach."""
        wafer = self.wafers[server].wafer
        for tile in sorted(wafer.tiles):
            if tile != avoid:
                return tile
        raise CircuitError(f"server {server} wafer has a single tile")

    def _manager_of_circuit(self, circuit: OpticalCircuit) -> CircuitManager:
        for manager in self.wafers.values():
            if any(c is circuit for c in manager.circuits):
                return manager
        raise KeyError("circuit not found in any wafer manager")

    def teardown(self, circuit_id: int) -> None:
        """Release every resource of a rack circuit.

        Raises:
            KeyError: for an unknown id.
        """
        circuit = self._circuits.pop(circuit_id)
        token = ("rack-circuit", circuit_id)
        for a, b in zip(circuit.server_path, circuit.server_path[1:]):
            self.trunk(a, b).release(token)
        for inner in circuit.endpoint_circuits:
            self._manager_of_circuit(inner).teardown(inner.circuit_id)

    @property
    def circuits(self) -> list[RackCircuit]:
        """Active rack circuits (copy)."""
        return list(self._circuits.values())

    def fibers_in_use(self) -> int:
        """Total fibers occupied across all trunks."""
        return sum(t.capacity - t.free for t in self._trunks.values())

    def is_congestion_free(self) -> bool:
        """Always true by construction — every circuit owns its resources.

        Provided so the benches can assert the property explicitly
        alongside the electrical baselines' congestion reports.
        """
        return True
