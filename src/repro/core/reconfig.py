"""Reconfiguration scheduling and amortization analysis.

Programming LIGHTPATH's MZI switches takes up to 3.7 us (paper Figure 3a).
That cost is the ``r`` term of Section 4.1's alpha-beta-r model, and the
paper names the resulting trade-off a key systems challenge: "new optical
resource allocation algorithms will be needed to arrive at the appropriate
trade-off between optical reconfiguration delay and end-to-end performance"
(Section 1). This module models how switch-programming operations batch
(parallel drive vs a serial JTAG-style chain, which is how the prototype is
programmed through an Arduino in Figure 3) and answers the amortization
question: for which buffer sizes does paying ``r`` win?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phy.constants import RECONFIG_LATENCY_S
from .tile import Direction, TileCoord

__all__ = [
    "SwitchProgram",
    "ReconfigurationPlan",
    "ReconfigurationScheduler",
    "breakeven_buffer_bytes",
]


@dataclass(frozen=True)
class SwitchProgram:
    """One MZI-switch programming operation.

    Attributes:
        tile: tile whose switch is programmed.
        facing: which of the tile's four switches.
        wavelength_index: comb channel being steered.
        towards: the new output direction.
    """

    tile: TileCoord
    facing: Direction
    wavelength_index: int
    towards: Direction


@dataclass
class ReconfigurationPlan:
    """A batch of switch programs applied together.

    Attributes:
        programs: the operations in the batch.
        parallel: whether drivers program every switch concurrently
            (production behaviour — the batch costs one settling time) or
            serially over a shared control chain (the lab prototype's
            JTAG path — the batch costs one settling time per operation).
        settle_s: per-operation thermo-optic settling time.
    """

    programs: list[SwitchProgram] = field(default_factory=list)
    parallel: bool = True
    settle_s: float = RECONFIG_LATENCY_S

    def add(self, program: SwitchProgram) -> None:
        """Append an operation to the batch."""
        self.programs.append(program)

    @property
    def operation_count(self) -> int:
        """Operations in the batch."""
        return len(self.programs)

    def latency_s(self) -> float:
        """Wall-clock time to apply the batch.

        Parallel drivers overlap every settle; the serial chain pays one
        settle per operation.
        """
        if not self.programs:
            return 0.0
        if self.parallel:
            return self.settle_s
        return self.operation_count * self.settle_s

    def tiles_touched(self) -> set[TileCoord]:
        """Tiles whose switches the batch reprograms."""
        return {p.tile for p in self.programs}


@dataclass
class ReconfigurationScheduler:
    """Accumulates reconfiguration batches and total time charged.

    A collective that re-steers bandwidth between stages submits one plan
    per stage; the scheduler tracks the running total so end-to-end
    experiments can report how much of their time went to ``r``.
    """

    parallel: bool = True
    settle_s: float = RECONFIG_LATENCY_S
    _applied: list[ReconfigurationPlan] = field(default_factory=list, repr=False)

    def new_plan(self) -> ReconfigurationPlan:
        """A fresh plan bound to this scheduler's drive mode."""
        return ReconfigurationPlan(parallel=self.parallel, settle_s=self.settle_s)

    def apply(self, plan: ReconfigurationPlan) -> float:
        """Apply ``plan`` and return its latency (also accumulated)."""
        self._applied.append(plan)
        return plan.latency_s()

    @property
    def total_latency_s(self) -> float:
        """Total reconfiguration time charged so far."""
        return sum(plan.latency_s() for plan in self._applied)

    @property
    def total_operations(self) -> int:
        """Total switch programs applied so far."""
        return sum(plan.operation_count for plan in self._applied)

    @property
    def batch_count(self) -> int:
        """Plans applied so far."""
        return len(self._applied)


def breakeven_buffer_bytes(
    speedup_beta_factor: float,
    chip_bandwidth_bytes: float,
    reconfig_s: float = RECONFIG_LATENCY_S,
) -> float:
    """Buffer size above which paying ``r`` wins.

    Reconfiguring saves ``speedup_beta_factor * N / B`` seconds of
    transmission but costs ``r``; the crossover is ``N* = r * B /
    speedup``. For Table 1's Slice-1 the speedup factor is
    ``2.625 - 0.875 = 1.75``, putting the breakeven in the kilobyte range —
    the paper's observation that beta dominates for "large buffer sizes of
    most modern ML models".

    Raises:
        ValueError: if the speedup factor is not positive (reconfiguring
            never pays off).
    """
    if speedup_beta_factor <= 0:
        raise ValueError("no transmission saving; reconfiguration cannot break even")
    if chip_bandwidth_bytes <= 0:
        raise ValueError("chip bandwidth must be positive")
    return reconfig_s * chip_bandwidth_bytes / speedup_beta_factor
