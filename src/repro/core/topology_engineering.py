"""Topology engineering: demand-driven circuit topologies (paper Section 6).

The related work the paper builds on "focuses on slow and infrequent
reconfiguration of the interconnect, called topology engineering": given a
traffic matrix between accelerators, choose which chip pairs get direct
optical circuits — and how many wavelengths each — so the heavy flows ride
single hops while the fabric's degree limit (SerDes lanes per chip) is
respected.

The engineering pass is the classic greedy repeated-matching heuristic:
sort demands, admit the largest demand whose endpoints still have free
port capacity, one wavelength per admission, until ports or demands run
out. The evaluator then scores the engineered topology against a static
uniform mesh on achieved throughput and average hop count, with leftover
traffic routed over the engineered circuits' shortest paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

from ..phy.constants import SERDES_LANES_PER_CHIP, WAVELENGTH_RATE_BYTES

__all__ = [
    "TrafficMatrix",
    "EngineeredTopology",
    "engineer_topology",
    "uniform_mesh",
    "evaluate_topology",
    "TopologyScore",
    "skewed_traffic",
]


@dataclass
class TrafficMatrix:
    """Demand between accelerator pairs, bytes per second.

    Attributes:
        nodes: participating accelerators.
        demand: directed demands; absent pairs are zero.
    """

    nodes: list
    demand: dict[tuple, float]

    def __post_init__(self) -> None:
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("nodes must be distinct")
        node_set = set(self.nodes)
        for (src, dst), volume in self.demand.items():
            if src not in node_set or dst not in node_set:
                raise ValueError(f"demand endpoint {src}->{dst} unknown")
            if src == dst:
                raise ValueError("self-demand is meaningless")
            if volume < 0:
                raise ValueError("demand cannot be negative")

    def total_bytes_per_s(self) -> float:
        """Aggregate offered load."""
        return sum(self.demand.values())

    def sorted_demands(self) -> list[tuple[tuple, float]]:
        """Demands sorted heaviest-first (deterministic tie-break)."""
        return sorted(
            self.demand.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )


@dataclass
class EngineeredTopology:
    """A circuit topology: wavelengths assigned to directed pairs.

    Attributes:
        nodes: participating accelerators.
        circuits: wavelengths per directed pair (each carries one
            wavelength's bandwidth).
        ports_per_node: the degree limit used during engineering.
    """

    nodes: list
    circuits: dict[tuple, int]
    ports_per_node: int

    def capacity_bytes(self, src, dst) -> float:
        """Direct capacity between ``src`` and ``dst``."""
        return self.circuits.get((src, dst), 0) * WAVELENGTH_RATE_BYTES

    def egress_used(self, node) -> int:
        """Wavelengths ``node`` sources."""
        return sum(n for (s, _d), n in self.circuits.items() if s == node)

    def ingress_used(self, node) -> int:
        """Wavelengths ``node`` terminates."""
        return sum(n for (_s, d), n in self.circuits.items() if d == node)

    def graph(self) -> "nx.DiGraph":
        """The topology as a weighted digraph (capacity attribute)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for (src, dst), count in self.circuits.items():
            if count > 0:
                graph.add_edge(
                    src, dst, capacity=count * WAVELENGTH_RATE_BYTES
                )
        return graph


def engineer_topology(
    matrix: TrafficMatrix,
    ports_per_node: int = SERDES_LANES_PER_CHIP,
) -> EngineeredTopology:
    """Greedy repeated-matching topology engineering.

    Repeatedly admit the heaviest unsatisfied demand whose endpoints have
    free ports, one wavelength per admission (a demand larger than one
    wavelength re-enters the queue with its residual), until nothing can
    be admitted.

    Raises:
        ValueError: on a non-positive port budget.
    """
    if ports_per_node < 1:
        raise ValueError("need at least one port per node")
    residual = dict(matrix.sorted_demands())
    egress = {node: 0 for node in matrix.nodes}
    ingress = {node: 0 for node in matrix.nodes}
    circuits: dict[tuple, int] = {}
    progress = True
    while progress:
        progress = False
        for (src, dst), volume in sorted(
            residual.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            if volume <= 0:
                continue
            if egress[src] >= ports_per_node or ingress[dst] >= ports_per_node:
                continue
            circuits[(src, dst)] = circuits.get((src, dst), 0) + 1
            egress[src] += 1
            ingress[dst] += 1
            residual[(src, dst)] = max(0.0, volume - WAVELENGTH_RATE_BYTES)
            progress = True
            break
    return EngineeredTopology(
        nodes=list(matrix.nodes),
        circuits=circuits,
        ports_per_node=ports_per_node,
    )


def uniform_mesh(
    nodes: list, ports_per_node: int = SERDES_LANES_PER_CHIP
) -> EngineeredTopology:
    """The static baseline: ports spread evenly over all peers.

    With ``p`` nodes and ``k`` ports, each directed pair gets
    ``k // (p - 1)`` wavelengths (round-robin for the remainder).
    """
    if len(nodes) < 2:
        raise ValueError("a mesh needs at least two nodes")
    peers = len(nodes) - 1
    base, extra = divmod(ports_per_node, peers)
    circuits: dict[tuple, int] = {}
    for src in nodes:
        others = [n for n in nodes if n != src]
        for rank, dst in enumerate(others):
            count = base + (1 if rank < extra else 0)
            if count > 0:
                circuits[(src, dst)] = count
    return EngineeredTopology(
        nodes=list(nodes), circuits=circuits, ports_per_node=ports_per_node
    )


@dataclass(frozen=True)
class TopologyScore:
    """Evaluation of one topology against a traffic matrix.

    Attributes:
        direct_fraction: offered load served on single-hop circuits
            (capped by circuit capacity).
        mean_hops: demand-weighted mean path length (unreachable demands
            count as infinite and make this inf).
        served_bytes_per_s: load served within direct-circuit capacity.
    """

    direct_fraction: float
    mean_hops: float
    served_bytes_per_s: float


def evaluate_topology(
    topology: EngineeredTopology, matrix: TrafficMatrix
) -> TopologyScore:
    """Score ``topology`` on ``matrix``.

    Direct service = min(demand, direct capacity) per pair; remaining
    demand routes over shortest paths in the circuit graph (hop count
    only — multi-hop forwarding spends intermediate chips' bandwidth, so
    fewer hops is strictly better, which is what topology engineering
    optimizes).
    """
    graph = topology.graph()
    total = matrix.total_bytes_per_s()
    if total == 0:
        return TopologyScore(
            direct_fraction=1.0, mean_hops=0.0, served_bytes_per_s=0.0
        )
    direct = 0.0
    weighted_hops = 0.0
    for (src, dst), volume in matrix.demand.items():
        capacity = topology.capacity_bytes(src, dst)
        direct += min(volume, capacity)
        try:
            hops = nx.shortest_path_length(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            hops = float("inf")
        weighted_hops += volume * hops
    return TopologyScore(
        direct_fraction=direct / total,
        mean_hops=weighted_hops / total,
        served_bytes_per_s=direct,
    )


def skewed_traffic(
    nodes: list,
    heavy_pairs: int,
    heavy_bytes: float,
    light_bytes: float = 0.0,
) -> TrafficMatrix:
    """A skewed matrix: a few elephant pairs over a mouse-level baseline.

    The workload class where topology engineering shines (and where a
    uniform mesh wastes its ports on idle peers).
    """
    if heavy_pairs < 0:
        raise ValueError("heavy_pairs cannot be negative")
    pairs = [
        (a, b) for a, b in itertools.permutations(nodes, 2)
    ]
    if heavy_pairs > len(pairs):
        raise ValueError("more heavy pairs than node pairs")
    demand: dict[tuple, float] = {}
    if light_bytes > 0:
        for pair in pairs:
            demand[pair] = light_bytes
    # Spread the elephants across distinct sources (an offset-permutation
    # pattern, as in pipeline-parallel stage-to-stage traffic).
    n = len(nodes)
    placed = 0
    offset = max(1, n // 2)
    k = 0
    while placed < heavy_pairs:
        src = nodes[k % n]
        dst = nodes[(k + offset + k // n) % n]
        k += 1
        if src == dst or demand.get((src, dst), 0.0) >= heavy_bytes:
            continue
        demand[(src, dst)] = heavy_bytes
        placed += 1
    return TrafficMatrix(nodes=list(nodes), demand=demand)
