"""The LIGHTPATH wafer: a grid of tiles joined by bus waveguides.

A wafer interconnects up to 32 accelerator chips, one stacked per tile
(paper Section 3, Figure 2c). Waveguides form the edges of the tile grid;
each tile boundary carries thousands of parallel bus waveguides (>10,000
per tile at the 3 um pitch, Figure 4), tracked here as per-boundary
capacity pools. Edge tiles additionally expose fiber ports for cascading
wafers into rack-scale fabrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..phy.constants import (
    FIBERS_PER_EDGE_TILE,
    LASERS_PER_TILE,
    RECONFIG_LATENCY_S,
    TILES_PER_WAFER,
    WAFER_EDGE_M,
    WAFER_GRID,
    WAVEGUIDES_PER_TILE,
    WAVELENGTH_RATE_BPS,
)
from .tile import Direction, LightpathTile, TileCoord

__all__ = ["WaveguideBus", "FiberPort", "LightpathWafer", "WaferCapabilities"]


@dataclass
class WaveguideBus:
    """The bundle of parallel waveguides crossing one tile boundary.

    Directed: the bus from tile A to tile B is distinct from B to A.

    Attributes:
        src: tile the bus leaves.
        dst: tile the bus enters.
        capacity: parallel waveguides available.
    """

    src: TileCoord
    dst: TileCoord
    capacity: int = WAVEGUIDES_PER_TILE
    _allocated: dict[int, object] = field(default_factory=dict, repr=False)

    @property
    def free(self) -> int:
        """Waveguides not carrying a circuit."""
        return self.capacity - len(self._allocated)

    def allocate(self, owner: object) -> int:
        """Reserve one waveguide for ``owner``; returns its track index.

        Raises:
            RuntimeError: if the bus is full.
        """
        if self.free <= 0:
            raise RuntimeError(
                f"waveguide bus {self.src}->{self.dst} exhausted "
                f"({self.capacity} tracks)"
            )
        for track in range(self.capacity):
            if track not in self._allocated:
                self._allocated[track] = owner
                return track
        raise RuntimeError("inconsistent bus allocation state")

    def release(self, owner: object) -> int:
        """Free every track held by ``owner``; returns tracks freed."""
        mine = [t for t, o in self._allocated.items() if o == owner]
        for t in mine:
            del self._allocated[t]
        return len(mine)

    def owner_of(self, track: int) -> object | None:
        """Owner of ``track``, or None when free."""
        return self._allocated.get(track)


@dataclass
class FiberPort:
    """One attached fiber at a wafer-edge tile.

    Attributes:
        tile: the edge tile the fiber attaches to.
        direction: the outward-facing direction.
        index: fiber index within the tile edge's bundle.
        connected_to: remote (wafer, tile, direction, index) when patched.
    """

    tile: TileCoord
    direction: Direction
    index: int
    connected_to: tuple | None = None
    _owner: object | None = None

    @property
    def in_use(self) -> bool:
        """Whether a circuit currently occupies the fiber."""
        return self._owner is not None

    def allocate(self, owner: object) -> None:
        """Reserve the fiber for ``owner``.

        Raises:
            RuntimeError: if already in use.
        """
        if self._owner is not None:
            raise RuntimeError(f"fiber {self.tile}/{self.direction.value}#{self.index} busy")
        self._owner = owner

    def release(self) -> None:
        """Free the fiber."""
        self._owner = None


@dataclass(frozen=True)
class WaferCapabilities:
    """The Section 3 capability summary of one wafer.

    Attributes mirror the scalars the paper reports.
    """

    tiles: int
    max_accelerators: int
    lasers_per_tile: int
    wavelength_rate_bps: float
    waveguides_per_tile: int
    reconfiguration_latency_s: float
    fibers_per_edge_tile: int

    def rows(self) -> list[tuple[str, str]]:
        """(name, value) rows for the capability report bench."""
        return [
            ("tiles per wafer", str(self.tiles)),
            ("max accelerators", str(self.max_accelerators)),
            ("lasers per tile", str(self.lasers_per_tile)),
            ("per-wavelength rate", f"{self.wavelength_rate_bps / 1e9:.0f} Gbps"),
            ("waveguides per tile", f">{self.waveguides_per_tile:,}"),
            (
                "switch reconfiguration",
                f"{self.reconfiguration_latency_s * 1e6:.1f} us",
            ),
            ("fibers per edge tile", str(self.fibers_per_edge_tile)),
        ]


class LightpathWafer:
    """A LIGHTPATH wafer: tiles, waveguide buses, and edge fiber ports.

    Attributes:
        grid: (rows, cols) of the tile grid — (4, 8) for the 32-tile wafer.
        tiles: tile objects keyed by coordinate.
        name: label used in multi-wafer fabrics.
    """

    def __init__(
        self,
        grid: tuple[int, int] = WAFER_GRID,
        bus_capacity: int = WAVEGUIDES_PER_TILE,
        fibers_per_edge: int = FIBERS_PER_EDGE_TILE,
        name: str = "wafer0",
    ):
        rows, cols = grid
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid wafer grid {grid}")
        self.grid = grid
        self.name = name
        self.tiles: dict[TileCoord, LightpathTile] = {
            (r, c): LightpathTile(coord=(r, c))
            for r, c in itertools.product(range(rows), range(cols))
        }
        self._buses: dict[tuple[TileCoord, TileCoord], WaveguideBus] = {}
        for (r, c), tile in self.tiles.items():
            for direction in Direction:
                dr, dc = direction.delta
                neighbor = (r + dr, c + dc)
                if neighbor in self.tiles:
                    self._buses[((r, c), neighbor)] = WaveguideBus(
                        src=(r, c), dst=neighbor, capacity=bus_capacity
                    )
        self._fiber_ports: dict[tuple[TileCoord, Direction], list[FiberPort]] = {}
        for (r, c) in self.tiles:
            for direction in Direction:
                dr, dc = direction.delta
                if (r + dr, c + dc) not in self.tiles:
                    self._fiber_ports[((r, c), direction)] = [
                        FiberPort(tile=(r, c), direction=direction, index=i)
                        for i in range(fibers_per_edge)
                    ]

    # -- structure ---------------------------------------------------------------

    @property
    def tile_count(self) -> int:
        """Tiles on the wafer."""
        return len(self.tiles)

    def tile(self, coord: TileCoord) -> LightpathTile:
        """The tile at ``coord``.

        Raises:
            KeyError: for a coordinate outside the grid.
        """
        if coord not in self.tiles:
            raise KeyError(f"{coord} outside wafer grid {self.grid}")
        return self.tiles[coord]

    def bus(self, src: TileCoord, dst: TileCoord) -> WaveguideBus:
        """The directed waveguide bus from ``src`` to ``dst``.

        Raises:
            KeyError: if the tiles are not grid-adjacent.
        """
        key = (src, dst)
        if key not in self._buses:
            raise KeyError(f"no waveguide bus {src} -> {dst}")
        return self._buses[key]

    def buses(self) -> list[WaveguideBus]:
        """All directed buses on the wafer."""
        return list(self._buses.values())

    def neighbors(self, coord: TileCoord) -> list[TileCoord]:
        """Grid-adjacent tiles of ``coord``."""
        self.tile(coord)
        result = []
        for direction in Direction:
            dr, dc = direction.delta
            candidate = (coord[0] + dr, coord[1] + dc)
            if candidate in self.tiles:
                result.append(candidate)
        return result

    def direction_between(self, src: TileCoord, dst: TileCoord) -> Direction:
        """The direction from ``src`` to its neighbour ``dst``.

        Raises:
            ValueError: if the tiles are not adjacent.
        """
        delta = (dst[0] - src[0], dst[1] - src[1])
        for direction in Direction:
            if direction.delta == delta:
                return direction
        raise ValueError(f"{src} and {dst} are not adjacent tiles")

    # -- fibers -------------------------------------------------------------------

    def fiber_ports(self, tile: TileCoord, direction: Direction) -> list[FiberPort]:
        """Fiber ports on ``tile``'s ``direction`` edge (empty if interior)."""
        return self._fiber_ports.get((tile, direction), [])

    def edge_tiles(self) -> list[TileCoord]:
        """Tiles with at least one fiber-bearing edge."""
        return sorted({tile for (tile, _d) in self._fiber_ports})

    def free_fiber_port(
        self, tile: TileCoord, direction: Direction
    ) -> FiberPort | None:
        """First unused fiber on the given edge, or None."""
        for port in self.fiber_ports(tile, direction):
            if not port.in_use:
                return port
        return None

    # -- accelerators -------------------------------------------------------------

    def stack_accelerator(self, coord: TileCoord, accelerator: object) -> None:
        """Stack ``accelerator`` onto the tile at ``coord``.

        Raises:
            RuntimeError: if the tile already hosts a chip.
        """
        tile = self.tile(coord)
        if tile.accelerator is not None:
            raise RuntimeError(f"tile {coord} already hosts {tile.accelerator!r}")
        tile.accelerator = accelerator

    def accelerator_tile(self, accelerator: object) -> LightpathTile:
        """The tile hosting ``accelerator``.

        Raises:
            KeyError: if the accelerator is not stacked on this wafer.
        """
        for tile in self.tiles.values():
            if tile.accelerator == accelerator:
                return tile
        raise KeyError(f"{accelerator!r} is not stacked on wafer {self.name}")

    # -- capability report -----------------------------------------------------------

    def capabilities(self) -> WaferCapabilities:
        """Summary of the wafer's Section 3 capabilities."""
        any_bus = next(iter(self._buses.values()), None)
        fibers = next(iter(self._fiber_ports.values()), [])
        return WaferCapabilities(
            tiles=self.tile_count,
            max_accelerators=self.tile_count,
            lasers_per_tile=LASERS_PER_TILE,
            wavelength_rate_bps=WAVELENGTH_RATE_BPS,
            waveguides_per_tile=any_bus.capacity if any_bus else 0,
            reconfiguration_latency_s=RECONFIG_LATENCY_S,
            fibers_per_edge_tile=len(fibers),
        )

    def matches_paper(self) -> bool:
        """Whether this wafer instance matches the paper's prototype."""
        caps = self.capabilities()
        return (
            caps.tiles == TILES_PER_WAFER
            and caps.lasers_per_tile == LASERS_PER_TILE
            and caps.waveguides_per_tile >= WAVEGUIDES_PER_TILE
        )

    def tile_edge_m(self) -> float:
        """Physical edge length of one tile, meters."""
        return WAFER_EDGE_M / max(self.grid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LightpathWafer(name={self.name!r}, grid={self.grid})"
