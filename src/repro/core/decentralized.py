"""Decentralized optical circuit allocation (paper Section 5).

Traffic outside known collectives — the paper's example is Mixture-of-
Experts inference, whose runtime gating function decides destinations on
the fly — needs circuits programmed dynamically. "A naive solution would
rely on a centralized controller tracking the state of every waveguide...
this approach does not scale well when dealing with hundreds of
accelerators, highlighting the need for decentralized algorithms."

This module implements both contenders so the ablation bench can show the
crossover:

* :class:`CentralizedController` — a serializing controller with perfect
  global state: every request succeeds first try, but requests queue and
  setup latency grows linearly with offered load.
* :class:`DecentralizedAllocator` — each source tile claims waveguide
  tracks locally at random and retries on conflict with exponential
  backoff: constant expected latency at low conflict rates, no global
  state, at the cost of occasional retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phy.constants import RECONFIG_LATENCY_S
from .routing import WaferRouter, WaveguideRoute
from .tile import TileCoord
from .wafer import LightpathWafer

__all__ = [
    "CircuitRequest",
    "AllocationOutcome",
    "CentralizedController",
    "DecentralizedAllocator",
]


@dataclass(frozen=True)
class CircuitRequest:
    """A dynamic circuit request (e.g. one MoE token dispatch).

    Attributes:
        src: source tile.
        dst: destination tile.
    """

    src: TileCoord
    dst: TileCoord


@dataclass(frozen=True)
class AllocationOutcome:
    """Result of allocating one request.

    Attributes:
        request: the request served.
        success: whether a circuit was established.
        setup_latency_s: time from request arrival to circuit ready.
        attempts: allocation rounds used (1 = no conflicts).
    """

    request: CircuitRequest
    success: bool
    setup_latency_s: float
    attempts: int


@dataclass
class CentralizedController:
    """Serializing controller with global waveguide state.

    Attributes:
        wafer: the wafer whose circuits it manages.
        service_time_s: time to process one request (state lookup +
            computing a route + issuing switch programs).
        reconfig_s: switch settling time charged per circuit.
    """

    wafer: LightpathWafer
    service_time_s: float = 2e-6
    reconfig_s: float = RECONFIG_LATENCY_S

    def allocate_batch(self, requests: list[CircuitRequest]) -> list[AllocationOutcome]:
        """Serve ``requests`` arriving simultaneously.

        The controller serves them one at a time; request ``k`` waits for
        ``k`` service times before its switches even start programming —
        the scaling bottleneck the paper calls out.
        """
        router = WaferRouter(self.wafer)
        outcomes = []
        queue_delay = 0.0
        for request in requests:
            queue_delay += self.service_time_s
            try:
                route = router.route(request.src, request.dst)
                router.allocate(route, owner=("central", id(request)))
                success = True
            except Exception:
                success = False
            outcomes.append(
                AllocationOutcome(
                    request=request,
                    success=success,
                    setup_latency_s=queue_delay + (self.reconfig_s if success else 0.0),
                    attempts=1,
                )
            )
        return outcomes


@dataclass
class DecentralizedAllocator:
    """Random-track claiming with exponential backoff.

    Each source computes its own dimension-ordered route and, per round,
    picks a random track on every boundary. If any (boundary, track) pick
    collides with another request's pick or an existing allocation, the
    losing requests back off and retry. No global state is consulted.

    Attributes:
        wafer: the wafer being allocated.
        max_rounds: give up after this many rounds.
        round_time_s: time per round (claim exchange + switch settle).
    """

    wafer: LightpathWafer
    max_rounds: int = 16
    round_time_s: float = RECONFIG_LATENCY_S
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def allocate_batch(self, requests: list[CircuitRequest]) -> list[AllocationOutcome]:
        """Serve ``requests`` arriving simultaneously.

        Rounds proceed in lockstep; all requests that survive a round
        finish together, so latency is ``rounds * round_time_s``
        regardless of batch size — the scalability the paper asks for.
        """
        router = WaferRouter(self.wafer)
        routes: list[WaveguideRoute] = [
            router.dimension_order_route(r.src, r.dst) for r in requests
        ]
        taken: set[tuple[TileCoord, TileCoord, int]] = set()
        for bus in self.wafer.buses():
            for track in range(bus.capacity):
                if bus.owner_of(track) is not None:
                    taken.add((bus.src, bus.dst, track))
        # Track requests by index: callers may legitimately submit
        # duplicate (src, dst) requests, which compare equal.
        pending = list(range(len(requests)))
        attempts = [0] * len(requests)
        done: dict[int, AllocationOutcome] = {}
        for round_index in range(1, self.max_rounds + 1):
            if not pending:
                break
            claims: dict[tuple[TileCoord, TileCoord, int], list[int]] = {}
            proposal: dict[int, list[tuple[TileCoord, TileCoord, int]]] = {}
            for index in pending:
                attempts[index] += 1
                picks = []
                for a, b in routes[index].boundaries():
                    capacity = self.wafer.bus(a, b).capacity
                    track = int(self.rng.integers(0, capacity))
                    picks.append((a, b, track))
                    claims.setdefault((a, b, track), []).append(index)
                proposal[index] = picks
            for index in pending:
                picks = proposal[index]
                conflict = any(
                    len(claims[pick]) > 1 or pick in taken for pick in picks
                )
                if conflict:
                    continue
                taken.update(picks)
                done[index] = AllocationOutcome(
                    request=requests[index],
                    success=True,
                    setup_latency_s=round_index * self.round_time_s,
                    attempts=attempts[index],
                )
            pending = [i for i in pending if i not in done]
        for index in pending:
            done[index] = AllocationOutcome(
                request=requests[index],
                success=False,
                setup_latency_s=self.max_rounds * self.round_time_s,
                attempts=attempts[index],
            )
        return [done[i] for i in range(len(requests))]


def mean_setup_latency(outcomes: list[AllocationOutcome]) -> float:
    """Mean setup latency over successful outcomes (inf if none)."""
    successes = [o.setup_latency_s for o in outcomes if o.success]
    if not successes:
        return float("inf")
    return sum(successes) / len(successes)


def success_rate(outcomes: list[AllocationOutcome]) -> float:
    """Fraction of requests that got a circuit."""
    if not outcomes:
        return 1.0
    return sum(1 for o in outcomes if o.success) / len(outcomes)
