"""On-demand chip-to-chip optical circuits (paper Section 3).

A circuit is the unit of LIGHTPATH connectivity: one wavelength from the
source tile's laser bank, one SerDes lane at each endpoint, one waveguide
track on every boundary of its route, and the MZI switch programming that
steers the wavelength along the route. Establishing a circuit charges the
3.7 us reconfiguration latency; by construction circuits never share
waveguides, so they are contention-free end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..phy.constants import RECONFIG_LATENCY_S, WAVELENGTH_RATE_BYTES
from ..phy.link_budget import LinkBudget, LinkReport
from ..phy.serdes import SerdesExhausted
from ..phy.waveguide import PathLoss, waveguide
from .routing import RouteExhausted, WaferRouter, WaveguideRoute
from .tile import TileCoord
from .wafer import LightpathWafer

__all__ = ["OpticalCircuit", "CircuitError", "CircuitManager"]


class CircuitError(RuntimeError):
    """Raised when a circuit cannot be established."""


@dataclass(frozen=True)
class OpticalCircuit:
    """An established end-to-end optical circuit.

    Attributes:
        circuit_id: unique identity within its manager.
        src: source tile coordinate.
        dst: destination tile coordinate.
        wavelength_index: laser channel carrying the circuit.
        route: the waveguide route across the wafer.
        rate_bytes: data rate of the circuit, bytes per second.
        setup_latency_s: reconfiguration time charged at establishment.
        link_report: physical-layer feasibility evaluation.
    """

    circuit_id: int
    src: TileCoord
    dst: TileCoord
    wavelength_index: int
    route: WaveguideRoute
    rate_bytes: float
    setup_latency_s: float
    link_report: LinkReport


@dataclass
class CircuitManager:
    """Establishes and tears down circuits on one wafer.

    Attributes:
        wafer: the wafer being managed.
        router: waveguide router (defaults to one over ``wafer``).
        budget: link-budget evaluator used as the admission check.
        enforce_budget: refuse circuits whose link budget does not close.
    """

    wafer: LightpathWafer
    router: WaferRouter = None  # type: ignore[assignment]
    budget: LinkBudget = field(default_factory=LinkBudget)
    enforce_budget: bool = True
    _circuits: dict[int, OpticalCircuit] = field(default_factory=dict, repr=False)
    _ids: itertools.count = field(default_factory=itertools.count, repr=False)

    def __post_init__(self) -> None:
        if self.router is None:
            self.router = WaferRouter(self.wafer)

    # -- establishment ---------------------------------------------------------------

    def _path_loss(self, route: WaveguideRoute) -> PathLoss:
        length = route.boundary_crossings * self.wafer.tile_edge_m()
        return PathLoss(
            segments=[waveguide(length, crossings=route.boundary_crossings)],
            mzi_hops=route.mzi_hops,
        )

    def establish(self, src: TileCoord, dst: TileCoord) -> OpticalCircuit:
        """Create a circuit from ``src`` to ``dst``.

        Allocates a wavelength and SerDes lane at the source, a SerDes lane
        at the destination, waveguide tracks along the route, evaluates the
        link budget, and charges the MZI reconfiguration latency.

        Raises:
            CircuitError: when any resource is exhausted, the endpoints
                are failed tiles, or the link budget does not close.
        """
        if src == dst:
            raise CircuitError("a circuit needs two distinct tiles")
        src_tile = self.wafer.tile(src)
        dst_tile = self.wafer.tile(dst)
        if not src_tile.working or not dst_tile.working:
            raise CircuitError(f"endpoint tile failed: {src} or {dst}")
        free = src_tile.free_wavelengths()
        if not free:
            raise CircuitError(f"tile {src} has no free wavelength")
        circuit_id = next(self._ids)
        try:
            route = self.router.route(src, dst)
        except RouteExhausted as exc:
            raise CircuitError(str(exc)) from exc
        report = self.budget.evaluate(
            self._path_loss(route),
            carrier_hz=src_tile.lasers.channel(free[0]).frequency_hz,
        )
        if self.enforce_budget and not report.feasible:
            raise CircuitError(
                f"link budget does not close: margin {report.margin_db:.2f} dB "
                f"over {route.boundary_crossings} crossings"
            )
        wavelength = free[0]
        token = ("circuit", circuit_id)
        try:
            src_lane = src_tile.serdes.lanes[wavelength]
            if not src_lane.is_free:
                raise CircuitError(f"source lane {wavelength} busy on {src}")
            src_lane.bound_to = token
            dst_tile.serdes.allocate(token)
        except SerdesExhausted as exc:
            src_tile.serdes.release(token)
            raise CircuitError(str(exc)) from exc
        try:
            self.router.allocate(route, token)
        except RouteExhausted as exc:
            src_tile.serdes.release(token)
            dst_tile.serdes.release(token)
            raise CircuitError(str(exc)) from exc
        circuit = OpticalCircuit(
            circuit_id=circuit_id,
            src=src,
            dst=dst,
            wavelength_index=wavelength,
            route=route,
            rate_bytes=WAVELENGTH_RATE_BYTES,
            setup_latency_s=RECONFIG_LATENCY_S,
            link_report=report,
        )
        self._circuits[circuit_id] = circuit
        return circuit

    def establish_many(
        self, pairs: list[tuple[TileCoord, TileCoord]]
    ) -> list[OpticalCircuit]:
        """Establish several circuits atomically.

        Either all circuits come up, or none do.

        Raises:
            CircuitError: on the first failure (after rollback).
        """
        created: list[OpticalCircuit] = []
        try:
            for src, dst in pairs:
                created.append(self.establish(src, dst))
        except CircuitError:
            for circuit in created:
                self.teardown(circuit.circuit_id)
            raise
        return created

    # -- teardown & queries ------------------------------------------------------------

    def teardown(self, circuit_id: int) -> None:
        """Release every resource of the circuit.

        Raises:
            KeyError: for an unknown circuit id.
        """
        circuit = self._circuits.pop(circuit_id)
        token = ("circuit", circuit_id)
        self.wafer.tile(circuit.src).serdes.release(token)
        self.wafer.tile(circuit.dst).serdes.release(token)
        self.router.release(circuit.route, token)

    def teardown_all(self) -> int:
        """Tear down every circuit; returns how many were removed."""
        ids = list(self._circuits)
        for circuit_id in ids:
            self.teardown(circuit_id)
        return len(ids)

    @property
    def circuits(self) -> list[OpticalCircuit]:
        """Active circuits (copy)."""
        return list(self._circuits.values())

    def circuits_between(
        self, src: TileCoord, dst: TileCoord
    ) -> list[OpticalCircuit]:
        """Active circuits from ``src`` to ``dst``."""
        return [c for c in self._circuits.values() if c.src == src and c.dst == dst]

    def bandwidth_between(self, src: TileCoord, dst: TileCoord) -> float:
        """Aggregate circuit bandwidth from ``src`` to ``dst``, bytes/s.

        This is the quantity bandwidth steering grows by stacking extra
        wavelengths between a pair of accelerators (Section 4.1).
        """
        return sum(c.rate_bytes for c in self.circuits_between(src, dst))

    def total_loss_budget_ok(self) -> bool:
        """Whether every active circuit still closes its link budget."""
        return all(c.link_report.feasible for c in self._circuits.values())

    def worst_margin_db(self) -> float:
        """Smallest link margin across active circuits (inf when none)."""
        return min(
            (c.link_report.margin_db for c in self._circuits.values()),
            default=float("inf"),
        )
