"""A rack-level fabric controller: the software face of LIGHTPATH.

Ties the pieces of this library into the control loop a deployment would
actually run (the "new host networking software stacks" of Section 1):

1. admit tenants (slice allocation),
2. plan and apply bandwidth steering per tenant (Section 4.1),
3. build the collective schedule the steering enables and predict its
   cost,
4. react to chip failures with optical repair (Section 4.2),
5. report fabric state (steering, circuits, spares, repairs).

The controller is deliberately a thin orchestration layer — every policy
decision delegates to the module that owns it — so it doubles as a usage
map of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..collectives.cost_model import CostParameters
from ..collectives.primitives import (
    Interconnect,
    build_reduce_scatter_schedule,
    reduce_scatter_cost,
)
from ..collectives.schedule import CollectiveSchedule
from ..topology.slices import Slice, SliceAllocator
from ..topology.torus import Coordinate
from ..topology.tpu import TpuRack
from .fabric import LightpathRackFabric
from .repair import RepairError, RepairPlan, plan_optical_repair
from .steering import SteeringPlan, plan_steering

__all__ = ["TenantState", "FabricController"]


@dataclass
class TenantState:
    """Controller-side state of one tenant.

    Attributes:
        slc: the tenant's slice.
        steering: the steering plan currently applied.
        repairs: repairs performed for this tenant, in order.
    """

    slc: Slice
    steering: SteeringPlan
    repairs: list[RepairPlan] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """Whether the tenant has never needed a repair."""
        return not self.repairs


class FabricController:
    """Orchestrates slices, steering and repair on one rack.

    Attributes:
        rack: the TPU rack under control.
        fabric: the rack's LIGHTPATH fabric.
        allocator: slice allocator for tenant admission.
        params: cost parameters used for predictions.
    """

    def __init__(self, rack: TpuRack | None = None, params: CostParameters | None = None):
        self.rack = rack or TpuRack(0)
        self.fabric = LightpathRackFabric(self.rack)
        self.allocator = SliceAllocator(self.rack.torus)
        self.params = params or CostParameters()
        self._tenants: dict[str, TenantState] = {}

    # -- admission -------------------------------------------------------------------

    def admit(
        self, name: str, shape: tuple[int, ...], offset: Coordinate
    ) -> TenantState:
        """Admit a tenant: allocate the slice and apply steering.

        Raises:
            repro.topology.slices.AllocationError: if the region is taken.
            ValueError: on a duplicate tenant name.
        """
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already admitted")
        slc = self.allocator.allocate(name, shape, offset)
        steering = plan_steering(slc, Interconnect.OPTICAL)
        state = TenantState(slc=slc, steering=steering)
        self._tenants[name] = state
        return state

    def evict(self, name: str) -> None:
        """Remove a tenant and free its chips.

        Raises:
            KeyError: for an unknown tenant.
        """
        del self._tenants[name]
        self.allocator.release(name)

    def tenant(self, name: str) -> TenantState:
        """The state of tenant ``name``.

        Raises:
            KeyError: for an unknown tenant.
        """
        return self._tenants[name]

    @property
    def tenants(self) -> list[str]:
        """Admitted tenant names, sorted."""
        return sorted(self._tenants)

    # -- collectives ------------------------------------------------------------------

    def predict_reduce_scatter_s(self, name: str, n_bytes: float) -> float:
        """Predicted steered REDUCESCATTER time for the tenant's slice."""
        state = self.tenant(name)
        cost = reduce_scatter_cost(state.slc, Interconnect.OPTICAL)
        return cost.seconds(n_bytes, self.params)

    def build_schedule(self, name: str, n_bytes: float) -> CollectiveSchedule:
        """The steered REDUCESCATTER schedule for the tenant."""
        state = self.tenant(name)
        return build_reduce_scatter_schedule(
            state.slc, n_bytes, Interconnect.OPTICAL
        )

    def steering_speedup(self, name: str) -> float:
        """Predicted beta speedup of steering over static links."""
        state = self.tenant(name)
        electrical = reduce_scatter_cost(state.slc, Interconnect.ELECTRICAL)
        optical = reduce_scatter_cost(state.slc, Interconnect.OPTICAL)
        if optical.beta_factor == 0:
            return 1.0
        return electrical.beta_factor / optical.beta_factor

    # -- failures ---------------------------------------------------------------------

    def handle_failure(self, chip: Coordinate) -> RepairPlan | None:
        """React to a chip failure.

        A failure on a free chip just marks it failed (nothing to repair);
        a failure inside a tenant triggers optical repair.

        Returns:
            The repair plan, or ``None`` when no tenant was affected.

        Raises:
            RepairError: when the affected tenant cannot be repaired (no
                spare chips left).
        """
        owner = self.allocator.slice_of(chip)
        if owner is None:
            self.rack.fail_chip(chip)
            return None
        state = self._tenants[owner.name]
        plan = plan_optical_repair(self.fabric, self.allocator, state.slc, chip)
        state.repairs.append(plan)
        # The replacement chip now belongs to the tenant's job: reserve it
        # so later repairs and admissions cannot take it.
        self.allocator.allocate(
            f"{owner.name}/spare-{len(state.repairs)}",
            tuple(1 for _ in self.rack.shape),
            plan.replacement,
        )
        return plan

    def spare_chips(self) -> list[Coordinate]:
        """Free, working chips available as repair spares."""
        return [
            chip
            for chip in self.allocator.free_chips()
            if not self.rack.is_failed(chip)
        ]

    # -- reporting --------------------------------------------------------------------

    def status(self) -> dict[str, object]:
        """A snapshot of the fabric suitable for logging/inspection."""
        return {
            "tenants": {
                name: {
                    "shape": state.slc.shape,
                    "chips": state.slc.chip_count,
                    "steered_dims": list(state.steering.target_dims),
                    "repairs": len(state.repairs),
                }
                for name, state in sorted(self._tenants.items())
            },
            "spare_chips": len(self.spare_chips()),
            "failed_chips": len(self.rack.failed_chips()),
            "active_circuits": len(self.fabric.circuits),
            "fibers_in_use": self.fabric.fibers_in_use(),
        }
