"""Bandwidth steering: redirecting chip bandwidth between torus dimensions.

The paper's first opportunity (Section 4.1): a chip's I/O "along different
dimensions can be redirected to one dimension by dynamically programming
the MZI switches", so a slice that can only ring congestion-free in a
subset of dimensions still uses its *full* egress bandwidth. This module
plans wavelength (re)allocations for a slice — which of the 16 per-tile
wavelengths serve which torus dimension — together with the MZI programming
batch and its 3.7 us charge, and computes the resulting per-dimension
bandwidth fractions that feed the Tables 1/2 cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.primitives import (
    Interconnect,
    StrategyKind,
    plan_reduce_scatter,
)
from ..phy.constants import CHIP_EGRESS_BYTES, LASERS_PER_TILE, RECONFIG_LATENCY_S
from ..topology.slices import Slice

__all__ = [
    "WavelengthAllocation",
    "SteeringPlan",
    "static_allocation",
    "steered_allocation",
    "plan_steering",
    "effective_chip_bandwidth",
]


@dataclass(frozen=True)
class WavelengthAllocation:
    """How one chip's wavelengths are divided among torus dimensions.

    Attributes:
        per_dimension: wavelengths assigned to each rack dimension index.
        total: wavelengths available on the tile.
    """

    per_dimension: dict[int, int]
    total: int = LASERS_PER_TILE

    def __post_init__(self) -> None:
        assigned = sum(self.per_dimension.values())
        if assigned > self.total:
            raise ValueError(
                f"allocated {assigned} wavelengths but the tile has {self.total}"
            )
        if any(n < 0 for n in self.per_dimension.values()):
            raise ValueError("wavelength counts cannot be negative")

    def fraction(self, dim: int) -> float:
        """Fraction of chip bandwidth serving ``dim``."""
        return self.per_dimension.get(dim, 0) / self.total

    def bandwidth_bytes(self, dim: int, chip_egress: float = CHIP_EGRESS_BYTES) -> float:
        """Absolute bandwidth serving ``dim``, bytes per second."""
        return self.fraction(dim) * chip_egress

    @property
    def stranded(self) -> int:
        """Wavelengths not assigned to any dimension."""
        return self.total - sum(self.per_dimension.values())


def static_allocation(
    rack_ndim: int, total: int = LASERS_PER_TILE
) -> WavelengthAllocation:
    """The electrical-equivalent fixed split across all rack dimensions.

    Mirrors a direct-connect chip whose SerDes are hard-wired evenly to
    the torus dimensions (remainder wavelengths round-robin onto the
    lowest dimensions).
    """
    if rack_ndim < 1:
        raise ValueError("need at least one dimension")
    base, extra = divmod(total, rack_ndim)
    return WavelengthAllocation(
        per_dimension={d: base + (1 if d < extra else 0) for d in range(rack_ndim)},
        total=total,
    )


def steered_allocation(
    target_dims: list[int], total: int = LASERS_PER_TILE
) -> WavelengthAllocation:
    """All wavelengths redirected onto ``target_dims``, split evenly."""
    if not target_dims:
        raise ValueError("need at least one target dimension")
    if len(set(target_dims)) != len(target_dims):
        raise ValueError("target dimensions must be distinct")
    base, extra = divmod(total, len(target_dims))
    return WavelengthAllocation(
        per_dimension={
            d: base + (1 if i < extra else 0) for i, d in enumerate(target_dims)
        },
        total=total,
    )


@dataclass(frozen=True)
class SteeringPlan:
    """A slice-wide bandwidth-steering decision.

    Attributes:
        slice_name: the slice being steered.
        allocation: the per-chip wavelength allocation after steering.
        target_dims: dimensions receiving bandwidth (single-ring plans
            steer everything into the ring, reported as one pseudo-dim).
        switch_programs: MZI programming operations needed (one per
            redirected wavelength per chip).
        latency_s: time to apply the plan (parallel drivers: one settle).
    """

    slice_name: str
    allocation: WavelengthAllocation
    target_dims: tuple[int, ...]
    switch_programs: int
    latency_s: float

    @property
    def per_dimension_fraction(self) -> dict[int, float]:
        """Bandwidth fraction each target dimension receives."""
        return {d: self.allocation.fraction(d) for d in self.target_dims}


def plan_steering(
    slc: Slice,
    interconnect: Interconnect = Interconnect.OPTICAL,
    reconfig_s: float = RECONFIG_LATENCY_S,
) -> SteeringPlan:
    """Steering plan realizing the paper's strategy for ``slc``.

    For a single-ring strategy (Slice-1) everything steers into the ring's
    dimension sequence; for a steered bucket (Slice-3) the stranded
    dimensions' wavelengths move into the active dimensions. Electrical
    plans return the static allocation with zero programs — the baseline.
    """
    strategy = plan_reduce_scatter(slc, interconnect)
    rack_ndim = slc.rack.ndim
    if interconnect is Interconnect.ELECTRICAL:
        return SteeringPlan(
            slice_name=slc.name,
            allocation=static_allocation(rack_ndim),
            target_dims=tuple(range(rack_ndim)),
            switch_programs=0,
            latency_s=0.0,
        )
    if strategy.kind is StrategyKind.SINGLE_RING:
        ring_dim = slc.active_dimensions()[0] if slc.active_dimensions() else 0
        allocation = steered_allocation([ring_dim])
        target = (ring_dim,)
    else:
        allocation = steered_allocation(list(strategy.dims))
        target = strategy.dims
    moved = _moved_wavelengths(static_allocation(rack_ndim), allocation)
    return SteeringPlan(
        slice_name=slc.name,
        allocation=allocation,
        target_dims=target,
        switch_programs=moved * slc.chip_count,
        latency_s=reconfig_s,
    )


def _moved_wavelengths(
    before: WavelengthAllocation, after: WavelengthAllocation
) -> int:
    """Wavelengths per chip whose dimension assignment changes."""
    dims = set(before.per_dimension) | set(after.per_dimension)
    gained = 0
    for d in dims:
        delta = after.per_dimension.get(d, 0) - before.per_dimension.get(d, 0)
        if delta > 0:
            gained += delta
    return gained


def effective_chip_bandwidth(
    slc: Slice,
    interconnect: Interconnect,
    chip_egress: float = CHIP_EGRESS_BYTES,
) -> float:
    """Usable per-chip bandwidth under the given interconnect, bytes/s.

    The quantity plotted in Figure 5c: electrical slices keep only the
    congestion-free dimensions' static shares; optical slices recover the
    full egress by steering.
    """
    if interconnect is Interconnect.ELECTRICAL:
        return slc.electrical_utilization() * chip_egress
    return slc.optical_utilization() * chip_egress
