"""One LIGHTPATH tile (paper Figure 2a/2b).

A tile is the unit of the wafer grid: an accelerator chip is 3D-stacked on
it, and the tile provides the chip's entire optical interface — a Tx/Rx
block (16 wavelength-multiplexed lasers, micro-ring modulators,
photodetectors, SerDes) at the center, four 1x3 MZI optical switches at
the corners, and attachment points for the bus waveguides that run across
the tile to its four neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..phy.constants import (
    LASERS_PER_TILE,
    SWITCH_DEGREE,
    SWITCHES_PER_TILE,
)
from ..phy.laser import LaserBank
from ..phy.mzi import MziSwitch
from ..phy.serdes import SerdesPool

__all__ = ["TileCoord", "Direction", "TileSwitch", "LightpathTile"]

TileCoord = tuple[int, int]


class Direction(str, Enum):
    """The four waveguide directions leaving a tile."""

    NORTH = "north"
    SOUTH = "south"
    EAST = "east"
    WEST = "west"

    @property
    def opposite(self) -> "Direction":
        """The direction pointing back."""
        return _OPPOSITE[self]

    @property
    def delta(self) -> tuple[int, int]:
        """(row, col) step this direction takes on the wafer grid."""
        return _DELTA[self]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

_DELTA = {
    Direction.NORTH: (-1, 0),
    Direction.SOUTH: (1, 0),
    Direction.EAST: (0, 1),
    Direction.WEST: (0, -1),
}


@dataclass
class TileSwitch:
    """One of a tile's four 1x3 optical switches (paper Figure 2b).

    Each switch faces one waveguide direction and can route an incoming
    wavelength to any of the three other switches on the tile — hence
    degree 1x3 — by programming its MZI elements.

    Attributes:
        facing: the waveguide direction the switch terminates.
        mzis: the MZI elements implementing the 1x3 fan-out (two cascaded
            2x2 elements realize three outputs).
    """

    facing: Direction
    mzis: list[MziSwitch] = field(default_factory=lambda: [MziSwitch(), MziSwitch()])
    _routes: dict[int, Direction] = field(default_factory=dict, repr=False)
    failed: bool = False

    @property
    def degree(self) -> int:
        """Output degree of the switch."""
        return SWITCH_DEGREE

    def route(self, wavelength_index: int, towards: Direction) -> None:
        """Program the switch to steer ``wavelength_index`` to ``towards``.

        Raises:
            ValueError: if asked to route back out the facing direction
                (the 1x3 switch only reaches the other three switches) or
                if the switch has failed.
        """
        if self.failed:
            raise ValueError(f"switch facing {self.facing.value} has failed")
        if towards == self.facing:
            raise ValueError(
                f"1x3 switch facing {self.facing.value} cannot route back "
                "out of its own direction"
            )
        self._routes[wavelength_index] = towards

    def clear(self, wavelength_index: int) -> None:
        """Remove the route for ``wavelength_index`` (no-op if unset)."""
        self._routes.pop(wavelength_index, None)

    def routed_towards(self, wavelength_index: int) -> Direction | None:
        """Current output direction for ``wavelength_index``, if any."""
        return self._routes.get(wavelength_index)

    @property
    def active_routes(self) -> int:
        """Number of wavelengths currently routed through the switch."""
        return len(self._routes)


@dataclass
class LightpathTile:
    """A tile of the LIGHTPATH wafer with its stacked accelerator.

    Attributes:
        coord: (row, col) position on the wafer grid.
        lasers: the tile's WDM laser bank (16 wavelengths).
        serdes: SerDes lanes of the stacked chip — the hard limit on
            simultaneous connections (paper Section 3).
        switches: the four corner switches, keyed by facing direction.
        accelerator: opaque identity of the stacked chip, if any.
    """

    coord: TileCoord
    lasers: LaserBank = field(default_factory=LaserBank)
    serdes: SerdesPool = field(default_factory=SerdesPool.for_chip)
    switches: dict[Direction, TileSwitch] = field(default_factory=dict)
    accelerator: object | None = None
    failed: bool = False

    def __post_init__(self) -> None:
        if not self.switches:
            self.switches = {d: TileSwitch(facing=d) for d in Direction}
        if len(self.switches) != SWITCHES_PER_TILE:
            raise ValueError(
                f"a tile has {SWITCHES_PER_TILE} switches, got {len(self.switches)}"
            )

    @property
    def working(self) -> bool:
        """Whether the tile (and its stacked chip) is operational."""
        return not self.failed

    def fail(self) -> None:
        """Fail the tile (models the failed-TPU scenarios of Section 4.2)."""
        self.failed = True

    def repair(self) -> None:
        """Return the tile to service."""
        self.failed = False

    def free_wavelengths(self) -> list[int]:
        """Laser indices that are working and not pinned to a connection.

        A wavelength is busy when its index is bound in the SerDes pool
        (the pool is sized one lane per laser, so indices align).
        """
        busy = {
            lane.index for lane in self.serdes.lanes if not lane.is_free
        }
        return [
            i
            for i in range(self.lasers.channels)
            if self.lasers.is_working(i) and i not in busy
        ]

    def egress_capacity(self) -> int:
        """Connections the tile can still source (lasers AND lanes free)."""
        return min(len(self.free_wavelengths()), self.serdes.free_lanes)

    def validate_paper_geometry(self) -> None:
        """Assert the tile matches the paper's Section 3 description.

        Raises:
            AssertionError: on any deviation.
        """
        if self.lasers.channels != LASERS_PER_TILE:
            raise AssertionError(
                f"{self.lasers.channels} lasers != {LASERS_PER_TILE}"
            )
        if len(self.switches) != SWITCHES_PER_TILE:
            raise AssertionError(
                f"{len(self.switches)} switches != {SWITCHES_PER_TILE}"
            )
        for switch in self.switches.values():
            if switch.degree != SWITCH_DEGREE:
                raise AssertionError(f"switch degree {switch.degree} != {SWITCH_DEGREE}")
