"""Waveguide routing across the LIGHTPATH wafer grid.

Circuits are built "by directing signals through a series of horizontal and
vertical bus waveguides" (paper Figure 2c): a route is a tile path from the
source tile to the destination tile; every boundary it crosses consumes one
track of that boundary's waveguide bus, every turn consumes an MZI switch
hop, and every tile boundary adds one reticle-stitch crossing of loss
(Figure 3b). Dimension-ordered (XY) routing is the default; a BFS fallback
finds detours when buses fill up — the "exploding paths" challenge of
Section 5 in its simplest form.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tile import TileCoord
from .wafer import LightpathWafer

__all__ = ["WaveguideRoute", "WaferRouter", "RouteExhausted"]


class RouteExhausted(RuntimeError):
    """Raised when no route with free waveguides exists."""


@dataclass(frozen=True)
class WaveguideRoute:
    """A routed (but not yet allocated) circuit path across a wafer.

    Attributes:
        tiles: the tile sequence from source to destination inclusive.
    """

    tiles: tuple[TileCoord, ...]

    def __post_init__(self) -> None:
        if len(self.tiles) < 1:
            raise ValueError("a route visits at least one tile")
        for a, b in zip(self.tiles, self.tiles[1:]):
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                raise ValueError(f"route hop {a} -> {b} is not grid-adjacent")

    @property
    def boundary_crossings(self) -> int:
        """Tile boundaries crossed (the Figure 3b stitch-loss count)."""
        return len(self.tiles) - 1

    @property
    def turns(self) -> int:
        """Direction changes along the route."""
        count = 0
        for a, b, c in zip(self.tiles, self.tiles[1:], self.tiles[2:]):
            first = (b[0] - a[0], b[1] - a[1])
            second = (c[0] - b[0], c[1] - b[1])
            if first != second:
                count += 1
        return count

    @property
    def mzi_hops(self) -> int:
        """MZI switch elements traversed.

        One switch injects the signal from the Tx, one extracts it to the
        Rx, and each turn routes through one intermediate switch.
        """
        if len(self.tiles) == 1:
            return 0
        return 2 + self.turns

    def boundaries(self) -> list[tuple[TileCoord, TileCoord]]:
        """The (src, dst) tile boundaries, in traversal order."""
        return list(zip(self.tiles, self.tiles[1:]))


class WaferRouter:
    """Routes and allocates waveguide tracks on one wafer.

    Attributes:
        wafer: the wafer whose buses the router manages.
    """

    def __init__(self, wafer: LightpathWafer):
        self.wafer = wafer

    # -- path construction --------------------------------------------------------

    def dimension_order_route(
        self, src: TileCoord, dst: TileCoord, row_first: bool = True
    ) -> WaveguideRoute:
        """The XY (or YX) dimension-ordered route from ``src`` to ``dst``."""
        self.wafer.tile(src)
        self.wafer.tile(dst)
        tiles = [src]
        current = src

        def advance(axis: int, target: int) -> None:
            nonlocal current
            while current[axis] != target:
                step = 1 if target > current[axis] else -1
                nxt = list(current)
                nxt[axis] += step
                current = (nxt[0], nxt[1])
                tiles.append(current)

        if row_first:
            advance(0, dst[0])
            advance(1, dst[1])
        else:
            advance(1, dst[1])
            advance(0, dst[0])
        return WaveguideRoute(tiles=tuple(tiles))

    def hop_usable(self, src: TileCoord, dst: TileCoord) -> bool:
        """Whether the photonic layer can carry a signal ``src -> dst``.

        A *chip* failure does not block transit — the paper's premise is
        that the interconnect layer lives under the stacked chips — but a
        failed MZI switch at either end of the boundary does: the exit
        switch on ``src`` and the entry switch on ``dst`` must both work.
        """
        direction = self.wafer.direction_between(src, dst)
        if self.wafer.tile(src).switches[direction].failed:
            return False
        if self.wafer.tile(dst).switches[direction.opposite].failed:
            return False
        return True

    def bfs_route(
        self, src: TileCoord, dst: TileCoord, min_free: int = 1
    ) -> WaveguideRoute:
        """Shortest route over healthy switches with >= ``min_free`` free
        tracks per boundary.

        Raises:
            RouteExhausted: when no such route exists.
        """
        self.wafer.tile(src)
        self.wafer.tile(dst)
        if src == dst:
            return WaveguideRoute(tiles=(src,))
        parents: dict[TileCoord, TileCoord] = {src: src}
        frontier = [src]
        while frontier:
            nxt: list[TileCoord] = []
            for tile in frontier:
                for neighbor in self.wafer.neighbors(tile):
                    if neighbor in parents:
                        continue
                    if self.wafer.bus(tile, neighbor).free < min_free:
                        continue
                    if not self.hop_usable(tile, neighbor):
                        continue
                    parents[neighbor] = tile
                    if neighbor == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return WaveguideRoute(tiles=tuple(path))
                    nxt.append(neighbor)
            frontier = nxt
        raise RouteExhausted(
            f"no waveguide route from {src} to {dst} with {min_free} free "
            "track(s) per boundary"
        )

    def route(self, src: TileCoord, dst: TileCoord) -> WaveguideRoute:
        """Best-effort route: dimension-ordered if its buses have room and
        its switches are healthy, otherwise the BFS detour.

        Raises:
            RouteExhausted: when even the detour search fails.
        """
        preferred = self.dimension_order_route(src, dst)
        if all(
            self.wafer.bus(a, b).free > 0 and self.hop_usable(a, b)
            for a, b in preferred.boundaries()
        ):
            return preferred
        return self.bfs_route(src, dst)

    # -- allocation ------------------------------------------------------------------

    def allocate(self, route: WaveguideRoute, owner: object) -> list[int]:
        """Reserve one waveguide track per boundary for ``owner``.

        All-or-nothing: on failure every already-taken track is released.

        Returns:
            The track index used on each boundary, in traversal order.

        Raises:
            RouteExhausted: if some boundary has no free track.
        """
        tracks: list[int] = []
        taken: list[tuple[TileCoord, TileCoord]] = []
        try:
            for a, b in route.boundaries():
                tracks.append(self.wafer.bus(a, b).allocate(owner))
                taken.append((a, b))
        except RuntimeError as exc:
            for a, b in taken:
                self.wafer.bus(a, b).release(owner)
            raise RouteExhausted(str(exc)) from exc
        return tracks

    def release(self, route: WaveguideRoute, owner: object) -> None:
        """Free ``owner``'s tracks along ``route``."""
        for a, b in route.boundaries():
            self.wafer.bus(a, b).release(owner)

    def utilization(self) -> float:
        """Mean fraction of allocated tracks across all buses."""
        buses = self.wafer.buses()
        if not buses:
            return 0.0
        return sum(
            (bus.capacity - bus.free) / bus.capacity for bus in buses
        ) / len(buses)
