"""Wavelength assignment with the continuity constraint.

A LIGHTPATH circuit rides one comb wavelength end to end: there is no
wavelength conversion inside the fabric, so a circuit must find a channel
that is simultaneously free at the source laser bank and on every
waveguide bus it traverses — the classic routing-and-wavelength-assignment
(RWA) continuity constraint of optical networking, which the paper's
"exploding paths" challenge (Section 5) inherits at on-chip scale.

This module layers per-wavelength occupancy onto the wafer's buses and
implements the standard assignment heuristics (first-fit, most-used,
random) plus a blocking-probability experiment used by the ablation
benches: offered circuits vs the fraction rejected for lack of a
continuous wavelength.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..phy.constants import LASERS_PER_TILE
from .routing import WaferRouter, WaveguideRoute
from .tile import TileCoord
from .wafer import LightpathWafer

__all__ = [
    "AssignmentPolicy",
    "SpectrumAssignment",
    "WavelengthAssigner",
    "BlockingExperiment",
    "BlockingPoint",
]


class AssignmentPolicy(str, Enum):
    """Wavelength selection heuristics."""

    FIRST_FIT = "first-fit"
    MOST_USED = "most-used"
    RANDOM = "random"


@dataclass(frozen=True)
class SpectrumAssignment:
    """A successfully assigned circuit.

    Attributes:
        route: the tile route of the circuit.
        wavelength: the comb channel assigned end to end.
    """

    route: WaveguideRoute
    wavelength: int


class WavelengthAssigner:
    """Tracks per-wavelength occupancy per waveguide boundary.

    Unlike :class:`~repro.core.routing.WaferRouter`'s track pool (which
    models the *spatial* waveguide dimension), this models the *spectral*
    dimension: each boundary supports each comb channel once per
    spatial track, and we conservatively give every circuit a dedicated
    (boundary, wavelength) slot — the regime where spectral capacity,
    not spatial capacity, binds.

    Attributes:
        wafer: the wafer whose boundaries are managed.
        channels: comb channels available per boundary.
        policy: the wavelength selection heuristic.
    """

    def __init__(
        self,
        wafer: LightpathWafer,
        channels: int = LASERS_PER_TILE,
        policy: AssignmentPolicy = AssignmentPolicy.FIRST_FIT,
        rng: np.random.Generator | None = None,
    ):
        if channels < 1:
            raise ValueError("need at least one wavelength channel")
        self.wafer = wafer
        self.channels = channels
        self.policy = policy
        self.rng = rng or np.random.default_rng(0)
        self.router = WaferRouter(wafer)
        # occupancy[(src, dst)][w] -> owner or absent
        self._occupancy: dict[tuple[TileCoord, TileCoord], dict[int, object]] = {}
        self._use_count: list[int] = [0] * channels

    # -- queries ----------------------------------------------------------------

    def _boundary_occupancy(
        self, boundary: tuple[TileCoord, TileCoord]
    ) -> dict[int, object]:
        return self._occupancy.setdefault(boundary, {})

    def free_wavelengths(self, route: WaveguideRoute) -> list[int]:
        """Channels free on *every* boundary of ``route`` (continuity)."""
        candidates = set(range(self.channels))
        for boundary in route.boundaries():
            taken = set(self._boundary_occupancy(boundary))
            candidates &= set(range(self.channels)) - taken
            if not candidates:
                break
        return sorted(candidates)

    def utilization(self) -> float:
        """Mean fraction of occupied (boundary, wavelength) slots."""
        boundaries = [
            (bus.src, bus.dst) for bus in self.wafer.buses()
        ]
        if not boundaries:
            return 0.0
        used = sum(
            len(self._boundary_occupancy(boundary)) for boundary in boundaries
        )
        return used / (len(boundaries) * self.channels)

    # -- assignment ---------------------------------------------------------------

    def _pick(self, candidates: list[int]) -> int:
        if self.policy is AssignmentPolicy.FIRST_FIT:
            return candidates[0]
        if self.policy is AssignmentPolicy.MOST_USED:
            return max(candidates, key=lambda w: (self._use_count[w], -w))
        return int(self.rng.choice(candidates))

    def assign(
        self, src: TileCoord, dst: TileCoord, owner: object
    ) -> SpectrumAssignment | None:
        """Route ``src -> dst`` and assign a continuous wavelength.

        Returns ``None`` (blocked) when no channel is free on every
        boundary of the route.
        """
        route = self.router.dimension_order_route(src, dst)
        candidates = self.free_wavelengths(route)
        if not candidates:
            return None
        wavelength = self._pick(candidates)
        for boundary in route.boundaries():
            self._boundary_occupancy(boundary)[wavelength] = owner
        self._use_count[wavelength] += 1
        return SpectrumAssignment(route=route, wavelength=wavelength)

    def release(self, assignment: SpectrumAssignment, owner: object) -> None:
        """Free the assignment's (boundary, wavelength) slots.

        Raises:
            KeyError: if a slot is not held by ``owner``.
        """
        for boundary in assignment.route.boundaries():
            occupancy = self._boundary_occupancy(boundary)
            holder = occupancy.get(assignment.wavelength)
            if holder != owner:
                raise KeyError(
                    f"slot {boundary}/{assignment.wavelength} not held by "
                    f"{owner!r}"
                )
            del occupancy[assignment.wavelength]


@dataclass(frozen=True)
class BlockingPoint:
    """Blocking probability at one offered load.

    Attributes:
        offered: circuits offered.
        accepted: circuits that found a continuous wavelength.
        policy: the heuristic evaluated.
    """

    offered: int
    accepted: int
    policy: AssignmentPolicy

    @property
    def blocking_probability(self) -> float:
        """Fraction of offered circuits rejected."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.accepted / self.offered


@dataclass
class BlockingExperiment:
    """Offered-load sweep measuring wavelength-blocking probability.

    Attributes:
        grid: wafer grid used for the experiment.
        channels: comb channels per boundary.
        seed: RNG seed for the random src/dst workload.
    """

    grid: tuple[int, int] = (4, 8)
    channels: int = LASERS_PER_TILE
    seed: int = 0

    def _random_pairs(self, count: int, rng: np.random.Generator):
        rows, cols = self.grid
        pairs = []
        while len(pairs) < count:
            src = (int(rng.integers(rows)), int(rng.integers(cols)))
            dst = (int(rng.integers(rows)), int(rng.integers(cols)))
            if src != dst:
                pairs.append((src, dst))
        return pairs

    def run(self, offered: int, policy: AssignmentPolicy) -> BlockingPoint:
        """Offer ``offered`` random circuits under ``policy``."""
        if offered < 0:
            raise ValueError("offered load cannot be negative")
        rng = np.random.default_rng(self.seed)
        assigner = WavelengthAssigner(
            LightpathWafer(grid=self.grid),
            channels=self.channels,
            policy=policy,
            rng=np.random.default_rng(self.seed + 1),
        )
        accepted = 0
        for i, (src, dst) in enumerate(self._random_pairs(offered, rng)):
            if assigner.assign(src, dst, owner=("exp", i)) is not None:
                accepted += 1
        return BlockingPoint(offered=offered, accepted=accepted, policy=policy)

    def sweep(
        self, loads: list[int], policy: AssignmentPolicy
    ) -> list[BlockingPoint]:
        """Blocking probability at each offered load."""
        return [self.run(load, policy) for load in loads]
