"""Fiber provisioning for fault tolerance (paper Section 5).

"Fault-tolerant circuit pathfinding must intelligently manage the addition
of fibers, aiming to minimize fiber usage while effectively managing
faults." This module answers the provisioning question for a rack: how
many fibers per inter-server trunk are needed so that *any* single-chip
failure in a given slice layout can be repaired optically? It evaluates
failure scenarios against candidate fiber budgets (binary search over a
uniform per-trunk capacity) and reports coverage curves for the ablation
bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.slices import SliceAllocator
from ..topology.torus import Coordinate
from ..topology.tpu import TpuRack
from .fabric import LightpathRackFabric
from .repair import RepairError, plan_optical_repair

__all__ = ["FailureScenario", "CoveragePoint", "FiberPlanner"]


@dataclass(frozen=True)
class FailureScenario:
    """One single-chip failure to survive.

    Attributes:
        slice_name: the slice losing a chip.
        failed: the failed chip.
    """

    slice_name: str
    failed: Coordinate


@dataclass(frozen=True)
class CoveragePoint:
    """Repair coverage achieved by one fiber budget.

    Attributes:
        fibers_per_trunk: the uniform per-trunk capacity evaluated.
        covered: scenarios repaired successfully.
        total: scenarios evaluated.
        max_fibers_used: largest fiber count any single repair consumed.
    """

    fibers_per_trunk: int
    covered: int
    total: int
    max_fibers_used: int

    @property
    def coverage(self) -> float:
        """Fraction of scenarios repaired."""
        return self.covered / self.total if self.total else 1.0


@dataclass
class FiberPlanner:
    """Sizes fiber trunks against a set of failure scenarios.

    Attributes:
        rack_shape: shape of the rack the layout lives on.
        layout: (name, shape, offset) triples describing the slice layout;
            re-applied onto a fresh rack for every evaluation so repairs
            do not interfere.
    """

    rack_shape: tuple[int, ...]
    layout: list[tuple[str, tuple[int, ...], tuple[int, ...]]]

    def _fresh(self, fibers_per_trunk: int):
        rack = TpuRack(index=0, shape=self.rack_shape)
        fabric = LightpathRackFabric(rack, fibers_per_trunk=fibers_per_trunk)
        allocator = SliceAllocator(rack.torus)
        for name, shape, offset in self.layout:
            allocator.allocate(name, shape, offset)
        return fabric, allocator

    def all_single_failures(self) -> list[FailureScenario]:
        """Every (slice, chip) single-failure scenario in the layout."""
        _fabric, allocator = self._fresh(fibers_per_trunk=1)
        scenarios = []
        for slc in allocator.slices:
            for chip in slc.chips():
                scenarios.append(FailureScenario(slice_name=slc.name, failed=chip))
        return scenarios

    def evaluate(
        self, fibers_per_trunk: int, scenarios: list[FailureScenario] | None = None
    ) -> CoveragePoint:
        """Repair every scenario independently under the given budget."""
        if fibers_per_trunk < 0:
            raise ValueError("fiber budget cannot be negative")
        if scenarios is None:
            scenarios = self.all_single_failures()
        covered = 0
        max_used = 0
        for scenario in scenarios:
            fabric, allocator = self._fresh(fibers_per_trunk)
            slc = next(
                s for s in allocator.slices if s.name == scenario.slice_name
            )
            try:
                plan = plan_optical_repair(fabric, allocator, slc, scenario.failed)
            except RepairError:
                continue
            covered += 1
            max_used = max(max_used, plan.fibers_used)
        return CoveragePoint(
            fibers_per_trunk=fibers_per_trunk,
            covered=covered,
            total=len(scenarios),
            max_fibers_used=max_used,
        )

    def minimum_fibers(
        self,
        scenarios: list[FailureScenario] | None = None,
        upper_bound: int = 64,
    ) -> int:
        """Smallest uniform per-trunk capacity covering every scenario.

        Binary search over capacities; assumes coverage is monotone in the
        budget (more fibers never hurt).

        Raises:
            RuntimeError: if even ``upper_bound`` fibers cannot cover all
                scenarios (the layout has no free chips, for example).
        """
        if scenarios is None:
            scenarios = self.all_single_failures()
        top = self.evaluate(upper_bound, scenarios)
        if top.coverage < 1.0:
            raise RuntimeError(
                f"{upper_bound} fibers/trunk cover only "
                f"{top.covered}/{top.total} scenarios"
            )
        lo, hi = 0, upper_bound
        while lo < hi:
            mid = (lo + hi) // 2
            if self.evaluate(mid, scenarios).coverage >= 1.0:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def coverage_curve(
        self,
        budgets: list[int],
        scenarios: list[FailureScenario] | None = None,
    ) -> list[CoveragePoint]:
        """Coverage at each fiber budget (the ablation bench's series)."""
        if scenarios is None:
            scenarios = self.all_single_failures()
        return [self.evaluate(budget, scenarios) for budget in budgets]
