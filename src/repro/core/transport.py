"""A circuit-switched host transport (paper Section 1's challenge).

"Server-scale optics will necessitate the development of new host
networking software stacks optimized for circuit-switching as opposed to
today's packetized data transmission." This module prototypes such a
stack for one chip's egress:

* messages are enqueued into **virtual output queues** (one per
  destination tile);
* a **circuit scheduler** decides when to point a wavelength at which
  destination, trading the 3.7 us reconfiguration against queue depth —
  the core trade-off the paper names;
* two policies are provided: ``GreedyLongestQueue`` (serve the deepest
  backlog, reconfigure whenever a different destination dominates) and
  ``ThresholdBatching`` (stay on the current circuit until another queue
  exceeds the in-service one by a hysteresis factor, amortizing ``r``).

The simulation is time-stepped on message boundaries and reports per-
destination latency and the fraction of time lost to reconfiguration, so
the ablation bench can quantify policy choices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..phy.constants import RECONFIG_LATENCY_S, WAVELENGTH_RATE_BYTES

__all__ = [
    "Message",
    "DeliveredMessage",
    "TransportStats",
    "GreedyLongestQueue",
    "ThresholdBatching",
    "CircuitTransport",
]


@dataclass(frozen=True)
class Message:
    """A host message awaiting transmission.

    Attributes:
        arrival_s: when the message entered the queue.
        dst: destination tile/chip identifier.
        n_bytes: payload size.
    """

    arrival_s: float
    dst: object
    n_bytes: float

    def __post_init__(self) -> None:
        if self.n_bytes <= 0:
            raise ValueError("messages must carry payload")
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")


@dataclass(frozen=True)
class DeliveredMessage:
    """A message after delivery.

    Attributes:
        message: the original message.
        start_s: when its transmission began.
        finish_s: when its last byte arrived.
    """

    message: Message
    start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        """Queueing + transmission latency."""
        return self.finish_s - self.message.arrival_s


@dataclass(frozen=True)
class TransportStats:
    """Aggregate outcome of one transport run.

    Attributes:
        delivered: delivery records, completion-ordered.
        reconfigurations: circuit re-pointings performed.
        busy_s: time spent transmitting.
        reconfig_s: time spent waiting on MZI settles.
        makespan_s: time of the last delivery.
    """

    delivered: tuple[DeliveredMessage, ...]
    reconfigurations: int
    busy_s: float
    reconfig_s: float
    makespan_s: float

    @property
    def mean_latency_s(self) -> float:
        """Mean message latency (0 when nothing was delivered)."""
        if not self.delivered:
            return 0.0
        return sum(d.latency_s for d in self.delivered) / len(self.delivered)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile message latency."""
        if not self.delivered:
            return 0.0
        ordered = sorted(d.latency_s for d in self.delivered)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[index]

    @property
    def reconfig_overhead(self) -> float:
        """Fraction of active time spent reconfiguring."""
        active = self.busy_s + self.reconfig_s
        return self.reconfig_s / active if active else 0.0


class GreedyLongestQueue:
    """Always serve the destination with the deepest backlog (in bytes).

    Reconfigures whenever the deepest queue is not the in-service one —
    responsive, but pays ``r`` often under mixed traffic.
    """

    def choose(
        self, current: object | None, queues: dict[object, float]
    ) -> object | None:
        """Destination to serve next (None = idle)."""
        backlogged = {dst: b for dst, b in queues.items() if b > 0}
        if not backlogged:
            return None
        return max(backlogged.items(), key=lambda kv: (kv[1], str(kv[0])))[0]


@dataclass
class ThresholdBatching:
    """Stay on the current circuit until another queue clearly dominates.

    Attributes:
        hysteresis: switch only when some other queue's backlog strictly
            exceeds the in-service queue's by this factor. Even 1.0 is
            stickier than greedy (ties stay put); larger values amortize
            ``r`` over bigger batches.
    """

    hysteresis: float = 4.0

    def __post_init__(self) -> None:
        if self.hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")

    def choose(
        self, current: object | None, queues: dict[object, float]
    ) -> object | None:
        backlogged = {dst: b for dst, b in queues.items() if b > 0}
        if not backlogged:
            return None
        best_dst, best_bytes = max(
            backlogged.items(), key=lambda kv: (kv[1], str(kv[0]))
        )
        if current in backlogged:
            if best_bytes > self.hysteresis * backlogged[current]:
                return best_dst
            return current
        return best_dst


class CircuitTransport:
    """One chip's circuit-switched egress with virtual output queues.

    Attributes:
        policy: the circuit scheduling policy.
        rate_bytes: circuit bandwidth (one wavelength by default).
        reconfig_s: circuit re-pointing cost.
    """

    def __init__(
        self,
        policy,
        rate_bytes: float = WAVELENGTH_RATE_BYTES,
        reconfig_s: float = RECONFIG_LATENCY_S,
    ):
        if rate_bytes <= 0:
            raise ValueError("circuit rate must be positive")
        if reconfig_s < 0:
            raise ValueError("reconfiguration cost cannot be negative")
        self.policy = policy
        self.rate_bytes = rate_bytes
        self.reconfig_s = reconfig_s

    def run(self, messages: list[Message]) -> TransportStats:
        """Deliver ``messages`` and return the aggregate statistics.

        Event-driven: the transmitter serves one message at a time on the
        current circuit; on completion (or idleness) the policy picks the
        next destination, charging ``reconfig_s`` whenever it changes.
        """
        pending = sorted(messages, key=lambda m: (m.arrival_s, str(m.dst)))
        arrivals = deque(pending)
        queues: dict[object, deque[Message]] = {}
        backlog: dict[object, float] = {}
        delivered: list[DeliveredMessage] = []
        now = 0.0
        current: object | None = None
        reconfigurations = 0
        busy_s = 0.0
        reconfig_total = 0.0

        def admit_until(t: float) -> None:
            while arrivals and arrivals[0].arrival_s <= t:
                msg = arrivals.popleft()
                queues.setdefault(msg.dst, deque()).append(msg)
                backlog[msg.dst] = backlog.get(msg.dst, 0.0) + msg.n_bytes

        admit_until(now)
        while arrivals or any(backlog.get(d, 0.0) > 0 for d in backlog):
            if not any(b > 0 for b in backlog.values()):
                # Idle until the next arrival.
                now = max(now, arrivals[0].arrival_s)
                admit_until(now)
                continue
            choice = self.policy.choose(current, dict(backlog))
            if choice is None:
                now = max(now, arrivals[0].arrival_s) if arrivals else now
                admit_until(now)
                continue
            if choice != current:
                now += self.reconfig_s
                reconfig_total += self.reconfig_s
                reconfigurations += 1
                current = choice
                admit_until(now)
            queue = queues[current]
            msg = queue.popleft()
            start = now
            duration = msg.n_bytes / self.rate_bytes
            now += duration
            busy_s += duration
            backlog[current] -= msg.n_bytes
            if not queue:
                # The queue is the ground truth; incremental float
                # accounting can leave residue above any fixed epsilon
                # (ulp(1e6) per op), which would make the policy serve an
                # empty queue.
                backlog[current] = 0.0
            elif backlog[current] <= 0.0:
                # Drift in the other direction would hide queued messages
                # from the policy and drop them: rebuild the exact sum.
                backlog[current] = sum(m.n_bytes for m in queue)
            delivered.append(
                DeliveredMessage(message=msg, start_s=start, finish_s=now)
            )
            admit_until(now)
        return TransportStats(
            delivered=tuple(delivered),
            reconfigurations=reconfigurations,
            busy_s=busy_s,
            reconfig_s=reconfig_total,
            makespan_s=now,
        )
