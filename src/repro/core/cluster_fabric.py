"""Cluster-scale LIGHTPATH fabric: racks cascaded with fibers.

Section 3: "With attached fibers, we can cascade several LIGHTPATH wafers
to create a rack-scale photonic interconnect... Fibers can be attached
vertically to the tiles to build 3D topologies." This module takes the
next step the paper gestures at: several racks, each carrying a
:class:`~repro.core.fabric.LightpathRackFabric`, joined by inter-rack
fiber trunks — so the optical answer to Figure 6b exists too: a failed
chip whose only spare lives in *another* rack gets dedicated cross-rack
circuits, with no OCS-milliseconds and no congestion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..phy.constants import FIBERS_PER_EDGE_TILE, RECONFIG_LATENCY_S
from ..topology.torus import Coordinate
from ..topology.tpu import TpuRack
from .circuits import CircuitError
from .fabric import FiberTrunk, LightpathRackFabric, RackCircuit

__all__ = ["ClusterChip", "ClusterCircuit", "LightpathClusterFabric"]

ClusterChip = tuple[int, Coordinate]


@dataclass(frozen=True)
class ClusterCircuit:
    """A chip-to-chip circuit possibly spanning racks.

    Attributes:
        circuit_id: identity within the cluster fabric.
        src: (rack, coordinate) of the source chip.
        dst: (rack, coordinate) of the destination chip.
        rack_path: racks traversed, endpoints inclusive.
        inter_rack_fibers: fiber index used on each rack-to-rack hop.
        rack_segments: the intra-rack circuits at the endpoints.
        setup_latency_s: switches program in parallel — one settle.
    """

    circuit_id: int
    src: ClusterChip
    dst: ClusterChip
    rack_path: tuple[int, ...]
    inter_rack_fibers: tuple[int, ...]
    rack_segments: tuple[RackCircuit, ...]
    setup_latency_s: float

    @property
    def crosses_racks(self) -> bool:
        """Whether the circuit uses inter-rack fibers."""
        return len(self.rack_path) > 1


class LightpathClusterFabric:
    """Several rack fabrics chained by inter-rack fiber trunks.

    Racks are arranged on a logical line (the arrangement is irrelevant
    to the congestion-freedom argument; any topology with enough trunks
    works) with a fiber trunk between consecutive racks.

    Attributes:
        racks: the rack fabrics, by rack index.
    """

    def __init__(
        self,
        rack_count: int = 2,
        fibers_per_trunk: int = FIBERS_PER_EDGE_TILE,
        rack_shape: tuple[int, ...] = (4, 4, 4),
    ):
        if rack_count < 1:
            raise ValueError("a cluster needs at least one rack")
        self.racks: dict[int, LightpathRackFabric] = {
            i: LightpathRackFabric(TpuRack(i, rack_shape))
            for i in range(rack_count)
        }
        self._trunks: dict[tuple[int, int], FiberTrunk] = {}
        for a in range(rack_count - 1):
            self._trunks[(a, a + 1)] = FiberTrunk(
                ends=((a,), (a + 1,)), capacity=fibers_per_trunk
            )
        self._ids = itertools.count()
        self._circuits: dict[int, ClusterCircuit] = {}

    # -- structure ------------------------------------------------------------------

    @property
    def rack_count(self) -> int:
        """Racks in the cluster."""
        return len(self.racks)

    def trunk(self, a: int, b: int) -> FiberTrunk:
        """The trunk between consecutive racks ``a`` and ``b``.

        Raises:
            KeyError: if the racks are not consecutive.
        """
        key = (min(a, b), max(a, b))
        if key not in self._trunks or abs(a - b) != 1:
            raise KeyError(f"no fiber trunk between racks {a} and {b}")
        return self._trunks[key]

    def rack(self, index: int) -> LightpathRackFabric:
        """The rack fabric at ``index``.

        Raises:
            KeyError: on an unknown rack.
        """
        if index not in self.racks:
            raise KeyError(f"no rack {index}")
        return self.racks[index]

    def free_inter_rack_fibers(self) -> int:
        """Total unused fibers across all inter-rack trunks."""
        return sum(t.free for t in self._trunks.values())

    # -- circuits ---------------------------------------------------------------------

    def establish(self, src: ClusterChip, dst: ClusterChip) -> ClusterCircuit:
        """Create a dedicated circuit, crossing racks if needed.

        Intra-rack requests delegate to the rack fabric. Cross-rack
        requests allocate one fiber per rack-to-rack hop plus an
        intra-rack segment at each endpoint connecting the chip to its
        rack's fiber attach (modelled as a circuit to the rack's corner
        chip's wafer).

        Raises:
            CircuitError: on unknown chips, failed chips, or exhausted
                fibers.
        """
        src_rack, src_chip = src
        dst_rack, dst_chip = dst
        for rack_index in (src_rack, dst_rack):
            if rack_index not in self.racks:
                raise CircuitError(f"unknown rack {rack_index}")
        circuit_id = next(self._ids)
        token = ("cluster-circuit", circuit_id)
        if src_rack == dst_rack:
            inner = self.racks[src_rack].establish(src_chip, dst_chip)
            circuit = ClusterCircuit(
                circuit_id=circuit_id,
                src=src,
                dst=dst,
                rack_path=(src_rack,),
                inter_rack_fibers=(),
                rack_segments=(inner,),
                setup_latency_s=inner.setup_latency_s,
            )
            self._circuits[circuit_id] = circuit
            return circuit
        step = 1 if dst_rack > src_rack else -1
        rack_path = tuple(range(src_rack, dst_rack + step, step))
        fibers: list[int] = []
        taken: list[FiberTrunk] = []
        segments: list[RackCircuit] = []
        try:
            for a, b in zip(rack_path, rack_path[1:]):
                trunk = self.trunk(a, b)
                fibers.append(trunk.allocate(token))
                taken.append(trunk)
            segments.append(
                self.racks[src_rack].establish(
                    src_chip, self._attach_chip(src_rack, src_chip)
                )
            )
            segments.append(
                self.racks[dst_rack].establish(
                    self._attach_chip(dst_rack, dst_chip), dst_chip
                )
            )
        except (CircuitError, RuntimeError) as exc:
            for trunk in taken:
                trunk.release(token)
            for segment in segments:
                self._rack_of_segment(segment).teardown(segment.circuit_id)
            raise CircuitError(str(exc)) from exc
        circuit = ClusterCircuit(
            circuit_id=circuit_id,
            src=src,
            dst=dst,
            rack_path=rack_path,
            inter_rack_fibers=tuple(fibers),
            rack_segments=tuple(segments),
            setup_latency_s=RECONFIG_LATENCY_S,
        )
        self._circuits[circuit_id] = circuit
        return circuit

    def _attach_chip(self, rack_index: int, avoid: Coordinate) -> Coordinate:
        """A chip (distinct from ``avoid``) acting as the fiber attach."""
        for chip in self.racks[rack_index].rack.torus.nodes():
            if chip != avoid and not self.racks[rack_index].rack.is_failed(chip):
                return chip
        raise CircuitError(f"rack {rack_index} has no attach chip available")

    def _rack_of_segment(self, segment: RackCircuit) -> LightpathRackFabric:
        for fabric in self.racks.values():
            if any(c is segment for c in fabric.circuits):
                return fabric
        raise KeyError("segment not found in any rack fabric")

    def teardown(self, circuit_id: int) -> None:
        """Release a cluster circuit's fibers and rack segments.

        Raises:
            KeyError: for an unknown id.
        """
        circuit = self._circuits.pop(circuit_id)
        token = ("cluster-circuit", circuit_id)
        for a, b in zip(circuit.rack_path, circuit.rack_path[1:]):
            self.trunk(a, b).release(token)
        for segment in circuit.rack_segments:
            self._rack_of_segment(segment).teardown(segment.circuit_id)

    @property
    def circuits(self) -> list[ClusterCircuit]:
        """Active cluster circuits (copy)."""
        return list(self._circuits.values())

    # -- cross-rack repair (the optical Figure 6b) -----------------------------------

    def cross_rack_repair(
        self,
        failed: ClusterChip,
        ring_neighbors: list[ClusterChip],
        spare: ClusterChip,
    ) -> list[ClusterCircuit]:
        """Splice ``spare`` into rings broken by ``failed``, across racks.

        The electrical version of this (Figure 6b) is impossible without
        congestion; with dedicated fibers it is a handful of circuits.

        Raises:
            CircuitError: if any circuit cannot be established (already
                established ones are torn down).
        """
        failed_rack, failed_chip = failed
        self.racks[failed_rack].rack.fail_chip(failed_chip)
        created: list[ClusterCircuit] = []
        try:
            for neighbor in ring_neighbors:
                created.append(self.establish(neighbor, spare))
                created.append(self.establish(spare, neighbor))
        except CircuitError:
            for circuit in created:
                self.teardown(circuit.circuit_id)
            raise
        return created
