"""The paper's primary contribution: the LIGHTPATH photonic fabric.

Tiles (Tx/Rx + four 1x3 MZI switches), the 32-tile wafer with its bus
waveguides and edge fibers, fault-aware waveguide routing, on-demand
chip-to-chip circuits, wavelength/spectrum assignment (RWA continuity),
reconfiguration scheduling, bandwidth steering (Section 4.1), rack and
cluster fabrics (wafers cascaded by fiber trunks), optical failure repair
(Section 4.2), the Section 5 challenge algorithms (decentralized
allocation, fiber planning), demand-driven topology engineering
(Section 6), a circuit-switched host transport (the Section 1 software
challenge), and a fabric controller facade tying them together.
"""

from .circuits import CircuitError, CircuitManager, OpticalCircuit
from .controller import FabricController, TenantState
from .cluster_fabric import ClusterChip, ClusterCircuit, LightpathClusterFabric
from .decentralized import (
    AllocationOutcome,
    CentralizedController,
    CircuitRequest,
    DecentralizedAllocator,
    mean_setup_latency,
    success_rate,
)
from .fabric import FiberTrunk, LightpathRackFabric, RackCircuit
from .fiber_planner import CoveragePoint, FailureScenario, FiberPlanner
from .reconfig import (
    ReconfigurationPlan,
    ReconfigurationScheduler,
    SwitchProgram,
    breakeven_buffer_bytes,
)
from .repair import (
    BrokenRing,
    RepairError,
    RepairPlan,
    broken_rings,
    plan_optical_repair,
)
from .routing import RouteExhausted, WaferRouter, WaveguideRoute
from .spectrum import (
    AssignmentPolicy,
    BlockingExperiment,
    BlockingPoint,
    SpectrumAssignment,
    WavelengthAssigner,
)
from .transport import (
    CircuitTransport,
    DeliveredMessage,
    GreedyLongestQueue,
    Message,
    ThresholdBatching,
    TransportStats,
)
from .steering import (
    SteeringPlan,
    WavelengthAllocation,
    effective_chip_bandwidth,
    plan_steering,
    static_allocation,
    steered_allocation,
)
from .tile import Direction, LightpathTile, TileCoord, TileSwitch
from .topology_engineering import (
    EngineeredTopology,
    TopologyScore,
    TrafficMatrix,
    engineer_topology,
    evaluate_topology,
    skewed_traffic,
    uniform_mesh,
)
from .wafer import FiberPort, LightpathWafer, WaferCapabilities, WaveguideBus

__all__ = [
    "CircuitError",
    "FabricController",
    "TenantState",
    "ClusterChip",
    "ClusterCircuit",
    "LightpathClusterFabric",
    "AssignmentPolicy",
    "BlockingExperiment",
    "BlockingPoint",
    "SpectrumAssignment",
    "WavelengthAssigner",
    "CircuitTransport",
    "DeliveredMessage",
    "GreedyLongestQueue",
    "Message",
    "ThresholdBatching",
    "TransportStats",
    "CircuitManager",
    "OpticalCircuit",
    "AllocationOutcome",
    "CentralizedController",
    "CircuitRequest",
    "DecentralizedAllocator",
    "mean_setup_latency",
    "success_rate",
    "FiberTrunk",
    "LightpathRackFabric",
    "RackCircuit",
    "CoveragePoint",
    "FailureScenario",
    "FiberPlanner",
    "ReconfigurationPlan",
    "ReconfigurationScheduler",
    "SwitchProgram",
    "breakeven_buffer_bytes",
    "BrokenRing",
    "RepairError",
    "RepairPlan",
    "broken_rings",
    "plan_optical_repair",
    "RouteExhausted",
    "WaferRouter",
    "WaveguideRoute",
    "SteeringPlan",
    "WavelengthAllocation",
    "effective_chip_bandwidth",
    "plan_steering",
    "static_allocation",
    "steered_allocation",
    "EngineeredTopology",
    "TopologyScore",
    "TrafficMatrix",
    "engineer_topology",
    "evaluate_topology",
    "skewed_traffic",
    "uniform_mesh",
    "Direction",
    "LightpathTile",
    "TileCoord",
    "TileSwitch",
    "FiberPort",
    "LightpathWafer",
    "WaferCapabilities",
    "WaveguideBus",
]
