"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro capabilities          # Section 3 capability report
    python -m repro figure3a              # MZI step response + fit
    python -m repro figure3b              # stitch-loss histogram
    python -m repro table1 [--buffer-mib 64]
    python -m repro table2
    python -m repro figure5               # per-slice utilization
    python -m repro figure6a              # electrical replacement attempts
    python -m repro figure7               # optical repair plan
    python -m repro blast-radius [--days 90]
    python -m repro fleet [--days 365] [--policy immediate] [--json PATH]
    python -m repro tenancy [--days 7] [--policy first-fit] [--json PATH]
    python -m repro congestion            # cross-tenant link sharing
    python -m repro simulate [--fabric photonic] [--telemetry] [--metrics PATH]
    python -m repro sweep [--jobs 4] [--no-cache] [--cache-dir DIR] [--telemetry]
    python -m repro utilization           # measured stranded bandwidth (Fig. 5c)
    python -m repro trace [--fabric photonic] [--out PATH]  # Chrome trace JSON
    python -m repro serve [--port 8421] [--jobs 2] [--workers N] [--trace-dir DIR]
    python -m repro obs merge FILE... --out PATH  # merge runtime trace files

Every subcommand builds a :class:`repro.api.ScenarioSpec` and routes
through :func:`repro.api.run`, so the CLI, the benches and the examples
all exercise the same experiment surface. ``simulate`` (and
``congestion``) accept ``--fabric`` with *any* registered backend name,
so a third-party fabric registered via
:func:`repro.api.register_backend` is reachable without touching this
module.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from . import api, kernels
from .analysis.tables import cost_row, render_histogram, render_table
from .analysis.trace_summary import render_trace_summary
from .analysis.utilization import compare_link_utilization, dimension_utilization
from .obs.metrics import MetricsRegistry

__all__ = ["main", "build_parser"]


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def _cmd_capabilities(_args: argparse.Namespace) -> int:
    result = api.run(api.ScenarioSpec(fabric="photonic", outputs=("capabilities",)))
    print(render_table(
        ["capability", "value"],
        [list(r) for r in result.capabilities],
        title="Section 3 — LIGHTPATH capabilities",
    ))
    return 0


def _device_result(seed: int) -> api.RunResult:
    return api.run(
        api.ScenarioSpec(fabric="photonic", outputs=("device",), seed=seed)
    )


def _cmd_figure3a(args: argparse.Namespace) -> int:
    device = _device_result(args.seed).device
    print(render_table(
        ["quantity", "value"],
        [
            ["fitted tau", f"{device.mzi_tau_s * 1e6:.2f} us"],
            ["settling time (5 %)", f"{device.mzi_settling_s * 1e6:.2f} us"],
            ["paper", "3.7 us"],
        ],
        title="Figure 3a — MZI switch time response",
    ))
    return 0


def _cmd_figure3b(args: argparse.Namespace) -> int:
    device = _device_result(args.seed).device
    print("Figure 3b — reticle stitch loss distribution")
    print(render_histogram(
        list(device.stitch_bin_edges_db), list(device.stitch_counts), unit=" dB"
    ))
    print(f"\nmean {device.stitch_mean_db:.3f} dB (paper: 0.25 dB), "
          f"p95 {device.stitch_p95_db:.3f} dB")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    spec = api.ScenarioSpec(
        slices=api.table1_slices(),
        buffer_bytes=args.buffer_mib * (1 << 20),
        outputs=("costs",),
    )
    results = api.compare(spec)
    electrical = results["electrical"].costs.by_name("Slice-1")
    optical = results["photonic"].costs.by_name("Slice-1")
    print(render_table(
        ["slice", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [cost_row("Slice-1 (4x2x1)", electrical.cost, optical.cost)],
        title="Table 1 — REDUCESCATTER costs of Slice-1",
    ))
    print(f"\nat N = {args.buffer_mib} MiB: electrical "
          f"{electrical.seconds * 1e3:.3f} ms, optical "
          f"{optical.seconds * 1e3:.3f} ms")
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    spec = api.ScenarioSpec(slices=api.table2_slices(), outputs=("costs",))
    results = api.compare(spec)
    electrical = results["electrical"].costs.by_name("Slice-3").stages
    optical = results["photonic"].costs.by_name("Slice-3").stages
    print(render_table(
        ["stage", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [
            cost_row("X rings (N)", electrical[0], optical[0]),
            cost_row("Y rings (N/4)", electrical[1], optical[1]),
        ],
        title="Table 2 — REDUCESCATTER costs of Slice-3 (D=2)",
    ))
    return 0


def _cmd_figure5(_args: argparse.Namespace) -> int:
    result = api.run(
        api.ScenarioSpec(slices=api.figure5b_slices(), outputs=("utilization",))
    )
    print(render_table(
        ["slice", "shape", "electrical", "optical", "loss"],
        [
            [
                u.name,
                "x".join(map(str, u.shape)),
                f"{u.electrical_fraction:.0%}",
                f"{u.optical_fraction:.0%}",
                f"{u.bandwidth_loss_percent:.0f} %",
            ]
            for u in result.utilization
        ],
        title="Figure 5c — usable per-chip bandwidth",
    ))
    return 0


def _repair_spec(fabric: str, failed: tuple[int, ...]) -> api.ScenarioSpec:
    return api.ScenarioSpec(
        fabric=fabric,
        slices=api.figure6_slices(),
        outputs=("repair",),
        failures=api.FailurePlan(failed_chips=(failed,)),
    )


def _cmd_figure6a(args: argparse.Namespace) -> int:
    failed = tuple(args.failed)
    repair = api.run(_repair_spec("electrical", failed)).repair
    print(render_table(
        ["free chip", "feasible", "congested links"],
        [
            [str(a.free_chip), "yes" if a.feasible else "no",
             str(a.congested_links)]
            for a in repair.attempts
        ],
        title=f"Figure 6a — electrical replacement of {failed}",
    ))
    print(f"\ncongestion-free replacement exists: {repair.feasible}")
    return 0 if not repair.feasible else 1


def _cmd_figure7(args: argparse.Namespace) -> int:
    repair = api.run(_repair_spec("photonic", tuple(args.failed))).repair
    print(render_table(
        ["circuit", "server path", "fibers"],
        [
            [f"{c.src} -> {c.dst}", " -> ".join(map(str, c.server_path)),
             str(c.fiber_hops)]
            for c in repair.circuits
        ],
        title=f"Figure 7 — optical repair via {repair.replacement}",
    ))
    print(f"\nsetup {repair.setup_latency_s * 1e6:.1f} us, "
          f"{repair.fibers_used} fibers, blast radius "
          f"{repair.blast_radius_chips} chip")
    return 0


def _cmd_blast_radius(args: argparse.Namespace) -> int:
    result = api.run(api.ScenarioSpec(
        fabric="photonic",
        outputs=("blast_radius",),
        failures=api.FailurePlan(fleet_days=args.days, seed=args.seed),
    ))
    rack, optical = result.blast_radius.rack_policy, result.blast_radius.optical_policy
    print(render_table(
        ["metric", rack.policy, optical.policy],
        [
            ["failures", str(rack.failures), str(optical.failures)],
            ["blast radius", str(rack.blast_radius_chips),
             str(optical.blast_radius_chips)],
            ["chip impact", str(rack.total_chip_impact),
             str(optical.total_chip_impact)],
        ],
        title=f"Section 4.2 — blast radius over {args.days} days",
    ))
    print(f"\nimprovement: {result.blast_radius.improvement_factor:.0f}x")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """A year (or ``--days``) of fleet life, electrical vs photonic."""
    if args.progress:
        # ScenarioSpec is a frozen cache key, so the progress log cannot
        # ride on the spec — it is installed process-wide for whatever
        # simulations this command runs. Cached results skip simulation
        # and therefore emit no heartbeats.
        from .fleet import set_progress_log
        from .obs.log import EventLog

        set_progress_log(EventLog(sys.stderr, level="info", source="fleet"))
    result = api.run(api.ScenarioSpec(
        fabric="photonic",
        outputs=("fleet",),
        fleet=api.FleetPlan(
            days=args.days,
            seed=args.seed,
            policy=args.policy,
            max_concurrent_migrations=args.migrations,
            spare_inventory=args.spares,
        ),
    ))
    if args.json:
        _write_json(args.json, result.to_dict())
        return 0
    report = result.fleet
    electrical, photonic = report.electrical, report.photonic

    def row(metric: str, fmt) -> list[str]:
        return [metric, fmt(electrical), fmt(photonic)]

    print(render_table(
        ["metric", "electrical", "photonic"],
        [
            row("failures", lambda r: str(r.failures)),
            row("repairs", lambda r: str(r.repairs)),
            row("mean availability",
                lambda r: f"{r.mean_availability:.9f}"),
            row("min available chips",
                lambda r: str(r.min_available_chips)),
            row("lost chip-hours",
                lambda r: f"{r.lost_chip_seconds / 3600:.1f}"),
            row("blast-radius chip-hours",
                lambda r: f"{r.collateral_chip_seconds / 3600:.1f}"),
            row("TTR p50", lambda r: f"{r.ttr_p50_s:.3g} s"),
            row("TTR p99", lambda r: f"{r.ttr_p99_s:.3g} s"),
        ],
        title=(f"Fleet reliability — {report.days:g} days, "
               f"{report.chips} chips, {report.policy} dispatch"),
    ))
    reduction = report.downtime_reduction_factor
    print(f"\navailability gap: {report.availability_gap:.3e}  "
          f"downtime reduction: "
          f"{'inf' if reduction == float('inf') else f'{reduction:.0f}x'}")
    return 0


def _cmd_tenancy(args: argparse.Namespace) -> int:
    """Days of multi-tenant churn, electrical vs photonic."""
    if args.progress:
        # ScenarioSpec is a frozen cache key, so the progress log cannot
        # ride on the spec — it is installed process-wide for whatever
        # simulations this command runs. Cached results skip simulation
        # and therefore emit no heartbeats.
        from .obs.log import EventLog
        from .tenancy import set_progress_log

        set_progress_log(EventLog(sys.stderr, level="info", source="tenancy"))
    result = api.run(api.ScenarioSpec(
        fabric="photonic",
        outputs=("tenancy",),
        tenancy=api.TenancyPlan(
            days=args.days,
            seed=args.seed,
            arrivals_per_day=args.arrivals_per_day,
            profile=args.profile,
            policy=args.policy,
            steering=not args.no_steering,
        ),
    ))
    if args.json:
        _write_json(args.json, result.to_dict())
        return 0
    report = result.tenancy
    electrical, photonic = report.electrical, report.photonic

    def row(metric: str, fmt) -> list[str]:
        return [metric, fmt(electrical), fmt(photonic)]

    print(render_table(
        ["metric", "electrical", "photonic"],
        [
            row("arrivals", lambda r: str(r.arrivals)),
            row("placed", lambda r: str(r.placed)),
            row("steered placements", lambda r: str(r.steered_placements)),
            row("rejected", lambda r: str(r.rejected)),
            row("rejection rate", lambda r: f"{r.rejection_rate:.4f}"),
            row("queue delay mean", lambda r: f"{r.queue_delay_mean_s:.1f} s"),
            row("queue delay p99", lambda r: f"{r.queue_delay_p99_s:.1f} s"),
            row("mean occupancy", lambda r: f"{r.mean_occupancy:.3f}"),
            row("stranded fraction", lambda r: f"{r.stranded_fraction:.3f}"),
            row("stranded chip-hours",
                lambda r: f"{r.stranded_chip_seconds / 3600:.1f}"),
            row("peak circuits", lambda r: str(r.circuits_peak)),
        ],
        title=(f"Tenant churn — {report.days:g} days, {report.chips} chips, "
               f"{report.policy} placement, {report.profile} arrivals"),
    ))
    factor = report.stranded_reduction_factor
    print(f"\nqueue delay gap: {report.queue_delay_gap_s:.1f} s  "
          f"rejection gap: {report.rejection_gap:.4f}  "
          f"stranded reduction: "
          f"{'inf' if factor == float('inf') else f'{factor:.1f}x'}")
    return 0


def _cmd_congestion(args: argparse.Namespace) -> int:
    result = api.run(api.ScenarioSpec(
        fabric=args.fabric,
        slices=api.figure5b_slices(),
        outputs=("congestion",),
    ))
    congestion = result.congestion
    title = f"Congestion — {result.fabric} fabric, Figure 5b layout"
    if congestion.contention_loss_fraction is not None:
        print(render_table(
            ["metric", "value"],
            [
                ["congestion free", "yes" if congestion.congestion_free else "no"],
                ["host contention loss",
                 f"{congestion.contention_loss_fraction:.0%}"],
            ],
            title=title,
        ))
        return 0
    rows = [
        [f"{s.src} -> {s.dst}", ", ".join(s.users)]
        for s in congestion.shared_links
    ]
    print(render_table(
        ["shared link", "users"],
        rows or [["(none)", "-"]],
        title=title,
    ))
    print(f"\ncongestion free: {congestion.congestion_free}, "
          f"worst multiplicity: {congestion.worst_multiplicity}")
    return 0


def _write_json(path: str, payload: dict) -> None:
    """Write deterministic JSON (sorted keys) to ``path``, or stdout for
    ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path == "-":
        sys.stdout.write(text)
    else:
        Path(path).write_text(text, encoding="utf-8")


def _cmd_simulate(args: argparse.Namespace) -> int:
    outputs = ("telemetry",)
    if args.telemetry:
        outputs = ("telemetry", "link_utilization")
    if args.metrics:
        outputs = outputs + ("metrics",)
    spec = api.ScenarioSpec(
        fabric=args.fabric,
        slices=api.figure5b_slices(),
        buffer_bytes=args.buffer_mib * (1 << 20),
        mode="sim",
        outputs=outputs,
    )
    result = api.run(spec)
    if args.metrics:
        # Simulator counters are sim-derived (flows, rebalances, sim
        # horizon), so the file is deterministic and golden-able.
        _write_json(args.metrics, result.metrics.to_dict())
    if args.telemetry:
        # Per-link observability is machine-facing: deterministic JSON
        # (sorted keys, no timing) instead of the human table.
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    telemetry = result.telemetry
    title = (f"Simulated REDUCESCATTER — {result.fabric} fabric, "
             f"{args.buffer_mib} MiB per tenant")
    if telemetry.aggregate_throughput_bytes is not None:
        print(render_table(
            ["metric", "value"],
            [
                ["aggregate throughput",
                 f"{telemetry.aggregate_throughput_bytes / 1e12:.2f} TB/s"],
                ["ideal throughput",
                 f"{telemetry.ideal_throughput_bytes / 1e12:.2f} TB/s"],
            ],
            title=title,
        ))
        return 0
    print(render_table(
        ["tenant", "duration", "transfer", "alpha", "reconfig"],
        [
            [
                entry.name,
                f"{line.duration_s * 1e3:.3f} ms",
                f"{line.transfer_s * 1e3:.3f} ms",
                f"{line.alpha_s * 1e6:.1f} us",
                f"{line.reconfig_s * 1e6:.1f} us",
            ]
            for entry, line in zip(spec.slices, telemetry.schedules)
        ],
        title=title,
    ))
    return 0


_UTILIZATION_LAYOUTS = {
    "table1": "table1_slices",
    "figure5b": "figure5b_slices",
}


def _cmd_utilization(args: argparse.Namespace) -> int:
    """Measured stranded bandwidth: electrical vs photonic, Figure 5c.

    Runs the same workload instrumented on both torus fabrics and prints
    deterministic JSON: per-dimension mean utilization and idle-link
    fractions (the electrical slice's unusable dimensions sit near 0 %
    while steering recovers them), plus the measured bandwidth-loss
    fraction — the paper's 66 % headline for Slice-1, measured rather
    than asserted.
    """
    slices = getattr(api, _UTILIZATION_LAYOUTS[args.layout])()
    outputs = ("link_utilization",)
    if args.metrics:
        outputs = outputs + ("metrics",)
    spec = api.ScenarioSpec(
        slices=slices,
        buffer_bytes=args.buffer_mib * (1 << 20),
        mode="sim",
        outputs=outputs,
    )
    results = api.compare(spec, fabrics=("electrical", "photonic"))
    if args.metrics:
        _write_json(args.metrics, {
            "electrical": results["electrical"].metrics.to_dict(),
            "photonic": results["photonic"].metrics.to_dict(),
        })
    electrical = results["electrical"].link_utilization
    photonic = results["photonic"].link_utilization
    comparison = compare_link_utilization(electrical, photonic)

    def fabric_payload(report: api.LinkUtilizationReport) -> dict:
        return {
            "horizon_s": report.horizon_s,
            "link_capacity_bytes_per_s": report.link_capacity_bytes_per_s,
            "mean_utilization": report.mean_utilization,
            "stranded_link_fraction": report.stranded_fraction,
            "busiest": [line.to_dict() for line in report.busiest()],
            "dimensions": [
                {
                    "dimension": d.dimension,
                    "links": d.links,
                    "mean_utilization": d.mean_utilization,
                    "idle_fraction": d.idle_fraction,
                }
                for d in dimension_utilization(report)
            ],
        }

    payload = {
        "layout": args.layout,
        "buffer_mib": args.buffer_mib,
        "electrical": fabric_payload(electrical),
        "photonic": fabric_payload(photonic),
        "comparison": {
            "speedup": comparison.speedup,
            "bandwidth_loss_fraction": comparison.bandwidth_loss_fraction,
            "electrical_idle_link_fraction": (
                comparison.electrical_idle_link_fraction
            ),
            "photonic_idle_link_fraction": (
                comparison.photonic_idle_link_fraction
            ),
        },
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _parse_workers(text: str) -> int:
    """Parse ``serve --workers``: 0 = single-process (no router), a
    positive integer = sharded tier size, ``auto`` = one worker per CPU."""
    if text.strip().lower() == "auto":
        return -1  # resolved to os.cpu_count() in _cmd_serve
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer or 'auto', got {text!r}"
        )
    return value


def _parse_jobs(text: str) -> int:
    """Parse a worker count: a positive integer, or ``auto`` = all CPUs.

    Validated at the argparse layer so ``--jobs 0`` and ``--jobs -4``
    produce a usage error instead of surfacing a traceback from deep
    inside the executor machinery.
    """
    if text.strip().lower() == "auto":
        return 0  # run_many's "use every CPU" sentinel
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive integer (or 'auto' for all CPUs), "
            f"got {value}"
        )
    return value


def _parse_shape(text: str) -> tuple[int, ...]:
    """Parse an ``AxBxC`` extent string into an int tuple."""
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a shape like 4x2x1, got {text!r}"
        ) from None
    if not shape or any(s < 1 for s in shape):
        raise argparse.ArgumentTypeError(
            f"shape extents must be positive, got {text!r}"
        )
    return shape


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a scenario grid on the batch engine, printing deterministic JSON.

    Stdout carries only the plan and the per-spec results — no timing, no
    cache counters — so the output is byte-identical whether the sweep ran
    serially, on ``--jobs N`` workers, or entirely from a warm cache (CI
    diffs serial vs parallel output to hold the engine to this). Timing
    goes to stderr as one JSON object per spec (machine-parseable: spec
    index, fabric, content key, elapsed seconds, cache provenance, worker
    pid) followed by one human summary line; ``--metrics PATH`` addition-
    ally writes the sweep's own stage timing as a metrics snapshot.
    """
    plan_kwargs = {}
    if args.fabrics:
        plan_kwargs["fabrics"] = tuple(args.fabrics)
    if args.slice_shapes:
        plan_kwargs["slice_shapes"] = tuple(args.slice_shapes)
    if args.buffer_mib:
        plan_kwargs["buffer_bytes"] = tuple(
            mib * (1 << 20) for mib in args.buffer_mib
        )
    outputs = tuple(args.outputs) if args.outputs else ("costs",)
    mode = "closed_form"
    if args.telemetry:
        outputs = tuple(
            dict.fromkeys(outputs + ("telemetry", "link_utilization"))
        )
        mode = "sim"
    plan = api.SweepPlan(
        rack_shape=args.rack_shape,
        outputs=outputs,
        mode=mode,
        **plan_kwargs,
    )
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = api.default_cache_dir()
    registry = MetricsRegistry() if args.metrics else None
    sweep = api.run_many(
        plan.specs(),
        jobs=args.jobs,
        cache_dir=cache_dir,
        no_cache=args.no_cache,
        metrics=registry,
    )
    payload = {"plan": plan.to_dict(), **sweep.to_dict(include_timing=False)}
    print(json.dumps(payload, indent=2, sort_keys=True))
    if registry is not None:
        # Wall-clock stage timing — reproducible in shape, not in value,
        # so it goes to a side file rather than the deterministic stdout.
        _write_json(args.metrics, registry.snapshot())
    # One machine-readable timing record per spec, then one human line:
    # scripts parse every stderr line but the last as JSON.
    for record in sweep.timing_records():
        print(json.dumps(record, sort_keys=True), file=sys.stderr)
    stats = sweep.cache_stats
    print(
        f"swept {plan.size} specs ({sweep.unique_specs} unique) in "
        f"{sweep.wall_clock_s:.3f} s with {sweep.jobs} job(s); "
        f"cache: {stats.hits} hits, {stats.misses} misses",
        file=sys.stderr,
    )
    return 0


_TRACE_LAYOUTS = {
    "figure6": "figure6_slices",
    "figure5b": "figure5b_slices",
}


def _parse_categories(text: str) -> tuple[str, ...]:
    """Parse a comma-separated category list."""
    categories = tuple(part.strip() for part in text.split(",") if part.strip())
    if not categories:
        raise argparse.ArgumentTypeError(
            f"expected a category list like schedule,phase, got {text!r}"
        )
    return categories


def _cmd_trace(args: argparse.Namespace) -> int:
    """Export a simulated run as Chrome/Perfetto ``trace_event`` JSON.

    The timeline tells the paper's failure-recovery story end to end: the
    multi-tenant workload's schedules, phase boundaries and 3.7 us switch
    reconfigurations on their own tracks, then (unless ``--no-failure``)
    the injected chip failure and the fabric's recovery — replacement
    attempts and rack migration on the electrical fabric (Figure 6),
    MZI reconfigurations and the optical repair on the photonic one
    (Figure 7). Timestamps are simulated time, so the file is
    deterministic; open it at ``ui.perfetto.dev`` or ``chrome://tracing``.
    A human summary goes to stderr.
    """
    kwargs = {}
    if not args.no_failure:
        kwargs["failures"] = api.FailurePlan(
            failed_chips=(tuple(args.failed),)
        )
    spec = api.ScenarioSpec(
        fabric=args.fabric,
        slices=getattr(api, _TRACE_LAYOUTS[args.layout])(),
        buffer_bytes=args.buffer_mib * (1 << 20),
        mode="sim",
        outputs=("trace",),
        **kwargs,
    )
    report = api.run(spec).trace
    if args.categories:
        unknown = sorted(set(args.categories) - set(report.categories()))
        if unknown:
            raise ValueError(
                f"unknown trace categories {unknown}; this trace has "
                f"{list(report.categories())}"
            )
        report = report.filtered(args.categories)
    _write_json(args.out, report.to_chrome())
    where = "stdout" if args.out == "-" else args.out
    print(
        f"traced {spec.fabric} fabric, {args.layout} layout -> {where}",
        file=sys.stderr,
    )
    print(render_trace_summary(report), file=sys.stderr)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Observability utilities (currently: merge runtime trace files).

    ``repro obs merge`` combines the per-process runtime trace files a
    traced serving tier leaves behind (``router-<pid>.trace.json`` plus
    one ``w<slot>-<pid>.trace.json`` per worker) into a single
    Chrome/Perfetto timeline. Each process keeps its own ``pid`` track,
    and spans carry the request's ``trace_id`` in their args, so one
    request's router hop and worker evaluation line up side by side.
    """
    from .obs.runtime import write_merged

    if args.action == "merge":
        missing = [path for path in args.files if not Path(path).is_file()]
        if missing:
            raise ValueError(f"no such trace file: {missing[0]}")
        out, count = write_merged(args.files, args.out)
        print(
            f"merged {len(args.files)} trace file(s), {count} event(s) "
            f"-> {out}",
            file=sys.stderr,
        )
        return 0
    raise ValueError(f"unknown obs action {args.action!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the evaluation service until SIGTERM/SIGINT.

    ``POST /v1/evaluate`` bodies are ``ScenarioSpec`` JSON; responses
    are the exact ``RunResult`` JSON the CLI prints for the same spec.
    ``GET /healthz`` and ``GET /metrics`` expose liveness and the
    service's metrics registry. With ``--workers N`` the process becomes
    a shard router instead: it spawns and supervises N single-process
    workers, routes by consistent-hashed spec key, and coalesces
    identical in-flight specs — same routes, same bytes. See
    ``repro.serve`` for the batching, admission-control, priority and
    drain semantics.
    """
    from .serve import ServerConfig, ShardConfig, run_server, run_sharded

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=jobs,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        queue_limit=args.queue_limit,
        batch_shed_fraction=args.batch_shed_fraction,
        request_timeout_s=args.timeout_s,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        trace_dir=args.trace_dir,
        trace_name=args.trace_name,
        log_level=args.log_level,
    )
    workers = args.workers if args.workers >= 0 else (os.cpu_count() or 1)
    if workers == 0:
        return run_server(config)
    return run_sharded(
        ShardConfig(
            workers=workers,
            host=args.host,
            port=args.port,
            worker=config,
        )
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce results from 'A case for server-scale "
        "photonic connectivity' (HotNets '24).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    parser.add_argument(
        "--kernel",
        choices=kernels.KERNELS,
        default=None,
        help="evaluation kernel backend (default: $REPRO_KERNEL, else "
        f"{kernels.DEFAULT_KERNEL}); results are byte-identical either way",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("capabilities", help="Section 3 capability report")

    p3a = sub.add_parser("figure3a", help="MZI step response + fit")
    p3a.add_argument("--seed", type=int, default=42)

    p3b = sub.add_parser("figure3b", help="stitch-loss histogram")
    p3b.add_argument("--seed", type=int, default=42)

    p_t1 = sub.add_parser("table1", help="Slice-1 REDUCESCATTER costs")
    p_t1.add_argument("--buffer-mib", type=int, default=64)

    sub.add_parser("table2", help="Slice-3 staged costs")
    sub.add_parser("figure5", help="per-slice bandwidth utilization")

    p6a = sub.add_parser("figure6a", help="electrical replacement attempts")
    p6a.add_argument("--failed", type=int, nargs=3, default=[1, 2, 0])

    p7 = sub.add_parser("figure7", help="optical repair plan")
    p7.add_argument("--failed", type=int, nargs=3, default=[1, 2, 0])

    pbr = sub.add_parser("blast-radius", help="fleet blast-radius comparison")
    pbr.add_argument("--days", type=int, default=90)
    pbr.add_argument("--seed", type=int, default=2024)

    pfl = sub.add_parser(
        "fleet",
        help="year-scale fleet reliability simulation, electrical vs "
        "photonic",
    )
    pfl.add_argument("--days", type=float, default=365.0)
    pfl.add_argument("--seed", type=int, default=0)
    pfl.add_argument(
        "--policy", choices=("immediate", "lazy", "batched"),
        default="immediate",
        help="repair-dispatch policy (default: immediate)",
    )
    pfl.add_argument(
        "--migrations", type=int, default=4, metavar="K",
        help="concurrent rack migrations allowed (electrical budget)",
    )
    pfl.add_argument(
        "--spares", type=int, default=8, metavar="N",
        help="spare chips stocked per rack (photonic budget)",
    )
    pfl.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full result as deterministic JSON to PATH "
        "('-' = stdout) instead of the table",
    )
    pfl.add_argument(
        "--progress", action="store_true",
        help="emit fleet.progress heartbeat events (JSONL on stderr) at "
        "10 sim-time checkpoints per simulation; results stay "
        "byte-identical",
    )

    ptn = sub.add_parser(
        "tenancy",
        help="multi-tenant churn simulation (job arrivals, placement, "
        "fragmentation), electrical vs photonic",
    )
    ptn.add_argument("--days", type=float, default=7.0)
    ptn.add_argument("--seed", type=int, default=0)
    ptn.add_argument(
        "--arrivals-per-day", type=float, default=1500.0, metavar="RATE",
        help="mean job arrival rate (default: 1500)",
    )
    ptn.add_argument(
        "--profile", choices=("poisson", "burst", "trace"),
        default="poisson",
        help="arrival profile (default: poisson)",
    )
    ptn.add_argument(
        "--policy", choices=("first-fit", "best-fit", "defrag"),
        default="first-fit",
        help="placement policy both fabrics run (default: first-fit); "
        "wavelength steering upgrades the photonic run on top",
    )
    ptn.add_argument(
        "--no-steering", action="store_true",
        help="disable the photonic run's wavelength steering (isolates "
        "the placement policy from the fabric's flexibility)",
    )
    ptn.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full result as deterministic JSON to PATH "
        "('-' = stdout) instead of the table",
    )
    ptn.add_argument(
        "--progress", action="store_true",
        help="emit tenancy.progress heartbeat events (JSONL on stderr) at "
        "10 sim-time checkpoints per simulation; results stay "
        "byte-identical",
    )

    pcg = sub.add_parser("congestion", help="cross-tenant link sharing")
    pcg.add_argument("--fabric", default="electrical")

    psim = sub.add_parser("simulate", help="measured collective durations")
    psim.add_argument("--fabric", default="photonic")
    psim.add_argument("--buffer-mib", type=int, default=64)
    psim.add_argument(
        "--telemetry", action="store_true",
        help="also measure per-link utilization and print the full result "
        "as deterministic JSON (torus fabrics only)",
    )
    psim.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also compute simulator counters and write them as "
        "deterministic JSON to PATH ('-' = stdout)",
    )

    put = sub.add_parser(
        "utilization",
        help="measured stranded bandwidth, electrical vs photonic "
        "(Figure 5c from the simulator)",
    )
    put.add_argument(
        "--layout", choices=sorted(_UTILIZATION_LAYOUTS), default="table1",
        help="tenant layout: table1 = Slice-1 alone (the 66 %% story), "
        "figure5b = the four-tenant rack",
    )
    put.add_argument("--buffer-mib", type=int, default=64)
    put.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also write both fabrics' simulator counters as deterministic "
        "JSON to PATH ('-' = stdout)",
    )

    psw = sub.add_parser(
        "sweep",
        help="grid sweep (fabrics x slice shapes x buffer sizes), "
        "parallel and cached",
    )
    psw.add_argument(
        "--fabric", action="append", dest="fabrics", metavar="NAME",
        help="backend to sweep (repeatable; default: electrical, photonic)",
    )
    psw.add_argument(
        "--slice-shape", action="append", dest="slice_shapes",
        type=_parse_shape, metavar="AxBxC",
        help="slice shape to sweep (repeatable; default: 4x2x1 4x4x1 4x4x2)",
    )
    psw.add_argument(
        "--buffer-mib", action="append", type=int, metavar="MIB",
        help="buffer size in MiB (repeatable; default: 64)",
    )
    psw.add_argument(
        "--rack-shape", type=_parse_shape, default=(4, 4, 4), metavar="AxBxC"
    )
    psw.add_argument(
        "--outputs", action="append", choices=api.KNOWN_OUTPUTS,
        help="result section to compute (repeatable; default: costs)",
    )
    psw.add_argument(
        "--jobs", type=_parse_jobs, default=1, metavar="N",
        help="worker processes, a positive integer or 'auto' for all "
        "CPUs (default: 1, serial)",
    )
    psw.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache (reads and writes)",
    )
    psw.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location (default: ~/.cache/repro)",
    )
    psw.add_argument(
        "--telemetry", action="store_true",
        help="run on the simulator and add the telemetry + link_utilization "
        "sections to every spec",
    )
    psw.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the sweep's own instrumentation (per-stage timing, "
        "cache counters) as a metrics snapshot to PATH",
    )

    ptr = sub.add_parser(
        "trace",
        help="export a simulated failure-recovery timeline as "
        "Chrome/Perfetto trace_event JSON",
    )
    ptr.add_argument("--fabric", default="photonic")
    ptr.add_argument(
        "--layout", choices=sorted(_TRACE_LAYOUTS), default="figure6",
        help="tenant layout: figure6 = the repair story's three tenants, "
        "figure5b = the four-tenant rack",
    )
    ptr.add_argument(
        "--failed", type=int, nargs=3, default=[1, 2, 0],
        help="chip whose failure + recovery to trace at the workload horizon",
    )
    ptr.add_argument(
        "--no-failure", action="store_true",
        help="trace the workload only, without failure injection",
    )
    ptr.add_argument("--buffer-mib", type=int, default=64)
    ptr.add_argument(
        "--categories", type=_parse_categories, default=None,
        metavar="CAT[,CAT...]",
        help="keep only these event categories (e.g. "
        "schedule,phase,reconfig,failure,recovery); default: all",
    )
    ptr.add_argument(
        "--out", default="-", metavar="PATH",
        help="write the trace JSON here ('-' = stdout); open in "
        "ui.perfetto.dev or chrome://tracing",
    )

    psv = sub.add_parser(
        "serve",
        help="run the asyncio evaluation service (JSON over HTTP, "
        "micro-batched, drains cleanly on SIGTERM)",
    )
    psv.add_argument("--host", default="127.0.0.1")
    psv.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (0 = ephemeral; default: 8421)",
    )
    psv.add_argument(
        "--workers", type=_parse_workers, default=0, metavar="N",
        help="shard the service: spawn and supervise N worker processes "
        "behind a consistent-hash router ('auto' = one per CPU; "
        "default: 0 = single process, no router)",
    )
    psv.add_argument(
        "--jobs", type=_parse_jobs, default=2, metavar="N",
        help="persistent evaluation sessions per process, a positive "
        "integer or 'auto' for all CPUs (default: 2)",
    )
    psv.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="requests coalesced into one evaluation batch (default: 8)",
    )
    psv.add_argument(
        "--linger-ms", type=float, default=2.0, metavar="MS",
        help="how long the batcher waits for a batch to fill (default: 2)",
    )
    psv.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admission queue bound; overflow answers 429 (default: 64)",
    )
    psv.add_argument(
        "--batch-shed-fraction", type=float, default=0.5, metavar="F",
        help="fraction of the queue bound past which X-Repro-Priority: "
        "batch requests are shed with 429 while interactive ones are "
        "still admitted (default: 0.5)",
    )
    psv.add_argument(
        "--timeout-s", type=float, default=60.0, metavar="S",
        help="per-request evaluation deadline; exceeding it answers 504 "
        "(default: 60)",
    )
    psv.add_argument(
        "--no-cache", action="store_true",
        help="run without the persistent result cache",
    )
    psv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location (default: ~/.cache/repro)",
    )
    psv.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="cap the disk cache at N entries, pruned oldest-first",
    )
    psv.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="cap the disk cache payload bytes, pruned oldest-first",
    )
    psv.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="enable runtime tracing: each process writes a Chrome "
        "trace_event JSON file here on drain (merge with 'repro obs "
        "merge'); default: off, zero overhead",
    )
    psv.add_argument(
        "--trace-name", default=None, metavar="NAME",
        help="trace/log source name for this process (default: 'serve', "
        "or assigned by the router for sharded workers)",
    )
    psv.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="structured JSONL event-log threshold on stderr "
        "(default: info)",
    )

    pob = sub.add_parser(
        "obs",
        help="observability utilities for runtime traces",
    )
    pob.add_argument(
        "action", choices=("merge",),
        help="merge: combine per-process *.trace.json files into one "
        "Perfetto timeline",
    )
    pob.add_argument(
        "files", nargs="+", metavar="FILE",
        help="runtime trace files written by 'repro serve --trace-dir'",
    )
    pob.add_argument(
        "--out", required=True, metavar="PATH",
        help="write the merged Chrome trace_event JSON here",
    )

    return parser


_HANDLERS = {
    "capabilities": _cmd_capabilities,
    "figure3a": _cmd_figure3a,
    "figure3b": _cmd_figure3b,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure5": _cmd_figure5,
    "figure6a": _cmd_figure6a,
    "figure7": _cmd_figure7,
    "blast-radius": _cmd_blast_radius,
    "congestion": _cmd_congestion,
    "fleet": _cmd_fleet,
    "tenancy": _cmd_tenancy,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "utilization": _cmd_utilization,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.kernel is not None:
        # Exported via the environment so sweep worker processes inherit
        # the selection too.
        kernels.set_default_kernel(args.kernel)
    try:
        return _HANDLERS[args.command](args)
    except (KeyError, ValueError, api.UnsupportedOutput) as exc:
        # Unknown --fabric name, invalid spec (e.g. a failed chip outside
        # the rack), or an output the backend cannot produce.
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
