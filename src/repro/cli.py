"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro capabilities          # Section 3 capability report
    python -m repro figure3a              # MZI step response + fit
    python -m repro figure3b              # stitch-loss histogram
    python -m repro table1 [--buffer-mib 64]
    python -m repro table2
    python -m repro figure5               # per-slice utilization
    python -m repro figure6a              # electrical replacement attempts
    python -m repro figure7               # optical repair plan
    python -m repro blast-radius [--days 90]

Every subcommand prints the same tables the benchmark harness emits, so
results can be regenerated without pytest.
"""

from __future__ import annotations

import argparse

import numpy as np

from .analysis.tables import cost_row, render_histogram, render_table
from .analysis.utilization import figure5b_layout, rack_utilization
from .collectives.cost_model import CostParameters
from .collectives.primitives import (
    Interconnect,
    reduce_scatter_cost,
    reduce_scatter_stage_costs,
)
from .core.fabric import LightpathRackFabric
from .core.repair import plan_optical_repair
from .core.wafer import LightpathWafer
from .failures.blast_radius import compare_policies, improvement_factor
from .failures.inject import FleetFailureModel
from .failures.recovery import ElectricalRecoveryAnalysis
from .phy.mzi import MziSwitchDynamics
from .phy.stitch_loss import StitchLossModel
from .topology.slices import SliceAllocator
from .topology.tpu import TpuCluster, TpuRack
from .topology.torus import Torus

__all__ = ["main", "build_parser"]


def _cmd_capabilities(_args: argparse.Namespace) -> int:
    wafer = LightpathWafer()
    print(render_table(
        ["capability", "value"],
        [list(r) for r in wafer.capabilities().rows()],
        title="Section 3 — LIGHTPATH capabilities",
    ))
    return 0


def _cmd_figure3a(args: argparse.Namespace) -> int:
    dynamics = MziSwitchDynamics(rng=np.random.default_rng(args.seed))
    trace = dynamics.measure_step(duration_s=12e-6, samples=4000)
    fit = dynamics.fit_exponential(trace)
    print(render_table(
        ["quantity", "value"],
        [
            ["fitted tau", f"{fit.tau_s * 1e6:.2f} us"],
            ["settling time (5 %)", f"{fit.settling_time(0.05) * 1e6:.2f} us"],
            ["paper", "3.7 us"],
        ],
        title="Figure 3a — MZI switch time response",
    ))
    return 0


def _cmd_figure3b(args: argparse.Namespace) -> int:
    model = StitchLossModel(rng=np.random.default_rng(args.seed))
    hist = model.histogram(samples=20000, bins=24)
    print("Figure 3b — reticle stitch loss distribution")
    print(render_histogram(list(hist.bin_edges_db), list(hist.counts), unit=" dB"))
    print(f"\nmean {hist.mean_db:.3f} dB (paper: 0.25 dB), "
          f"p95 {hist.p95_db:.3f} dB")
    return 0


def _slice(name: str, shape: tuple[int, ...], offset: tuple[int, ...]):
    allocator = SliceAllocator(Torus((4, 4, 4)))
    return allocator.allocate(name, shape, offset)


def _cmd_table1(args: argparse.Namespace) -> int:
    slice1 = _slice("Slice-1", (4, 2, 1), (0, 0, 3))
    electrical = reduce_scatter_cost(slice1, Interconnect.ELECTRICAL)
    optical = reduce_scatter_cost(slice1, Interconnect.OPTICAL)
    print(render_table(
        ["slice", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [cost_row("Slice-1 (4x2x1)", electrical, optical)],
        title="Table 1 — REDUCESCATTER costs of Slice-1",
    ))
    n_bytes = args.buffer_mib * (1 << 20)
    params = CostParameters()
    print(f"\nat N = {args.buffer_mib} MiB: electrical "
          f"{electrical.seconds(n_bytes, params) * 1e3:.3f} ms, optical "
          f"{optical.seconds(n_bytes, params) * 1e3:.3f} ms")
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    slice3 = _slice("Slice-3", (4, 4, 1), (0, 0, 0))
    electrical = reduce_scatter_stage_costs(slice3, Interconnect.ELECTRICAL)
    optical = reduce_scatter_stage_costs(slice3, Interconnect.OPTICAL)
    print(render_table(
        ["stage", "elec a", "optics a", "elec b", "optics b", "ratio"],
        [
            cost_row("X rings (N)", electrical[0], optical[0]),
            cost_row("Y rings (N/4)", electrical[1], optical[1]),
        ],
        title="Table 2 — REDUCESCATTER costs of Slice-3 (D=2)",
    ))
    return 0


def _cmd_figure5(_args: argparse.Namespace) -> int:
    rows = rack_utilization(figure5b_layout())
    print(render_table(
        ["slice", "shape", "electrical", "optical", "loss"],
        [
            [
                u.name,
                "x".join(map(str, u.shape)),
                f"{u.electrical_fraction:.0%}",
                f"{u.optical_fraction:.0%}",
                f"{u.bandwidth_loss_percent:.0f} %",
            ]
            for u in rows
        ],
        title="Figure 5c — usable per-chip bandwidth",
    ))
    return 0


def _figure6_scenario():
    rack = TpuRack(0)
    allocator = SliceAllocator(rack.torus)
    slice3 = allocator.allocate("Slice-3", (4, 4, 1), (0, 0, 0))
    allocator.allocate("Slice-4", (4, 4, 2), (0, 0, 1))
    allocator.allocate("Slice-1", (4, 2, 1), (0, 0, 3))
    return rack, allocator, slice3


def _cmd_figure6a(args: argparse.Namespace) -> int:
    rack, allocator, slice3 = _figure6_scenario()
    failed = tuple(args.failed)
    analysis = ElectricalRecoveryAnalysis(rack.torus, allocator, max_hops=5)
    attempts = analysis.evaluate_all_free_chips(slice3, failed)
    print(render_table(
        ["free chip", "feasible", "congested links"],
        [
            [str(a.free_chip), "yes" if a.feasible else "no",
             str(a.total_congested_links)]
            for a in attempts
        ],
        title=f"Figure 6a — electrical replacement of {failed}",
    ))
    feasible = any(a.feasible for a in attempts)
    print(f"\ncongestion-free replacement exists: {feasible}")
    return 0 if not feasible else 1


def _cmd_figure7(args: argparse.Namespace) -> int:
    rack, allocator, slice3 = _figure6_scenario()
    fabric = LightpathRackFabric(rack)
    plan = plan_optical_repair(fabric, allocator, slice3, tuple(args.failed))
    print(render_table(
        ["circuit", "server path", "fibers"],
        [
            [f"{c.src} -> {c.dst}", " -> ".join(map(str, c.server_path)),
             str(c.fiber_hops)]
            for c in plan.circuits
        ],
        title=f"Figure 7 — optical repair via {plan.replacement}",
    ))
    print(f"\nsetup {plan.setup_latency_s * 1e6:.1f} us, "
          f"{plan.fibers_used} fibers, blast radius "
          f"{plan.blast_radius_chips} chip")
    return 0


def _cmd_blast_radius(args: argparse.Namespace) -> int:
    cluster = TpuCluster()
    events = FleetFailureModel(cluster, seed=args.seed).sample_failures(
        args.days * 24 * 3600.0
    )
    rack_report, optical_report = compare_policies(events)
    print(render_table(
        ["metric", rack_report.policy, optical_report.policy],
        [
            ["failures", str(rack_report.failures), str(optical_report.failures)],
            ["blast radius", str(rack_report.blast_radius_chips),
             str(optical_report.blast_radius_chips)],
            ["chip impact", str(rack_report.total_chip_impact),
             str(optical_report.total_chip_impact)],
        ],
        title=f"Section 4.2 — blast radius over {args.days} days",
    ))
    print(f"\nimprovement: {improvement_factor(rack_report, optical_report):.0f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce results from 'A case for server-scale "
        "photonic connectivity' (HotNets '24).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("capabilities", help="Section 3 capability report")

    p3a = sub.add_parser("figure3a", help="MZI step response + fit")
    p3a.add_argument("--seed", type=int, default=42)

    p3b = sub.add_parser("figure3b", help="stitch-loss histogram")
    p3b.add_argument("--seed", type=int, default=42)

    p_t1 = sub.add_parser("table1", help="Slice-1 REDUCESCATTER costs")
    p_t1.add_argument("--buffer-mib", type=int, default=64)

    sub.add_parser("table2", help="Slice-3 staged costs")
    sub.add_parser("figure5", help="per-slice bandwidth utilization")

    p6a = sub.add_parser("figure6a", help="electrical replacement attempts")
    p6a.add_argument("--failed", type=int, nargs=3, default=[1, 2, 0])

    p7 = sub.add_parser("figure7", help="optical repair plan")
    p7.add_argument("--failed", type=int, nargs=3, default=[1, 2, 0])

    pbr = sub.add_parser("blast-radius", help="fleet blast-radius comparison")
    pbr.add_argument("--days", type=int, default=90)
    pbr.add_argument("--seed", type=int, default=2024)

    return parser


_HANDLERS = {
    "capabilities": _cmd_capabilities,
    "figure3a": _cmd_figure3a,
    "figure3b": _cmd_figure3b,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure5": _cmd_figure5,
    "figure6a": _cmd_figure6a,
    "figure7": _cmd_figure7,
    "blast-radius": _cmd_blast_radius,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
