"""A thin blocking client for the evaluation service.

Wraps stdlib :mod:`http.client` — no dependencies, usable from tests,
benchmarks and notebooks alike::

    from repro.serve import ServeClient

    client = ServeClient(port=8421)
    result = client.evaluate(spec)          # a typed RunResult
    raw = client.evaluate_bytes(spec)       # the exact response bytes

``evaluate_bytes`` exists because the service's contract is byte-level:
the response body is exactly the JSON the CLI would print for the same
spec, and the tests/CI compare bytes, not parsed trees.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any

from ..api.result import RunResult
from ..api.spec import ScenarioSpec
from . import wire

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A non-200 answer from the service.

    Attributes:
        status: HTTP status code.
        code: machine-readable error code from the JSON envelope
            (``queue_full``, ``bad_spec``, ``timeout``, ...).
        retry_after_s: parsed ``Retry-After`` header, when present.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class ServeClient:
    """Blocking JSON-over-HTTP client; one connection per call.

    Evaluations are deterministic and idempotent, so the client retries
    transparently when the serving tier is mid-restart: a refused/reset
    connection or a ``502`` from the shard router (its worker died and
    is being respawned) is retried up to ``retries`` times with a short
    backoff before surfacing the error.

    Attributes:
        host: server host.
        port: server port.
        timeout_s: socket timeout per request.
        retries: extra attempts after a connection failure or 502.
        retry_backoff_s: sleep between attempts.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        timeout_s: float = 120.0,
        retries: int = 2,
        retry_backoff_s: float = 0.1,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

    # -- transport ---------------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            fields = {"Content-Type": "application/json"} if body else {}
            fields.update(headers or {})
            connection.request(method, path, body=body, headers=fields)
            response = connection.getresponse()
            payload = response.read()
            replied = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, replied, payload
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        attempts = max(0, self.retries) + 1
        last_exc: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.retry_backoff_s)
            try:
                status, fields, payload = self._request_once(
                    method, path, body, headers
                )
            except (ConnectionError, http.client.RemoteDisconnected) as exc:
                last_exc = exc
                continue
            if status == 502 and attempt < attempts - 1:
                # The router lost its worker mid-request; it respawns the
                # slot in the background — the evaluation is idempotent,
                # so just ask again.
                continue
            return status, fields, payload
        raise ConnectionError(
            f"server at {self.host}:{self.port} unreachable after "
            f"{attempts} attempt(s)"
        ) from last_exc

    @staticmethod
    def _raise_for_status(
        status: int, headers: dict[str, str], payload: bytes
    ) -> None:
        if status == 200:
            return
        code, message = "unknown", payload.decode("utf-8", "replace").strip()
        try:
            envelope = json.loads(payload)["error"]
            code, message = envelope["code"], envelope["message"]
        except (ValueError, KeyError, TypeError):
            pass
        retry_after = None
        if "retry-after" in headers:
            try:
                retry_after = float(headers["retry-after"])
            except ValueError:
                pass
        raise ServeError(status, code, message, retry_after_s=retry_after)

    # -- API ---------------------------------------------------------------------

    def evaluate_response(
        self,
        spec: ScenarioSpec | dict[str, Any],
        priority: str | None = None,
        trace_id: str | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Raw ``POST /v1/evaluate``: status, headers, body — no raising.

        ``priority`` (``interactive`` | ``batch``) is sent as the
        ``X-Repro-Priority`` header; ``None`` sends no header and the
        server assumes ``interactive``. ``trace_id`` is sent as the
        ``X-Repro-Trace-Id`` header — the server echoes it back and
        stamps it on every span the request leaves in the tier's
        runtime traces.
        """
        payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        body = json.dumps(payload, sort_keys=True).encode()
        headers: dict[str, str] = {}
        if priority is not None:
            headers[wire.PRIORITY_HEADER] = priority
        if trace_id is not None:
            headers[wire.TRACE_HEADER] = trace_id
        return self._request(
            "POST", "/v1/evaluate", body, headers or None
        )

    def evaluate_bytes(
        self,
        spec: ScenarioSpec | dict[str, Any],
        priority: str | None = None,
        trace_id: str | None = None,
    ) -> bytes:
        """The exact response body for ``spec``.

        Raises:
            ServeError: on any non-200 status.
        """
        status, headers, payload = self.evaluate_response(
            spec, priority, trace_id
        )
        self._raise_for_status(status, headers, payload)
        return payload

    def evaluate(
        self,
        spec: ScenarioSpec | dict[str, Any],
        priority: str | None = None,
        trace_id: str | None = None,
    ) -> RunResult:
        """Evaluate ``spec`` into a typed :class:`RunResult`."""
        return RunResult.from_json(
            self.evaluate_bytes(spec, priority, trace_id).decode("utf-8")
        )

    def healthz(self) -> dict[str, Any]:
        """The ``/healthz`` payload."""
        status, headers, payload = self._request("GET", "/healthz")
        self._raise_for_status(status, headers, payload)
        return json.loads(payload)

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` payload."""
        status, headers, payload = self._request("GET", "/metrics")
        self._raise_for_status(status, headers, payload)
        return json.loads(payload)

    def metrics_text(self) -> str:
        """The ``/metrics?format=prometheus`` text exposition."""
        status, headers, payload = self._request(
            "GET", "/metrics?format=prometheus"
        )
        self._raise_for_status(status, headers, payload)
        return payload.decode("utf-8")

    def wait_until_ready(self, deadline_s: float = 30.0) -> dict[str, Any]:
        """Poll ``/healthz`` until the server answers.

        Returns:
            The first health payload received.

        Raises:
            TimeoutError: when the server does not answer in time.
        """
        deadline = time.monotonic() + deadline_s
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ConnectionError, socket.timeout, OSError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready after {deadline_s} s"
        ) from last_error
