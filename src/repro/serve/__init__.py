"""``repro.serve`` — the asyncio evaluation service.

A long-lived JSON-over-HTTP front end to the experiment API:
``POST /v1/evaluate`` takes a :class:`~repro.api.spec.ScenarioSpec`
body, a micro-batcher coalesces concurrent requests into
:func:`~repro.api.batch.run_many` calls on a pool of persistent
:class:`~repro.api.session.FabricSession`\\ s sharing one
:class:`~repro.api.cache.DiskResultCache`, and the response body is the
exact ``RunResult`` JSON the CLI would print for the same spec.
Admission is bounded (429 + ``Retry-After`` on overflow), every request
has a deadline (504), and SIGTERM drains every accepted request before
the process exits. ``GET /healthz`` and ``GET /metrics`` expose
liveness and the :class:`~repro.obs.metrics.MetricsRegistry`.

Start it with ``python -m repro serve`` (see ``--help``), drive it with
:class:`ServeClient`, or embed it in-process with :class:`ServerThread`.
"""

from .client import ServeClient, ServeError
from .service import (
    DEFAULT_PORT,
    EvaluationService,
    QueueFull,
    ReproServer,
    ServerConfig,
    ServerThread,
    ShuttingDown,
    run_server,
)

__all__ = [
    "DEFAULT_PORT",
    "ServerConfig",
    "EvaluationService",
    "ReproServer",
    "ServerThread",
    "run_server",
    "QueueFull",
    "ShuttingDown",
    "ServeClient",
    "ServeError",
]
