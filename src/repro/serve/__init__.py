"""``repro.serve`` — the asyncio evaluation service, single or sharded.

A long-lived JSON-over-HTTP front end to the experiment API:
``POST /v1/evaluate`` takes a :class:`~repro.api.spec.ScenarioSpec`
body, a micro-batcher coalesces concurrent requests into
:func:`~repro.api.batch.run_many` calls on a pool of persistent
:class:`~repro.api.session.FabricSession`\\ s sharing one
:class:`~repro.api.cache.DiskResultCache`, and the response body is the
exact ``RunResult`` JSON the CLI would print for the same spec.
Admission is bounded (429 + ``Retry-After`` on overflow) with
``batch``-priority requests shed first under overload
(``X-Repro-Priority``), every request has a deadline (504), and SIGTERM
drains every accepted request before the process exits. ``GET /healthz``
and ``GET /metrics`` expose liveness and the
:class:`~repro.obs.metrics.MetricsRegistry`.

``repro serve --workers N`` scales the same service horizontally: a
:class:`~repro.serve.shard.ShardRouter` front end spawns and supervises
N worker processes, routes by consistent-hashed spec key so each
worker's caches stay hot (:class:`~repro.serve.shard.HashRing`),
coalesces identical in-flight specs into one evaluation
(``X-Repro-Coalesced``), and fails over along the ring when a worker is
mid-restart — answering byte-identically to the single-process service
throughout.

Start it with ``python -m repro serve`` (see ``--help``), drive it with
:class:`ServeClient`, or embed it in-process with :class:`ServerThread`
/ :class:`ShardThread`.
"""

from .client import ServeClient, ServeError
from .service import (
    DEFAULT_PORT,
    EvaluateRequestError,
    EvaluationService,
    QueueFull,
    ReproServer,
    ServerConfig,
    ServerThread,
    ShuttingDown,
    parse_evaluate_request,
    run_server,
)
from .shard import (
    HashRing,
    ShardConfig,
    ShardRouter,
    ShardThread,
    SubprocessWorkers,
    WorkerUnavailable,
    run_sharded,
)

__all__ = [
    "DEFAULT_PORT",
    "ServerConfig",
    "EvaluationService",
    "ReproServer",
    "ServerThread",
    "run_server",
    "QueueFull",
    "ShuttingDown",
    "EvaluateRequestError",
    "parse_evaluate_request",
    "ServeClient",
    "ServeError",
    "HashRing",
    "ShardConfig",
    "ShardRouter",
    "ShardThread",
    "SubprocessWorkers",
    "WorkerUnavailable",
    "run_sharded",
]
