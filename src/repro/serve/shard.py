"""The sharded serving tier: a router front end over N worker processes.

One :mod:`repro.serve` process tops out at one core's worth of serving
work. This module grows it horizontally without giving up any of the
single-process contracts (byte-identical responses, bounded admission,
graceful drain):

* **Worker supervision** — the router spawns ``--workers`` subprocesses,
  each running today's single-process service (``python -m repro serve``)
  on an ephemeral port with its own cache namespace
  (``<cache-dir>/worker-<slot>``), and respawns any worker that exits
  unexpectedly onto the *same slot*, so its disk cache stays hot across
  restarts.
* **Consistent-hash routing** — a fixed-point :class:`HashRing` over
  :func:`~repro.api.cache.spec_key` maps every spec to a worker slot.
  Each worker therefore sees a stable shard of the key space: its
  :class:`~repro.api.session.FabricSession` memoization and
  :class:`~repro.api.cache.DiskResultCache` namespace stay hot, and
  resizing the tier from N to N±1 workers moves only ~1/N of the keys
  (proven in ``tests/test_hashring.py``). When a worker is mid-restart,
  the request fails over to the next distinct slot on the ring — results
  are deterministic, so any worker answers byte-identically.
* **Single-flight dedup** — concurrent requests for the same spec key
  coalesce at the router into one forwarded evaluation; every waiter
  gets the same bytes plus an ``X-Repro-Coalesced: leader|follower``
  provenance header. A waiter whose deadline expires gets its 504
  without cancelling the shared evaluation (late duplicates still
  coalesce onto it, and it still warms the worker's cache).
* **Priority classes** — ``X-Repro-Priority: interactive|batch`` is
  honored at the router's own admission bound (and forwarded to the
  workers' queues): under overload, ``batch`` is shed with 429 first,
  keeping ``interactive`` p99 bounded.

The routing key is the *content* hash of the spec, so the tier answers
byte-identically to a single-process server and to the CLI for every
spec, for every worker count, and across a reshard — asserted in
``tests/test_shard.py`` and the ``scripts/shard_smoke.py`` CI job.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..api.cache import default_cache_dir, spec_key, tier_cache_stats
from ..obs import log as obs_log
from ..obs import prometheus
from ..obs.log import NULL_LOG, EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import (
    NULL_RUNTIME_TRACER,
    RuntimeTracer,
    new_trace_id,
    valid_trace_id,
)
from . import wire
from .service import (
    DEFAULT_PORT,
    EvaluateRequestError,
    ServerConfig,
    parse_evaluate_request,
)

__all__ = [
    "HashRing",
    "ShardConfig",
    "WorkerUnavailable",
    "SubprocessWorkers",
    "ShardRouter",
    "ShardThread",
    "run_sharded",
]

_LISTEN_RE = re.compile(r"http://[\w.\-]+:(\d+)")


class HashRing:
    """A consistent-hash ring with fixed-point (sha256) placement.

    Every node is projected onto a 64-bit ring at ``replicas`` points
    (``sha256("<node>#<i>")``), and a key lands on the first node point
    at or after its own hash. The hash is content-addressed — no
    ``hash()``, no ``PYTHONHASHSEED`` — so placement is identical across
    processes, machines, and runs, which is what lets every router
    replica and every test agree on which worker owns a key.

    Adding or removing one of N nodes remaps only the ring arcs adjacent
    to that node's points: ~1/N of the key space, versus ~(N-1)/N for
    modulo hashing. ``tests/test_hashring.py`` holds this bound on
    randomized key populations.

    Attributes:
        nodes: the node names, sorted, as a tuple.
        replicas: ring points per node.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {sorted(nodes)}")
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.nodes = tuple(sorted(nodes))
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for index in range(replicas):
                points.append((self._point(f"{node}#{index}"), node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _point(label: str) -> int:
        """A label's 64-bit position on the ring."""
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (the first point at or after its hash)."""
        index = bisect.bisect_left(self._hashes, self._point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def lookup_order(self, key: str) -> tuple[str, ...]:
        """Every node in ring order from ``key``: owner first, then failovers.

        Walking the ring (instead of re-hashing) keeps the failover
        assignment consistent too: all routers agree on the second
        choice for a key, and a key's fallback set is stable under
        resharding the same way its owner is.
        """
        start = bisect.bisect_left(self._hashes, self._point(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return tuple(seen)

    def with_nodes(self, nodes: Sequence[str]) -> "HashRing":
        """A new ring over ``nodes`` with the same replica count."""
        return HashRing(nodes, replicas=self.replicas)

    def __len__(self) -> int:
        return len(self.nodes)


class WorkerUnavailable(Exception):
    """No worker could serve the forwarded request (maps to 502).

    Attributes:
        slot: the last slot tried, or ``None`` when every slot failed.
    """

    def __init__(self, message: str, slot: int | None = None) -> None:
        super().__init__(message)
        self.slot = slot


@dataclass(frozen=True)
class ShardConfig:
    """Tunables of the sharded tier: the router plus its workers.

    Attributes:
        workers: worker processes to spawn and supervise.
        host: interface the router binds (workers bind loopback).
        port: router TCP port (0 = ephemeral).
        worker: the per-worker :class:`ServerConfig`; its ``port`` is
            ignored (workers always bind an ephemeral port) and its
            ``cache_dir`` is treated as the *tier* cache root — worker
            ``slot`` uses ``<cache_dir>/worker-<slot>``.
        ring_replicas: ring points per worker on the consistent-hash
            ring (more = smoother key balance).
        router_queue_limit: concurrent client requests the router admits
            at most; overflow answers 429 (``None`` = ``workers x
            worker.queue_limit``). ``batch`` requests are shed past
            ``worker.batch_shed_fraction`` of this bound.
        worker_ready_timeout_s: how long a spawned worker may take to
            print its listen line before the spawn is abandoned.
        supervise_interval_s: how often the supervisor checks for (and
            respawns) dead workers.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    worker: ServerConfig = field(default_factory=ServerConfig)
    ring_replicas: int = 64
    router_queue_limit: int | None = None
    worker_ready_timeout_s: float = 60.0
    supervise_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.ring_replicas < 1:
            raise ValueError(
                f"ring_replicas must be positive, got {self.ring_replicas}"
            )
        if self.router_queue_limit is not None and self.router_queue_limit < 1:
            raise ValueError(
                f"router_queue_limit must be positive, got "
                f"{self.router_queue_limit}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")

    @property
    def admission_limit(self) -> int:
        """Router-level concurrent-request bound (interactive class)."""
        if self.router_queue_limit is not None:
            return self.router_queue_limit
        return self.workers * self.worker.queue_limit

    @property
    def batch_admission_limit(self) -> int:
        """Router-level bound for the ``batch`` class (shed earlier)."""
        return max(
            1, int(self.admission_limit * self.worker.batch_shed_fraction)
        )

    def cache_root(self) -> Path | None:
        """The tier cache root directory (``None`` with ``no_cache``)."""
        if self.worker.no_cache:
            return None
        if self.worker.cache_dir is not None:
            return Path(self.worker.cache_dir).expanduser()
        return default_cache_dir()

    def worker_cache_dir(self, slot: int) -> Path | None:
        """Worker ``slot``'s private cache namespace under the tier root."""
        root = self.cache_root()
        return None if root is None else root / f"worker-{slot}"


@dataclass
class _WorkerSlot:
    """One supervised worker slot: stable identity, replaceable process."""

    index: int
    process: subprocess.Popen | None = None
    port: int | None = None
    restarts: int = 0
    log_tail: deque = field(default_factory=lambda: deque(maxlen=50))

    @property
    def name(self) -> str:
        return f"w{self.index}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class SubprocessWorkers:
    """Spawns, proxies to, and supervises the worker subprocesses.

    Each worker is a full ``python -m repro serve`` process — exactly the
    service an operator would run standalone — so the sharded tier's
    responses are the single-process service's responses by
    construction. The router talks plain HTTP to each worker over
    loopback.
    """

    def __init__(
        self,
        config: ShardConfig,
        metrics: MetricsRegistry | None = None,
        log: EventLog | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = log if log is not None else NULL_LOG
        self.slots = [_WorkerSlot(index) for index in range(config.workers)]
        self._stopping = False
        self._spawn_locks = [threading.Lock() for _ in range(config.workers)]

    # -- process lifecycle -------------------------------------------------------

    def _command(self, slot: int) -> list[str]:
        worker = self.config.worker
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1",
            "--port", "0",
            "--jobs", str(worker.jobs),
            "--max-batch", str(worker.max_batch),
            "--linger-ms", str(worker.linger_ms),
            "--queue-limit", str(worker.queue_limit),
            "--batch-shed-fraction", str(worker.batch_shed_fraction),
            "--timeout-s", str(worker.request_timeout_s),
            "--log-level", worker.log_level,
        ]
        if worker.trace_dir is not None:
            command.extend(
                ["--trace-dir", str(worker.trace_dir), "--trace-name",
                 f"w{slot}"]
            )
        cache_dir = self.config.worker_cache_dir(slot)
        if cache_dir is None:
            command.append("--no-cache")
        else:
            command.extend(["--cache-dir", str(cache_dir)])
            if worker.cache_max_entries is not None:
                command.extend(
                    ["--cache-max-entries", str(worker.cache_max_entries)]
                )
            if worker.cache_max_bytes is not None:
                command.extend(
                    ["--cache-max-bytes", str(worker.cache_max_bytes)]
                )
        return command

    def _environment(self) -> dict[str, str]:
        """The worker environment: inherit, but guarantee the package
        is importable even when the router was launched via PYTHONPATH
        manipulation done in-process (tests, notebooks)."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH", "")
        entries = existing.split(os.pathsep) if existing else []
        if package_root not in entries:
            env["PYTHONPATH"] = os.pathsep.join([package_root, *entries])
        return env

    def _spawn_sync(self, slot: _WorkerSlot) -> None:
        """Start (or restart) ``slot``'s process and wait for its port.

        Blocking (Popen + stderr readline); run it in an executor.
        """
        with self._spawn_locks[slot.index]:
            if self._stopping or slot.alive:
                return
            process = subprocess.Popen(
                self._command(slot.index),
                env=self._environment(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
            assert process.stderr is not None
            deadline = time.monotonic() + self.config.worker_ready_timeout_s
            port: int | None = None
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                if not line:
                    break
                slot.log_tail.append(line.rstrip())
                match = _LISTEN_RE.search(line)
                if match:
                    port = int(match.group(1))
                    break
            if port is None:
                process.kill()
                process.wait(timeout=10)
                tail = "\n".join(slot.log_tail)
                raise RuntimeError(
                    f"worker {slot.name} never reported a port; log tail:\n"
                    f"{tail}"
                )
            # Keep draining stderr so the worker never blocks on a full
            # pipe; the tail stays available for diagnostics.
            threading.Thread(
                target=self._drain_stderr,
                args=(process, slot.log_tail),
                name=f"repro-shard-{slot.name}-stderr",
                daemon=True,
            ).start()
            slot.process = process
            slot.port = port
            if self.log.enabled_for(obs_log.INFO):
                self.log.info(
                    "worker.spawn", slot=slot.index, port=port, pid=process.pid
                )

    @staticmethod
    def _drain_stderr(process: subprocess.Popen, tail: deque) -> None:
        assert process.stderr is not None
        try:
            for line in process.stderr:
                tail.append(line.rstrip())
        except ValueError:  # pragma: no cover - stream closed during stop
            pass

    async def start(self) -> None:
        """Spawn every worker slot concurrently."""
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._spawn_sync, slot)
                for slot in self.slots
            )
        )

    async def ensure_alive(self) -> int:
        """Respawn every dead slot; returns how many were respawned."""
        if self._stopping:
            return 0
        dead = [slot for slot in self.slots if not slot.alive]
        if not dead:
            return 0
        loop = asyncio.get_running_loop()
        for slot in dead:
            slot.restarts += 1
            self.metrics.counter("serve.worker_restarts").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "worker.death", slot=slot.index, restarts=slot.restarts
                )
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._spawn_sync, slot)
                for slot in dead
            )
        )
        if self.log.enabled_for(obs_log.INFO):
            for slot in dead:
                self.log.info("worker.respawn", slot=slot.index)
        return len(dead)

    def _terminate_sync(self) -> None:
        for slot in self.slots:
            if slot.alive:
                assert slot.process is not None
                slot.process.send_signal(signal.SIGTERM)
        for slot in self.slots:
            if slot.process is not None:
                try:
                    slot.process.wait(timeout=60)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    slot.process.kill()
                    slot.process.wait(timeout=10)

    async def stop(self) -> None:
        """SIGTERM every worker (each drains) and reap the processes."""
        self._stopping = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._terminate_sync)

    # -- proxying ----------------------------------------------------------------

    def alive(self, slot: int) -> bool:
        return self.slots[slot].alive

    async def forward(
        self,
        slot: int,
        method: str,
        path: str,
        body: bytes = b"",
        headers: tuple[tuple[str, str], ...] = (),
    ) -> tuple[int, dict[str, str], bytes]:
        """One proxied HTTP exchange with worker ``slot``.

        Raises:
            WorkerUnavailable: the worker is down, unreachable, or died
                mid-response (the router fails over or respawns).
        """
        target = self.slots[slot]
        port = target.port
        if port is None or not target.alive:
            raise WorkerUnavailable(
                f"worker {target.name} is not running", slot=slot
            )
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except OSError as exc:
            raise WorkerUnavailable(
                f"worker {target.name} refused the connection: {exc}",
                slot=slot,
            ) from exc
        try:
            writer.write(
                wire.request_bytes(method, path, body, headers=headers)
            )
            await writer.drain()
            return await wire.read_response(reader)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            wire.ProtocolError,
        ) as exc:
            raise WorkerUnavailable(
                f"worker {target.name} died mid-response: {exc}", slot=slot
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def describe(self) -> list[dict[str, Any]]:
        """Per-slot status for ``/healthz``."""
        return [
            {
                "name": slot.name,
                "alive": slot.alive,
                "port": slot.port,
                "pid": slot.process.pid if slot.process is not None else None,
                "restarts": slot.restarts,
            }
            for slot in self.slots
        ]


class ShardRouter:
    """The HTTP front end that routes, coalesces, and supervises.

    Attributes:
        config: the tier tunables.
        metrics: the router's own registry (worker registries are
            aggregated into ``/metrics`` live).
        workers: the worker transport (subprocess-backed by default;
            tests inject an in-process fake).
        port: the bound TCP port (after :meth:`start`).
    """

    def __init__(
        self,
        config: ShardConfig,
        metrics: MetricsRegistry | None = None,
        workers: Any | None = None,
        log: EventLog | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = log if log is not None else NULL_LOG
        self.runtime = runtime if runtime is not None else NULL_RUNTIME_TRACER
        self.workers = (
            workers
            if workers is not None
            else SubprocessWorkers(config, self.metrics, log=self.log)
        )
        self.ring = HashRing(
            [f"w{index}" for index in range(config.workers)],
            replicas=config.ring_replicas,
        )
        self._inflight: dict[str, asyncio.Task] = {}
        self._active = 0
        self._draining = False
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self._supervisor: asyncio.Task | None = None
        self.port: int | None = None
        self.started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the workers, then bind the router listener."""
        await self.workers.start()
        self._supervisor = asyncio.get_running_loop().create_task(
            self._supervise(), name="repro-shard-supervisor"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful stop: refuse new work, finish in-flight, stop workers."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._inflight:
            await asyncio.gather(
                *self._inflight.values(), return_exceptions=True
            )
        await self.workers.stop()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then shut down gracefully."""
        await self.start()
        await stop.wait()
        await self.shutdown()

    async def _supervise(self) -> None:
        """Respawn dead workers until the router drains."""
        while not self._draining:
            await asyncio.sleep(self.config.supervise_interval_s)
            try:
                await self.workers.ensure_alive()
            except Exception as exc:  # noqa: BLE001 - keep supervising
                self.metrics.counter("serve.worker_respawn_failures").inc()
                if self.log.enabled_for(obs_log.ERROR):
                    self.log.error("worker.respawn_failed", error=str(exc))

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            try:
                request = await wire.read_request(reader)
            except wire.ProtocolError as exc:
                writer.write(
                    wire.error_response(exc.status, "protocol_error", str(exc))
                )
                await writer.drain()
                return
            if request is None:
                return
            writer.write(await self._route(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, request: wire.Request) -> bytes:
        route = request.route
        if route == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return wire.json_response(200, self.health())
        if route == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            fmt = request.query_params().get("format", "json")
            if fmt == "prometheus":
                return wire.response_bytes(
                    200,
                    (await self.metrics_prometheus()).encode("utf-8"),
                    content_type=prometheus.CONTENT_TYPE,
                )
            if fmt != "json":
                return wire.error_response(
                    400,
                    "bad_format",
                    f"unknown metrics format {fmt!r}; expected 'json' or "
                    f"'prometheus'",
                )
            return wire.json_response(200, await self.metrics_payload())
        if route == "/v1/evaluate":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._evaluate(request)
        return wire.error_response(
            404, "not_found", f"no route for {request.path!r}"
        )

    @staticmethod
    def _method_not_allowed(allowed: str) -> bytes:
        return wire.error_response(
            405,
            "method_not_allowed",
            f"only {allowed} is supported on this route",
            extra_headers=(("Allow", allowed),),
        )

    # -- evaluation: admission, single-flight, routing ---------------------------

    async def _evaluate(self, request: wire.Request) -> bytes:
        trace_id = request.headers.get(wire.TRACE_HEADER.lower())
        if trace_id is not None and not valid_trace_id(trace_id):
            # A hostile header must not inject bytes into traces/logs.
            trace_id = new_trace_id()
        if trace_id is None and self.runtime.enabled:
            trace_id = new_trace_id()
        trace_headers: tuple[tuple[str, str], ...] = (
            ((wire.TRACE_HEADER, trace_id),) if trace_id else ()
        )
        try:
            spec, priority = parse_evaluate_request(request)
        except EvaluateRequestError as exc:
            return wire.error_response(
                exc.status, exc.code, str(exc), extra_headers=trace_headers
            )
        if self._draining:
            self.metrics.counter("serve.requests_rejected_draining").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.shed", priority=priority, reason="draining"
                )
            return wire.error_response(
                503,
                "draining",
                "the service is shutting down",
                extra_headers=trace_headers,
            )
        limit = (
            self.config.admission_limit
            if priority == "interactive"
            else self.config.batch_admission_limit
        )
        if self._active >= limit:
            counter = (
                "serve.requests_shed_batch"
                if priority == "batch"
                else "serve.requests_rejected_full"
            )
            self.metrics.counter(counter).inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.shed",
                    priority=priority,
                    reason="router_admission_limit",
                )
            retry_after = self.config.worker.retry_after_s
            return wire.error_response(
                429,
                "queue_full",
                f"router admission limit reached for {priority!r} requests; "
                f"retry after {retry_after:g} s",
                extra_headers=trace_headers
                + (("Retry-After", f"{max(1, round(retry_after))}"),),
            )
        self._active += 1
        self.metrics.counter("serve.requests_admitted").inc()
        self.metrics.counter(f"serve.requests_admitted.{priority}").inc()
        self.metrics.gauge("serve.active_requests").set(self._active)
        if self.log.enabled_for(obs_log.DEBUG):
            self.log.debug("request.admitted", priority=priority)
        began = time.monotonic()
        try:
            if not self.runtime.enabled:
                return await self._evaluate_admitted(
                    request, spec, priority, began, trace_id, trace_headers
                )
            with self.runtime.span(
                "router.request", "router", trace_id=trace_id
            ):
                return await self._evaluate_admitted(
                    request, spec, priority, began, trace_id, trace_headers
                )
        finally:
            self._active -= 1
            self.metrics.gauge("serve.active_requests").set(self._active)

    async def _evaluate_admitted(
        self,
        request: wire.Request,
        spec: Any,
        priority: str,
        began: float,
        trace_id: str | None,
        trace_headers: tuple[tuple[str, str], ...],
    ) -> bytes:
        key = spec_key(spec)
        task = self._inflight.get(key)
        if task is None:
            role = "leader"
            task = asyncio.get_running_loop().create_task(
                self._forward_with_failover(key, request, trace_id)
            )
            self._inflight[key] = task
            task.add_done_callback(self._discard_inflight(key, task))
        else:
            role = "follower"
            self.metrics.counter("serve.requests_coalesced").inc()
            if self.log.enabled_for(obs_log.DEBUG):
                self.log.debug("request.coalesced", role=role, key=key[:16])
        if self.runtime.enabled:
            self.runtime.instant(
                "router.singleflight",
                "router",
                trace_id=trace_id,
                args={"role": role, "key": key[:16]},
            )
        try:
            # shield(): a waiter's deadline (or disconnect) must not
            # cancel the shared evaluation other waiters ride on.
            status, headers, body = await asyncio.wait_for(
                asyncio.shield(task), self.config.worker.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.metrics.counter("serve.requests_timed_out").inc()
            if self.log.enabled_for(obs_log.WARNING):
                self.log.warning(
                    "request.timeout",
                    deadline_s=self.config.worker.request_timeout_s,
                )
            return wire.error_response(
                504,
                "timeout",
                f"evaluation exceeded "
                f"{self.config.worker.request_timeout_s:g} s",
                extra_headers=trace_headers,
            )
        except WorkerUnavailable as exc:
            if self.log.enabled_for(obs_log.ERROR):
                self.log.error(
                    "request.failed", status=502, code="no_worker",
                    message=str(exc),
                )
            return wire.error_response(
                502,
                "no_worker",
                f"no worker could serve the request: {exc}",
                extra_headers=trace_headers,
            )
        elapsed = time.monotonic() - began
        self.metrics.histogram("serve.request_seconds").observe(elapsed)
        self.metrics.histogram(
            f"serve.request_seconds.{priority}"
        ).observe(elapsed)
        if status == 200:
            self.metrics.counter("serve.requests_completed").inc()
        passthrough = []
        for name in (wire.CACHE_HEADER, "Retry-After"):
            value = headers.get(name.lower())
            if value is not None:
                passthrough.append((name, value))
        passthrough.append(
            (wire.WORKER_HEADER, headers.get(wire.WORKER_HEADER.lower(), "?"))
        )
        passthrough.append((wire.COALESCED_HEADER, role))
        passthrough.extend(trace_headers)
        return wire.response_bytes(
            status, body, extra_headers=tuple(passthrough)
        )

    def _discard_inflight(self, key: str, task: asyncio.Task):
        def callback(done: asyncio.Task) -> None:
            if self._inflight.get(key) is task:
                del self._inflight[key]
            if not done.cancelled():
                done.exception()  # consume; every waiter saw it already

        return callback

    async def _forward_with_failover(
        self, key: str, request: wire.Request, trace_id: str | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward to the key's owner; fail over along the ring if down.

        Results are deterministic, so a failover answer is byte-identical
        to the owner's — the ring order only decides whose cache gets
        warmed. The supervisor respawns the dead owner in the background.
        The leader's ``trace_id`` is forwarded over
        :data:`~repro.serve.wire.TRACE_HEADER`, so the worker's spans
        join the router's timeline.
        """
        forwarded = (
            (
                wire.PRIORITY_HEADER,
                request.headers.get(
                    wire.PRIORITY_HEADER.lower(), wire.DEFAULT_PRIORITY
                ),
            ),
        )
        if trace_id is not None:
            forwarded += ((wire.TRACE_HEADER, trace_id),)
        runtime = self.runtime
        last: WorkerUnavailable | None = None
        for node in self.ring.lookup_order(key):
            slot = int(node[1:])
            hop_start = runtime.now() if runtime.enabled else 0.0
            try:
                status, headers, body = await self.workers.forward(
                    slot, "POST", "/v1/evaluate", request.body, forwarded
                )
            except WorkerUnavailable as exc:
                if runtime.enabled:
                    runtime.complete(
                        "router.proxy",
                        "router",
                        hop_start,
                        runtime.now(),
                        trace_id=trace_id,
                        args={"worker": node, "outcome": "unavailable"},
                    )
                self.metrics.counter("serve.router_failovers").inc()
                if self.log.enabled_for(obs_log.WARNING):
                    self.log.warning(
                        "request.failover", slot=slot, key=key[:16]
                    )
                last = exc
                continue
            if runtime.enabled:
                runtime.complete(
                    "router.proxy",
                    "router",
                    hop_start,
                    runtime.now(),
                    trace_id=trace_id,
                    args={"worker": node, "status": status},
                )
            headers[wire.WORKER_HEADER.lower()] = node
            return status, headers, body
        raise WorkerUnavailable(f"all {len(self.ring)} workers down: {last}")

    # -- introspection -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The router's ``/healthz`` payload."""
        workers = self.workers.describe()
        if self._draining:
            status = "draining"
        elif all(worker["alive"] for worker in workers):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "role": "router",
            "workers": workers,
            "ring_replicas": self.config.ring_replicas,
            "active_requests": self._active,
            "router_queue_limit": self.config.admission_limit,
            "batch_queue_limit": self.config.batch_admission_limit,
            "inflight_keys": len(self._inflight),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }

    async def _fetch_worker_metrics(self) -> list[dict[str, Any]]:
        """Every worker's ``/metrics`` payload, fetched concurrently.

        ``asyncio.gather`` preserves input order, so the result list is
        in slot-numeric order — ``w10`` never sorts before ``w2`` the
        way a lexical key sort would put it.
        """

        async def fetch(slot: int) -> dict[str, Any]:
            try:
                status, _, body = await self.workers.forward(
                    slot, "GET", "/metrics"
                )
                if status == 200:
                    return json.loads(body)
                return {"error": f"HTTP {status}"}
            except WorkerUnavailable as exc:
                return {"error": str(exc)}

        return list(
            await asyncio.gather(
                *(fetch(index) for index in range(self.config.workers))
            )
        )

    async def metrics_payload(self) -> dict[str, Any]:
        """The router's ``/metrics``: own registry + per-worker payloads
        + shared-tier cache totals (workers keyed ``w0``..``wN`` in slot
        order)."""
        payload: dict[str, Any] = {"metrics": self.metrics.snapshot()}
        worker_payloads = await self._fetch_worker_metrics()
        payload["workers"] = {
            f"w{index}": worker_payload
            for index, worker_payload in enumerate(worker_payloads)
        }
        tier = {"hits": 0, "misses": 0, "eval_seconds": 0.0}
        for worker_payload in worker_payloads:
            cache = worker_payload.get("cache")
            if isinstance(cache, dict):
                tier["hits"] += cache.get("hits", 0)
                tier["misses"] += cache.get("misses", 0)
                tier["eval_seconds"] += cache.get("eval_seconds", 0.0)
        lookups = tier["hits"] + tier["misses"]
        tier["hit_rate"] = tier["hits"] / lookups if lookups else 0.0
        payload["tier_cache"] = tier
        root = self.config.cache_root()
        if root is not None:
            payload["tier_disk_cache"] = tier_cache_stats(
                [
                    self.config.worker_cache_dir(slot)
                    for slot in range(self.config.workers)
                ]
            )
        return payload

    async def metrics_prometheus(self) -> str:
        """The router's ``/metrics?format=prometheus`` exposition.

        The router's own registry renders with full histogram bucket
        series; each worker's snapshot (held only as JSON) renders as
        additional ``{worker="wN"}``-labeled samples without TYPE
        re-declarations, so the combined text stays parseable.
        """
        extra: list[str] = []
        for index, worker_payload in enumerate(
            await self._fetch_worker_metrics()
        ):
            snapshot = worker_payload.get("metrics")
            if not isinstance(snapshot, dict):
                continue
            extra.extend(
                prometheus.render_snapshot(
                    snapshot,
                    labels={"worker": f"w{index}"},
                    declare_types=False,
                )
            )
        return prometheus.render_exposition(self.metrics, extra_lines=extra)


class ShardThread:
    """A :class:`ShardRouter` on a background thread (tests, benches).

    Mirrors :class:`~repro.serve.service.ServerThread`: runs its own
    event loop, exposes the bound port once ready, drains on
    :meth:`stop`, and works as a context manager.
    """

    def __init__(
        self,
        config: ShardConfig,
        metrics: MetricsRegistry | None = None,
        workers: Any | None = None,
        log: EventLog | None = None,
        runtime: RuntimeTracer | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.log = log
        self.runtime = runtime
        self._workers = workers
        self.port: int | None = None
        self.router: ShardRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-loop", daemon=True
        )

    def start(self) -> "ShardThread":
        self._thread.start()
        ready_s = self.config.worker_ready_timeout_s + 30
        if not self._ready.wait(timeout=ready_s):
            raise RuntimeError(
                f"shard router did not become ready in {ready_s:g} s"
            )
        if self._startup_error is not None:
            raise RuntimeError(
                "shard router failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=120)

    def __enter__(self) -> "ShardThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced in start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.router = ShardRouter(
            self.config,
            metrics=self.metrics,
            workers=self._workers,
            log=self.log,
            runtime=self.runtime,
        )
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        try:
            await self.router.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            try:
                await self.router.workers.stop()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            return
        self.port = self.router.port
        self._ready.set()
        await self._stop.wait()
        await self.router.shutdown()


def run_sharded(config: ShardConfig) -> int:
    """Run the sharded tier until SIGTERM/SIGINT; the ``repro serve
    --workers N`` body.

    Returns:
        0 after a clean drain.
    """

    log = EventLog(sys.stderr, level=config.worker.log_level, source="router")
    runtime = (
        RuntimeTracer("router") if config.worker.trace_dir is not None
        else NULL_RUNTIME_TRACER
    )

    async def main() -> int:
        router = ShardRouter(config, log=log, runtime=runtime)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await router.start()
        url = f"http://{config.host}:{router.port}"
        log.info(
            "serve.listening",
            url=url,
            message=(
                f"repro serve router listening on {url} "
                f"(workers={config.workers}, jobs={config.worker.jobs}, "
                f"queue_limit={config.admission_limit}, "
                f"batch_limit={config.batch_admission_limit}, "
                f"cache={'off' if config.worker.no_cache else 'on'})"
            ),
        )
        await stop.wait()
        log.info("serve.draining")
        await router.shutdown()
        completed = int(
            router.metrics.counter("serve.requests_completed").value
        )
        log.info(
            "serve.drained",
            requests_completed=completed,
            message=(
                f"repro serve router drained cleanly "
                f"({completed} requests completed)"
            ),
        )
        if runtime.enabled and config.worker.trace_dir is not None:
            runtime.write(
                Path(config.worker.trace_dir)
                / f"router-{runtime.pid}.trace.json"
            )
        return 0

    return asyncio.run(main())
