"""Minimal HTTP/1.1 framing over asyncio streams.

The evaluation service speaks JSON-over-HTTP with exactly three routes,
so it does not need a web framework — just enough of RFC 9112 to read
one request from a stream and write one response back: a request line,
headers, an optional ``Content-Length`` body, and a ``Connection:
close`` response. Keeping the framing in its own module keeps the
service logic (batching, admission, drain) free of byte-level parsing
and lets the tests exercise malformed input directly.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "MAX_BODY_BYTES",
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "PRIORITY_HEADER",
    "CACHE_HEADER",
    "COALESCED_HEADER",
    "WORKER_HEADER",
    "TRACE_HEADER",
    "ProtocolError",
    "Request",
    "read_request",
    "read_response",
    "request_bytes",
    "response_bytes",
    "json_response",
]

#: Largest request body the server will read (a ScenarioSpec is ~1 KiB;
#: anything near this limit is not a spec).
MAX_BODY_BYTES = 4 << 20

#: Request-priority classes, most-protected first. ``interactive``
#: requests are admitted up to the full queue limit; ``batch`` requests
#: are shed earlier under overload (see ``ServerConfig.batch_shed_fraction``).
PRIORITIES = ("interactive", "batch")

#: Priority assumed when a request carries no priority header.
DEFAULT_PRIORITY = "interactive"

#: Request header naming the priority class (``interactive`` | ``batch``).
PRIORITY_HEADER = "X-Repro-Priority"

#: Response header: ``hit`` | ``miss`` cache provenance of the result.
CACHE_HEADER = "X-Repro-Cache"

#: Response header set by the shard router: ``leader`` for the request
#: that triggered the (single) evaluation of its spec key, ``follower``
#: for concurrent duplicates that coalesced onto it.
COALESCED_HEADER = "X-Repro-Coalesced"

#: Response header set by the shard router: the worker slot (``w0``,
#: ``w1``, ...) that produced the response body.
WORKER_HEADER = "X-Repro-Worker"

#: Request *and* response header carrying the request's trace id. A
#: client may send one (it is validated, echoed, and stamped on every
#: span the request leaves); otherwise the router mints one when
#: runtime tracing is enabled and forwards it to the worker, so router
#: and worker trace files merge into a single per-request timeline.
TRACE_HEADER = "X-Repro-Trace-Id"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A request the server cannot parse.

    Attributes:
        status: the HTTP status the connection should answer with.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request.

    Attributes:
        method: upper-cased request method.
        path: request target, query string included.
        headers: header fields, keys lower-cased (last value wins).
        body: raw request body (empty without ``Content-Length``).
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def route(self) -> str:
        """The path with any query string stripped (``/metrics?x`` ->
        ``/metrics``)."""
        return self.path.partition("?")[0]

    def query_params(self) -> dict[str, str]:
        """Query-string parameters, first value per key."""
        query = self.path.partition("?")[2]
        if not query:
            return {}
        return {
            key: values[0]
            for key, values in urllib.parse.parse_qs(query).items()
        }

    def json(self) -> Any:
        """The body decoded as JSON.

        Raises:
            ProtocolError: with status 400 when the body is not valid
                UTF-8 JSON.
        """
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not JSON: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Read one HTTP request from ``reader``.

    Returns:
        The parsed request, or ``None`` when the peer closed the
        connection before sending a request line.

    Raises:
        ProtocolError: on a malformed request line or header, or a body
            beyond ``max_body`` (status 413).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(400, f"unreadable request line: {exc}") from exc
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            400, f"invalid Content-Length: {length_text!r}"
        ) from None
    if length < 0:
        raise ProtocolError(400, f"invalid Content-Length: {length}")
    if length > max_body:
        raise ProtocolError(
            413, f"request body of {length} bytes exceeds the {max_body} limit"
        )
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers, body=body)


async def read_response(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> tuple[int, dict[str, str], bytes]:
    """Read one HTTP response from ``reader`` (the router's proxy side).

    Returns:
        ``(status, headers, body)`` with header names lower-cased. The
        body is read from ``Content-Length`` (every response this stack
        emits carries one — see :func:`response_bytes`).

    Raises:
        ProtocolError: on a malformed status line, header, or body
            length (status 502 — the upstream worker misbehaved).
    """
    line = await reader.readline()
    parts = line.decode("latin-1").split(maxsplit=2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(502, f"malformed status line from worker: {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(
            502, f"malformed status code from worker: {parts[1]!r}"
        ) from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(502, f"malformed header from worker: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(
            502,
            f"invalid Content-Length from worker: "
            f"{headers['content-length']!r}",
        ) from None
    if not 0 <= length <= max_body:
        raise ProtocolError(
            502, f"implausible Content-Length from worker: {length}"
        )
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def request_bytes(
    method: str,
    path: str,
    body: bytes = b"",
    *,
    headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one complete HTTP request (the router forwarding side)."""
    head = [f"{method} {path} HTTP/1.1"]
    head.append("Content-Type: application/json")
    head.append(f"Content-Length: {len(body)}")
    for name, value in headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one complete ``Connection: close`` HTTP response."""
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.append(f"Content-Type: {content_type}")
    head.append(f"Content-Length: {len(body)}")
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    *,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """A JSON response with deterministic (sorted-key) serialization."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return response_bytes(status, body, extra_headers=extra_headers)


def error_response(
    status: int,
    code: str,
    message: str,
    *,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """The service's uniform error envelope."""
    return json_response(
        status,
        {"error": {"code": code, "message": message, "status": status}},
        extra_headers=extra_headers,
    )
